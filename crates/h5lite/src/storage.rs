//! Storage backends: the flat address space under a container.
//!
//! A backend is a sparse, growable array of bytes addressed by `u64`
//! offsets. All methods take `&self` — the async VOL's background streams
//! read and write concurrently with the application thread, so interior
//! synchronization is part of the contract. The file backend uses
//! positional I/O (`pread`/`pwrite`), which the OS serializes per-range;
//! the memory backend shards a `RwLock` around its buffer.

use std::fs::OpenOptions;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::sync::RwLock;

use crate::error::{H5Error, Result};

/// A flat, concurrently accessible byte address space.
pub trait StorageBackend: Send + Sync {
    /// Write `data` at `offset`, growing the space as needed.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;

    /// Read exactly `buf.len()` bytes at `offset`. Reading past the end is
    /// an error (the container never does it on valid metadata).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// One past the highest byte ever written.
    fn len(&self) -> u64;

    /// Whether nothing has been written yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush to durable storage (no-op for memory).
    fn sync(&self) -> Result<()>;
}

/// In-memory backend for tests and simulation-backed containers.
#[derive(Default)]
pub struct MemBackend {
    buf: RwLock<Vec<u8>>,
}

impl MemBackend {
    /// An empty in-memory space.
    pub fn new() -> Self {
        MemBackend {
            buf: RwLock::new(Vec::new()),
        }
    }
}

impl StorageBackend for MemBackend {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let end = offset
            .checked_add(data.len() as u64)
            .ok_or_else(|| H5Error::Storage("write offset overflow".into()))?;
        let end = usize::try_from(end)
            .map_err(|_| H5Error::Storage("write beyond addressable memory".into()))?;
        let mut buf = self.buf.write();
        if buf.len() < end {
            buf.resize(end, 0);
        }
        buf[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn read_at(&self, offset: u64, out: &mut [u8]) -> Result<()> {
        let buf = self.buf.read();
        let end = offset as usize + out.len();
        if end > buf.len() {
            return Err(H5Error::Storage(format!(
                "short read: wanted {}..{end}, backend has {}",
                offset,
                buf.len()
            )));
        }
        out.copy_from_slice(&buf[offset as usize..end]);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.buf.read().len() as u64
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// File-backed storage using positional I/O, safe for concurrent use by
/// background I/O threads.
pub struct FileBackend {
    file: std::fs::File,
    /// Highest end-of-write seen; kept locally because `metadata()` is a
    /// syscall and the container asks for `len` on every allocation.
    len: AtomicU64,
}

impl FileBackend {
    /// Create (or truncate) a file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBackend {
            file,
            len: AtomicU64::new(0),
        })
    }

    /// Open an existing file read-write.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(FileBackend {
            file,
            len: AtomicU64::new(len),
        })
    }
}

impl StorageBackend for FileBackend {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(data, offset)?;
        let end = offset + data.len() as u64;
        self.len.fetch_max(end, Ordering::AcqRel);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// A backend that throttles another backend to a fixed bandwidth and
/// per-operation latency — a stand-in for a parallel file system when
/// demonstrating asynchronous I/O on a machine whose real storage is as
/// fast as memory. The throttle burns wall-clock time on the *calling*
/// thread, so a synchronous write blocks the application while the async
/// VOL's background stream absorbs the delay.
pub struct ThrottledBackend {
    inner: Box<dyn StorageBackend>,
    /// Sustained bandwidth, bytes/s.
    bandwidth: f64,
    /// Per-operation latency, seconds.
    latency: f64,
}

impl ThrottledBackend {
    /// Throttle `inner` to `bandwidth` bytes/s plus `latency` per op.
    pub fn new(inner: Box<dyn StorageBackend>, bandwidth: f64, latency: f64) -> Self {
        assert!(bandwidth > 0.0 && latency >= 0.0);
        ThrottledBackend {
            inner,
            bandwidth,
            latency,
        }
    }

    /// Throttle a fresh in-memory backend.
    pub fn in_memory(bandwidth: f64, latency: f64) -> Self {
        Self::new(Box::new(MemBackend::new()), bandwidth, latency)
    }

    fn stall(&self, bytes: usize) {
        let secs = self.latency + bytes as f64 / self.bandwidth;
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
    }
}

impl StorageBackend for ThrottledBackend {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.stall(data.len());
        self.inner.write_at(offset, data)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.stall(buf.len());
        self.inner.read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}


/// A backend that injects a failure after a configured number of
/// operations — for exercising error paths: deferred async errors,
/// torn-flush detection, connector poisoning.
pub struct FaultyBackend {
    inner: Box<dyn StorageBackend>,
    /// Operations remaining before every further write fails.
    writes_left: AtomicU64,
}

impl FaultyBackend {
    /// Fail every write after the first `writes_allowed`.
    pub fn failing_after(inner: Box<dyn StorageBackend>, writes_allowed: u64) -> Self {
        FaultyBackend {
            inner,
            writes_left: AtomicU64::new(writes_allowed),
        }
    }
}

impl StorageBackend for FaultyBackend {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        // Decrement-with-floor: once exhausted, stay exhausted.
        let mut left = self.writes_left.load(Ordering::SeqCst);
        loop {
            if left == 0 {
                return Err(H5Error::Storage("injected device failure".into()));
            }
            match self.writes_left.compare_exchange(
                left,
                left - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(actual) => left = actual,
            }
        }
        self.inner.write_at(offset, data)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn exercise(backend: &dyn StorageBackend) {
        assert!(backend.is_empty());
        backend.write_at(0, b"hello").unwrap();
        backend.write_at(10, b"world").unwrap();
        assert_eq!(backend.len(), 15);

        let mut buf = [0u8; 5];
        backend.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        backend.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"world");

        // The gap reads as zeros.
        let mut gap = [9u8; 5];
        backend.read_at(5, &mut gap).unwrap();
        assert_eq!(gap, [0u8; 5]);

        // Overwrite in place.
        backend.write_at(0, b"HELLO").unwrap();
        backend.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"HELLO");
        assert_eq!(backend.len(), 15);

        // Reading past the end fails.
        let mut big = [0u8; 32];
        assert!(backend.read_at(0, &mut big).is_err());
        backend.sync().unwrap();
    }

    #[test]
    fn mem_backend_contract() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn file_backend_contract() {
        let dir = std::env::temp_dir().join(format!("h5lite-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contract.bin");
        exercise(&FileBackend::create(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_reopen_preserves_data() {
        let dir = std::env::temp_dir().join(format!("h5lite-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.bin");
        {
            let b = FileBackend::create(&path).unwrap();
            b.write_at(100, b"persist").unwrap();
            b.sync().unwrap();
        }
        {
            let b = FileBackend::open(&path).unwrap();
            assert_eq!(b.len(), 107);
            let mut buf = [0u8; 7];
            b.read_at(100, &mut buf).unwrap();
            assert_eq!(&buf, b"persist");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let backend = Arc::new(MemBackend::new());
        let mut joins = Vec::new();
        for t in 0..8u64 {
            let b = backend.clone();
            joins.push(std::thread::spawn(move || {
                let data = vec![t as u8 + 1; 1000];
                b.write_at(t * 1000, &data).unwrap();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(backend.len(), 8000);
        for t in 0..8u64 {
            let mut buf = vec![0u8; 1000];
            backend.read_at(t * 1000, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == t as u8 + 1));
        }
    }

    #[test]
    fn empty_read_at_any_offset_succeeds() {
        let b = MemBackend::new();
        let mut empty: [u8; 0] = [];
        b.read_at(0, &mut empty).unwrap();
    }
    #[test]
    fn throttled_backend_delegates_and_delays() {
        let b = ThrottledBackend::in_memory(1e6, 0.0); // 1 MB/s
        let t0 = std::time::Instant::now();
        b.write_at(0, &[1u8; 50_000]).unwrap(); // ~50 ms
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(elapsed >= 0.045, "throttle must stall, took {elapsed}");
        let mut buf = [0u8; 4];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 1, 1, 1]);
        assert_eq!(b.len(), 50_000);
    }

    #[test]
    fn throttled_contract() {
        exercise(&ThrottledBackend::in_memory(1e12, 0.0));
    }

    #[test]
    fn faulty_backend_fails_after_budget() {
        let b = FaultyBackend::failing_after(Box::new(MemBackend::new()), 2);
        b.write_at(0, b"one").unwrap();
        b.write_at(10, b"two").unwrap();
        let err = b.write_at(20, b"three").unwrap_err();
        assert!(matches!(err, H5Error::Storage(m) if m.contains("injected")));
        // Reads keep working; earlier data intact.
        let mut buf = [0u8; 3];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"one");
    }
}
