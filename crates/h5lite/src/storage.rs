//! Storage backends: the flat address space under a container.
//!
//! A backend is a sparse, growable array of bytes addressed by `u64`
//! offsets. All methods take `&self` — the async VOL's background streams
//! read and write concurrently with the application thread, so interior
//! synchronization is part of the contract. The file backend uses
//! positional I/O (`pread`/`pwrite`), which the OS serializes per-range;
//! the memory backend is sharded into fixed-size pages, each shard behind
//! its own `RwLock`, so concurrent background streams touching disjoint
//! extents proceed in parallel instead of serializing on one lock.
//!
//! Beyond the scalar `write_at`/`read_at`, every backend accepts *vectored*
//! batches ([`StorageBackend::write_vectored_at`] /
//! [`StorageBackend::read_vectored_at`]) of `(offset, bytes)` segments.
//! Batches are the unit the I/O planner ([`crate::plan`]) emits: a backend
//! charges per-request costs (latency, lock acquisitions, fault-plan
//! bookkeeping) once per *segment* where the semantics require it
//! ([`FaultInjector`]) and once per *batch* where a real device would
//! amortise them ([`ThrottledBackend`]). Segments are processed in order;
//! on error, segments before the failing one may already be applied —
//! exactly the partial state the equivalent scalar sequence would leave.

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::{Mutex, RwLock};

use crate::error::{H5Error, Result};

/// One segment of a vectored write: `data` destined for `offset`.
#[derive(Debug)]
pub struct IoVec<'a> {
    /// Backend byte offset the segment lands at.
    pub offset: u64,
    /// Payload bytes.
    pub data: &'a [u8],
}

/// One segment of a vectored read: fill `buf` from `offset`.
#[derive(Debug)]
pub struct IoVecMut<'a> {
    /// Backend byte offset the segment starts at.
    pub offset: u64,
    /// Destination buffer; exactly `buf.len()` bytes are read.
    pub buf: &'a mut [u8],
}

/// A flat, concurrently accessible byte address space.
pub trait StorageBackend: Send + Sync {
    /// Write `data` at `offset`, growing the space as needed.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;

    /// Read exactly `buf.len()` bytes at `offset`. Reading past the end is
    /// an error (the container never does it on valid metadata).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Write every segment of `batch`, in order. Equivalent to the same
    /// sequence of [`StorageBackend::write_at`] calls — including the
    /// partial state left behind when a mid-batch segment fails — but a
    /// backend may amortise per-request costs across the whole batch.
    fn write_vectored_at(&self, batch: &[IoVec<'_>]) -> Result<()> {
        for seg in batch {
            self.write_at(seg.offset, seg.data)?;
        }
        Ok(())
    }

    /// Read every segment of `batch`, in order; the vectored counterpart
    /// of [`StorageBackend::read_at`] with the same past-the-end error.
    fn read_vectored_at(&self, batch: &mut [IoVecMut<'_>]) -> Result<()> {
        for seg in batch.iter_mut() {
            self.read_at(seg.offset, seg.buf)?;
        }
        Ok(())
    }

    /// One past the highest byte ever written.
    fn len(&self) -> u64;

    /// Whether nothing has been written yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush to durable storage (no-op for memory).
    fn sync(&self) -> Result<()>;
}

/// Bytes per page of the sharded memory backend.
const PAGE_BYTES: usize = 64 * 1024;

/// Number of lock shards; pages map to shards round-robin by page index,
/// so neighbouring pages land on different shards and a large sequential
/// write still spreads across locks.
const SHARD_COUNT: usize = 16;

/// In-memory backend for tests and simulation-backed containers.
///
/// Storage is a sparse map of fixed-size pages ([`PAGE_BYTES`]) sharded
/// across [`SHARD_COUNT`] independent `RwLock`s; the logical length is a
/// lock-free high-water mark. Pages inside the length that were never
/// written read as zeros (the backends' gap-fill contract).
pub struct MemBackend {
    shards: Vec<RwLock<BTreeMap<u64, Box<[u8]>>>>,
    len: AtomicU64,
}

impl Default for MemBackend {
    fn default() -> Self {
        MemBackend::new()
    }
}

impl MemBackend {
    /// An empty in-memory space.
    pub fn new() -> Self {
        MemBackend {
            shards: (0..SHARD_COUNT).map(|_| RwLock::new(BTreeMap::new())).collect(),
            len: AtomicU64::new(0),
        }
    }

    /// Validate `offset + len` and return the exclusive end offset.
    fn span_end(offset: u64, len: usize, what: &str) -> Result<u64> {
        let end = offset
            .checked_add(len as u64)
            .ok_or_else(|| H5Error::Storage(format!("{what} offset overflow")))?;
        usize::try_from(end)
            .map_err(|_| H5Error::Storage(format!("{what} beyond addressable memory")))?;
        Ok(end)
    }

    /// Copy `data` into the page map without touching the length
    /// high-water mark (the caller publishes the new length).
    fn copy_in(&self, offset: u64, data: &[u8]) {
        let mut pos = offset;
        let mut cursor = 0usize;
        while cursor < data.len() {
            let page = pos / PAGE_BYTES as u64;
            let within = (pos % PAGE_BYTES as u64) as usize;
            let take = (PAGE_BYTES - within).min(data.len() - cursor);
            let mut shard = self.shards[(page % SHARD_COUNT as u64) as usize].write();
            let buf = shard
                .entry(page)
                .or_insert_with(|| vec![0u8; PAGE_BYTES].into_boxed_slice());
            buf[within..within + take].copy_from_slice(&data[cursor..cursor + take]);
            drop(shard);
            pos += take as u64;
            cursor += take;
        }
    }

    /// Copy bytes out of the page map; absent pages read as zeros. The
    /// caller has already bounds-checked against the logical length.
    fn copy_out(&self, offset: u64, out: &mut [u8]) {
        let mut pos = offset;
        let mut cursor = 0usize;
        while cursor < out.len() {
            let page = pos / PAGE_BYTES as u64;
            let within = (pos % PAGE_BYTES as u64) as usize;
            let take = (PAGE_BYTES - within).min(out.len() - cursor);
            let shard = self.shards[(page % SHARD_COUNT as u64) as usize].read();
            match shard.get(&page) {
                Some(buf) => out[cursor..cursor + take].copy_from_slice(&buf[within..within + take]),
                None => out[cursor..cursor + take].fill(0),
            }
            drop(shard);
            pos += take as u64;
            cursor += take;
        }
    }
}

impl StorageBackend for MemBackend {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let end = Self::span_end(offset, data.len(), "write")?;
        self.copy_in(offset, data);
        self.len.fetch_max(end, Ordering::AcqRel);
        Ok(())
    }

    fn read_at(&self, offset: u64, out: &mut [u8]) -> Result<()> {
        let end = Self::span_end(offset, out.len(), "read")?;
        let len = self.len.load(Ordering::Acquire);
        if end > len {
            return Err(H5Error::Storage(format!(
                "short read: wanted {offset}..{end}, backend has {len}"
            )));
        }
        self.copy_out(offset, out);
        Ok(())
    }

    fn write_vectored_at(&self, batch: &[IoVec<'_>]) -> Result<()> {
        // Validate every segment up front so a malformed batch writes
        // nothing, then copy, then publish the new length once.
        let mut max_end = 0u64;
        for seg in batch {
            max_end = max_end.max(Self::span_end(seg.offset, seg.data.len(), "write")?);
        }
        for seg in batch {
            self.copy_in(seg.offset, seg.data);
        }
        self.len.fetch_max(max_end, Ordering::AcqRel);
        Ok(())
    }

    fn read_vectored_at(&self, batch: &mut [IoVecMut<'_>]) -> Result<()> {
        // Bounds-check the whole batch against one length snapshot, then
        // copy; each page copy still takes only its own shard lock.
        let len = self.len.load(Ordering::Acquire);
        for seg in batch.iter() {
            let end = Self::span_end(seg.offset, seg.buf.len(), "read")?;
            if end > len {
                return Err(H5Error::Storage(format!(
                    "short read: wanted {}..{end}, backend has {len}",
                    seg.offset
                )));
            }
        }
        for seg in batch.iter_mut() {
            self.copy_out(seg.offset, seg.buf);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// File-backed storage using positional I/O, safe for concurrent use by
/// background I/O threads.
pub struct FileBackend {
    file: std::fs::File,
    /// Highest end-of-write seen; kept locally because `metadata()` is a
    /// syscall and the container asks for `len` on every allocation.
    len: AtomicU64,
}

impl FileBackend {
    /// Create (or truncate) a file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBackend {
            file,
            len: AtomicU64::new(0),
        })
    }

    /// Open an existing file read-write.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(FileBackend {
            file,
            len: AtomicU64::new(len),
        })
    }
}

impl StorageBackend for FileBackend {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(data, offset)?;
        // Watermark only; saturating keeps the length monotone even on
        // an adversarial offset (the write itself would have failed).
        let end = offset.saturating_add(data.len() as u64);
        self.len.fetch_max(end, Ordering::AcqRel);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    fn write_vectored_at(&self, batch: &[IoVec<'_>]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        // Single pass of positional writes, one length update for the
        // whole batch (each scalar write_at would fetch_max separately).
        let mut max_end = 0u64;
        for seg in batch {
            self.file.write_all_at(seg.data, seg.offset)?;
            max_end = max_end.max(seg.offset.saturating_add(seg.data.len() as u64));
        }
        self.len.fetch_max(max_end, Ordering::AcqRel);
        Ok(())
    }

    fn read_vectored_at(&self, batch: &mut [IoVecMut<'_>]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        for seg in batch.iter_mut() {
            self.file.read_exact_at(seg.buf, seg.offset)?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// A backend that throttles another backend to a fixed bandwidth and
/// per-operation latency — a stand-in for a parallel file system when
/// demonstrating asynchronous I/O on a machine whose real storage is as
/// fast as memory. The throttle burns wall-clock time on the *calling*
/// thread, so a synchronous write blocks the application while the async
/// VOL's background stream absorbs the delay.
///
/// The bandwidth can be stepped mid-run ([`set_bandwidth`]
/// (ThrottledBackend::set_bandwidth)) to emulate a storage regime change
/// — the stimulus the drift-detection tests use to exercise the model's
/// stale-fit invalidation.
///
/// Concurrency is modelled with a fixed pool of *channels* (think PFS
/// service lanes / NVMe queue pairs): each operation books the
/// earliest-free channel in virtual time and sleeps until its booked
/// completion. Up to `channels` operations overlap their stalls; beyond
/// that, operations queue behind the busiest-free lane. Depth 1 pays one
/// latency per op; depth `<= channels` overlaps them; only *coalescing*
/// (one vectored batch, one latency) keeps winning past the cap — which
/// is exactly the regime a queue-depth sweep needs to measure.
pub struct ThrottledBackend {
    inner: Box<dyn StorageBackend>,
    /// Sustained bandwidth, bytes/s, stored as `f64` bits so concurrent
    /// I/O threads see a mid-run step without locking.
    bandwidth_bits: AtomicU64,
    /// Per-operation latency, seconds.
    latency: f64,
    /// Virtual-time channel bookings; the lock is held only to pick a
    /// lane and book the interval — the sleep happens outside it.
    channels: Mutex<Channels>,
}

/// Per-channel virtual-time bookkeeping for [`ThrottledBackend`].
struct Channels {
    /// Zero point of the virtual clock.
    epoch: std::time::Instant,
    /// Seconds-since-epoch at which each channel is next free.
    free_at: Vec<f64>,
}

impl ThrottledBackend {
    /// Default concurrency cap: matches the handful of service lanes a
    /// single client typically gets from a PFS or an NVMe namespace.
    pub const DEFAULT_CHANNELS: usize = 4;

    /// Throttle `inner` to `bandwidth` bytes/s plus `latency` per op,
    /// with [`DEFAULT_CHANNELS`](Self::DEFAULT_CHANNELS) in-flight lanes.
    pub fn new(inner: Box<dyn StorageBackend>, bandwidth: f64, latency: f64) -> Self {
        Self::with_channel_count(inner, bandwidth, latency, Self::DEFAULT_CHANNELS)
    }

    /// Throttle `inner` with an explicit in-flight concurrency cap.
    pub fn with_channel_count(
        inner: Box<dyn StorageBackend>,
        bandwidth: f64,
        latency: f64,
        channels: usize,
    ) -> Self {
        assert!(bandwidth > 0.0 && latency >= 0.0 && channels >= 1);
        ThrottledBackend {
            inner,
            bandwidth_bits: AtomicU64::new(bandwidth.to_bits()),
            latency,
            channels: Mutex::new(Channels {
                epoch: std::time::Instant::now(),
                free_at: vec![0.0; channels],
            }),
        }
    }

    /// Throttle a fresh in-memory backend.
    pub fn in_memory(bandwidth: f64, latency: f64) -> Self {
        Self::new(Box::new(MemBackend::new()), bandwidth, latency)
    }

    /// Throttle a fresh in-memory backend with an explicit channel cap.
    pub fn with_channels(bandwidth: f64, latency: f64, channels: usize) -> Self {
        Self::with_channel_count(Box::new(MemBackend::new()), bandwidth, latency, channels)
    }

    /// The in-flight concurrency cap.
    pub fn channel_count(&self) -> usize {
        self.channels.lock().free_at.len()
    }

    /// The current sustained bandwidth, bytes/s.
    pub fn bandwidth(&self) -> f64 {
        f64::from_bits(self.bandwidth_bits.load(Ordering::Relaxed))
    }

    /// Step the sustained bandwidth mid-run (must stay positive).
    /// Operations already in their stall finish at the old rate; every
    /// subsequent operation pays the new one.
    pub fn set_bandwidth(&self, bandwidth: f64) {
        assert!(bandwidth > 0.0);
        self.bandwidth_bits
            .store(bandwidth.to_bits(), Ordering::Relaxed);
    }

    /// Charge one operation of `bytes` payload: book the earliest-free
    /// channel for `latency + bytes/bandwidth` of service, then sleep
    /// until the booked completion. Per-batch accounting falls out of
    /// this — a vectored call is *one* booking for its total bytes.
    fn stall(&self, bytes: usize) {
        let service = self.latency + bytes as f64 / self.bandwidth();
        let (epoch, end) = {
            let mut ch = self.channels.lock();
            let now = ch.epoch.elapsed().as_secs_f64();
            let mut lane = 0;
            for (i, free) in ch.free_at.iter().enumerate() {
                if *free < ch.free_at[lane] {
                    lane = i;
                }
            }
            let start = if ch.free_at[lane] > now {
                ch.free_at[lane]
            } else {
                now
            };
            let end = start + service;
            ch.free_at[lane] = end;
            (ch.epoch, end)
        };
        let deadline = epoch + std::time::Duration::from_secs_f64(end);
        let now = std::time::Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
    }
}

impl StorageBackend for ThrottledBackend {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.stall(data.len());
        self.inner.write_at(offset, data)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.stall(buf.len());
        self.inner.read_at(offset, buf)
    }

    fn write_vectored_at(&self, batch: &[IoVec<'_>]) -> Result<()> {
        // One latency charge per batch, bandwidth on the total bytes —
        // the way a PFS amortises request latency across a large
        // scatter-gather request. This is the modelled payoff of
        // coalescing: N scalar writes pay N latencies, one batch pays one.
        let total: usize = batch.iter().map(|seg| seg.data.len()).sum();
        self.stall(total);
        self.inner.write_vectored_at(batch)
    }

    fn read_vectored_at(&self, batch: &mut [IoVecMut<'_>]) -> Result<()> {
        let total: usize = batch.iter().map(|seg| seg.buf.len()).sum();
        self.stall(total);
        self.inner.read_vectored_at(batch)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}


/// Which backend operation a [`FaultRule`] applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultOp {
    /// `read_at`.
    Read,
    /// `write_at`.
    Write,
    /// `sync` (flush to durable storage).
    Flush,
}

/// What happens when a fault rule fires.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// Fail with [`H5Error::Transient`]: a retry of the same operation
    /// may succeed (the rule may be budget-limited via
    /// [`FaultPlan::times`]).
    Transient,
    /// Fail with [`H5Error::Storage`]: the device is gone; retrying the
    /// same operation cannot help.
    Persistent,
    /// Torn write: persist only the leading `fraction` of the payload,
    /// then fail with [`H5Error::Transient`]. A full rewrite (the retry
    /// path) repairs the tear, which is why it classifies as transient.
    /// Applies to writes only; on other ops it degrades to `Transient`.
    Torn {
        /// Fraction of the payload (0.0..=1.0) written before the error.
        fraction: f64,
    },
    /// Latency spike: stall the calling thread for `secs`, then let the
    /// operation through untouched.
    Delay {
        /// Stall duration in seconds.
        secs: f64,
    },
    /// Silent corruption: the read succeeds, but one seeded bit of the
    /// returned payload is flipped — the backend itself is untouched, so
    /// only checksum verification can notice. Applies to reads only; on
    /// other ops it degrades to `Transient`.
    Corrupt,
}

#[derive(Clone, Debug)]
enum Trigger {
    /// Fire on exactly the `n`-th operation of the class (0-based).
    At(u64),
    /// Fire on every operation of the class with index >= `n`.
    After(u64),
    /// Fire on each operation of the class independently with
    /// probability `rate`, drawn from the plan's seeded generator.
    Random(f64),
}

#[derive(Clone, Debug)]
struct FaultRule {
    op: FaultOp,
    trigger: Trigger,
    kind: FaultKind,
    /// Remaining firings (`None` = unlimited).
    budget: Option<u64>,
}

/// A deterministic, seeded schedule of storage faults.
///
/// A plan is a list of rules; each backend operation is classified
/// ([`FaultOp`]), its per-class index taken, and the first matching rule
/// with budget left fires. Random triggers draw from one LCG seeded at
/// construction, so the same plan against the same operation sequence
/// injects the same faults — chaos tests replay exactly.
///
/// Determinism holds per operation *sequence*: concurrent callers that
/// race their operations will interleave class indices
/// nondeterministically, so deterministic tests should drive the backend
/// from one stream (e.g. a single-stream async connector).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given jitter seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Fire `kind` on exactly the `index`-th operation of class `op`.
    pub fn fail_at(mut self, op: FaultOp, index: u64, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            op,
            trigger: Trigger::At(index),
            kind,
            budget: None,
        });
        self
    }

    /// Fire `kind` on every operation of class `op` from `index` onward.
    pub fn fail_after(mut self, op: FaultOp, index: u64, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            op,
            trigger: Trigger::After(index),
            kind,
            budget: None,
        });
        self
    }

    /// Fire `kind` on each operation of class `op` with probability
    /// `rate` (seeded, deterministic per operation sequence).
    pub fn random(mut self, op: FaultOp, rate: f64, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            op,
            trigger: Trigger::Random(rate.clamp(0.0, 1.0)),
            kind,
            budget: None,
        });
        self
    }

    /// Cap the most recently added rule to fire at most `n` times — e.g.
    /// a persistent-error *window* that heals after `n` failures.
    pub fn times(mut self, n: u64) -> Self {
        if let Some(rule) = self.rules.last_mut() {
            rule.budget = Some(n);
        }
        self
    }
}

/// Deterministic 64-bit LCG (MMIX constants) for the plan's random
/// triggers; upper bits as output.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / (1u64 << 31) as f64
    }

    /// Seeded integer in `0..n` (`n` must be non-zero).
    fn below(&mut self, n: u64) -> u64 {
        ((self.unit() * n as f64) as u64).min(n.saturating_sub(1))
    }
}

struct InjectorState {
    /// Per-class operation counters, indexed Read/Write/Flush.
    counts: [u64; 3],
    /// Remaining budget per rule (mirrors `FaultPlan::rules`).
    budgets: Vec<Option<u64>>,
    rng: Lcg,
}

/// A [`StorageBackend`] wrapper executing a [`FaultPlan`] against an
/// inner backend — the fault-injection stage for exercising error paths:
/// deferred async errors, retry/backoff absorption, circuit-breaker
/// degradation, torn-flush detection, staging-log recovery.
pub struct FaultInjector {
    inner: Arc<dyn StorageBackend>,
    plan: FaultPlan,
    state: Mutex<InjectorState>,
    /// Faults injected so far (delays excluded).
    injected: AtomicU64,
    /// When disarmed, operations pass through untouched (and are not
    /// counted) — lets tests set up metadata cleanly before the chaos.
    armed: AtomicBool,
}

impl FaultInjector {
    /// Wrap `inner` under `plan`, armed.
    pub fn new(inner: Arc<dyn StorageBackend>, plan: FaultPlan) -> Self {
        let budgets = plan.rules.iter().map(|r| r.budget).collect();
        let seed = plan.seed;
        FaultInjector {
            inner,
            plan,
            state: Mutex::new(InjectorState {
                counts: [0; 3],
                budgets,
                rng: Lcg::new(seed),
            }),
            injected: AtomicU64::new(0),
            armed: AtomicBool::new(true),
        }
    }

    /// Convenience: the old `FaultyBackend` shape — every write after the
    /// first `writes_allowed` fails permanently.
    pub fn failing_after(inner: Arc<dyn StorageBackend>, writes_allowed: u64) -> Self {
        Self::new(
            inner,
            FaultPlan::new(0).fail_after(FaultOp::Write, writes_allowed, FaultKind::Persistent),
        )
    }

    /// Enable or disable injection. Disarmed, the wrapper is transparent
    /// and operations do not advance the plan's counters.
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::SeqCst);
    }

    /// Total faults injected so far (delays are not counted).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// The wrapped backend (e.g. to reopen a container after a simulated
    /// crash without the injector in the path).
    pub fn into_inner(self) -> Arc<dyn StorageBackend> {
        self.inner
    }

    /// Decide the fault (if any) for the next operation of class `op`.
    fn decide(&self, op: FaultOp) -> Option<FaultKind> {
        if !self.armed.load(Ordering::SeqCst) {
            return None;
        }
        let mut st = self.state.lock();
        let idx = st.counts[op as usize];
        st.counts[op as usize] += 1;
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.op != op {
                continue;
            }
            if st.budgets[i] == Some(0) {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::At(n) => idx == n,
                Trigger::After(n) => idx >= n,
                Trigger::Random(rate) => st.rng.unit() < rate,
            };
            if fires {
                if let Some(b) = st.budgets[i].as_mut() {
                    *b -= 1;
                }
                return Some(rule.kind.clone());
            }
        }
        None
    }

    /// Build the error for a decided non-delay fault. `Torn` on a
    /// payload-free path (read/flush) degrades to a plain transient.
    fn fault_error(&self, kind: &FaultKind, what: &str) -> H5Error {
        self.injected.fetch_add(1, Ordering::SeqCst);
        match kind {
            FaultKind::Persistent => H5Error::Storage(format!("injected persistent {what} fault")),
            _ => H5Error::Transient(format!("injected transient {what} fault")),
        }
    }
}

impl StorageBackend for FaultInjector {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        match self.decide(FaultOp::Write) {
            None => self.inner.write_at(offset, data),
            Some(FaultKind::Delay { secs }) => {
                std::thread::sleep(std::time::Duration::from_secs_f64(secs.max(0.0)));
                self.inner.write_at(offset, data)
            }
            Some(FaultKind::Torn { fraction }) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                let keep = ((data.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
                // Persist the tear, then report a retryable failure.
                self.inner.write_at(offset, &data[..keep.min(data.len())])?;
                Err(H5Error::Transient(format!(
                    "injected torn write: {keep} of {} bytes persisted",
                    data.len()
                )))
            }
            Some(kind) => Err(self.fault_error(&kind, "write")),
        }
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        match self.decide(FaultOp::Read) {
            None => self.inner.read_at(offset, buf),
            Some(FaultKind::Delay { secs }) => {
                std::thread::sleep(std::time::Duration::from_secs_f64(secs.max(0.0)));
                self.inner.read_at(offset, buf)
            }
            Some(FaultKind::Corrupt) => {
                self.inner.read_at(offset, buf)?;
                if !buf.is_empty() {
                    self.injected.fetch_add(1, Ordering::SeqCst);
                    let (byte, bit) = {
                        let mut st = self.state.lock();
                        (st.rng.below(buf.len() as u64), st.rng.below(8))
                    };
                    buf[byte as usize] ^= 1u8 << bit;
                }
                Ok(())
            }
            Some(kind) => Err(self.fault_error(&kind, "read")),
        }
    }

    fn write_vectored_at(&self, batch: &[IoVec<'_>]) -> Result<()> {
        // Deliberately NOT a pass-through to the inner vectored op: each
        // segment consumes one fault-plan index of its class, so a plan
        // written against the scalar sequence observes identical faults —
        // and a mid-batch fault leaves the same partial state (segments
        // before it applied, segments after it untouched and uncounted).
        for seg in batch {
            self.write_at(seg.offset, seg.data)?;
        }
        Ok(())
    }

    fn read_vectored_at(&self, batch: &mut [IoVecMut<'_>]) -> Result<()> {
        // Same per-segment fault accounting as the write path.
        for seg in batch.iter_mut() {
            self.read_at(seg.offset, seg.buf)?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> Result<()> {
        match self.decide(FaultOp::Flush) {
            None => self.inner.sync(),
            Some(FaultKind::Delay { secs }) => {
                std::thread::sleep(std::time::Duration::from_secs_f64(secs.max(0.0)));
                self.inner.sync()
            }
            Some(kind) => Err(self.fault_error(&kind, "flush")),
        }
    }
}

/// A shared mutation budget with a cut point: the clock of the
/// crash-point exploration harness. Every mutating backend operation —
/// each scalar write, each segment of a vectored write, each sync —
/// asks the clock for admission; once `cut_after` mutations have been
/// admitted, every later mutation is refused forever, modelling the
/// device vanishing at one deterministic instant. Share one clock
/// across several [`CrashBackend`] wrappers (container backend plus
/// staging device) and the cut lands at a single global boundary in
/// the whole stack's mutation order.
pub struct CrashClock {
    /// Mutations attempted so far (admitted or refused).
    mutations: AtomicU64,
    /// Admissions granted before the cut.
    cut_after: u64,
    /// Bytes of the boundary write (mutation index `cut_after`) that
    /// still reach the device — the torn-write mode. `None` cuts clean.
    torn_prefix: Option<u64>,
}

impl CrashClock {
    /// A clock that never cuts — the recording pass that learns how
    /// many mutation boundaries a workload has (read it back with
    /// [`CrashClock::mutations`]).
    pub fn unlimited() -> Arc<Self> {
        Self::cut_after(u64::MAX)
    }

    /// Cut persistence after the first `k` mutations: mutation indices
    /// `0..k` are admitted, everything after fails with a storage
    /// error. `k = 0` refuses the very first mutation.
    pub fn cut_after(k: u64) -> Arc<Self> {
        Arc::new(CrashClock {
            mutations: AtomicU64::new(0),
            cut_after: k,
            torn_prefix: None,
        })
    }

    /// Like [`CrashClock::cut_after`], but the boundary mutation itself
    /// *tears*: if it is a write, its first `keep_bytes` bytes (clamped
    /// to the write's length) reach the device before the error is
    /// returned — modelling the in-flight sector train a power cut
    /// chops mid-write. The caller still never gets an ack for the torn
    /// write; what the harness checks is that recovery disowns the
    /// partial bytes. A boundary `sync` cannot tear and is refused
    /// whole.
    pub fn cut_torn(k: u64, keep_bytes: u64) -> Arc<Self> {
        Arc::new(CrashClock {
            mutations: AtomicU64::new(0),
            cut_after: k,
            torn_prefix: Some(keep_bytes),
        })
    }

    /// Mutations attempted so far, admitted or refused.
    pub fn mutations(&self) -> u64 {
        self.mutations.load(Ordering::SeqCst)
    }

    /// Whether any mutation has been refused yet (the cut has fired).
    pub fn cut(&self) -> bool {
        self.mutations.load(Ordering::SeqCst) > self.cut_after
    }

    fn admit(&self) -> bool {
        self.mutations.fetch_add(1, Ordering::SeqCst) < self.cut_after
    }

    /// Admission decision for a write, distinguishing the torn
    /// boundary: `Full` before the cut, `Torn(keep)` exactly at a torn
    /// boundary, `Refused` after (and at a clean boundary).
    fn admit_write(&self) -> Admission {
        let idx = self.mutations.fetch_add(1, Ordering::SeqCst);
        if idx < self.cut_after {
            Admission::Full
        } else if idx == self.cut_after {
            match self.torn_prefix {
                Some(keep) => Admission::Torn(keep),
                None => Admission::Refused,
            }
        } else {
            Admission::Refused
        }
    }
}

enum Admission {
    Full,
    Torn(u64),
    Refused,
}

/// A [`StorageBackend`] wrapper that deterministically kills persistence
/// after the k-th mutation of its [`CrashClock`]. Refused mutations
/// return [`H5Error::Storage`] without touching the inner backend, so
/// the application never gets an ack for data past the cut. Reads pass
/// through untouched (the process's view survives until it exits; what
/// matters for durability is what the *inner* backend holds when the
/// harness reopens it). A vectored write admits each segment separately
/// — every segment boundary is its own crash point, exactly like the
/// equivalent scalar sequence.
pub struct CrashBackend {
    inner: Arc<dyn StorageBackend>,
    clock: Arc<CrashClock>,
}

impl CrashBackend {
    /// Wrap `inner` under `clock`.
    pub fn new(inner: Arc<dyn StorageBackend>, clock: Arc<CrashClock>) -> Self {
        CrashBackend { inner, clock }
    }

    /// The wrapped backend — what the harness reopens after the
    /// simulated crash: it holds exactly the admitted mutations.
    pub fn inner(&self) -> Arc<dyn StorageBackend> {
        self.inner.clone()
    }

    fn refuse(&self, what: &str) -> H5Error {
        H5Error::Storage(format!("crash point: {what} dropped after the persistence cut"))
    }
}

impl StorageBackend for CrashBackend {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        match self.clock.admit_write() {
            Admission::Full => self.inner.write_at(offset, data),
            Admission::Torn(keep) => {
                // The prefix lands on the device; the caller still sees
                // the crash error — an unacked, torn in-flight write.
                let keep = (keep as usize).min(data.len());
                if keep > 0 {
                    self.inner.write_at(offset, &data[..keep])?;
                }
                Err(self.refuse("write (torn mid-flight)"))
            }
            Admission::Refused => Err(self.refuse("write")),
        }
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_at(offset, buf)
    }

    fn write_vectored_at(&self, batch: &[IoVec<'_>]) -> Result<()> {
        // Scalar loop on purpose: each segment is one mutation boundary.
        for seg in batch {
            self.write_at(seg.offset, seg.data)?;
        }
        Ok(())
    }

    fn read_vectored_at(&self, batch: &mut [IoVecMut<'_>]) -> Result<()> {
        self.inner.read_vectored_at(batch)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> Result<()> {
        if !self.clock.admit() {
            return Err(self.refuse("sync"));
        }
        self.inner.sync()
    }
}

/// A backend decorator that traces every vectored operation: each
/// `write_vectored_at`/`read_vectored_at` becomes a `storage.batch` span
/// carrying a [`BackendBatch`](apio_trace::Event::BackendBatch) payload
/// (segment count and total bytes), timed around the inner call. Scalar
/// operations pass through untraced — the planner's data path is
/// vectored, and metadata/superblock scalar I/O would only add noise.
///
/// Wrap any backend, including [`ThrottledBackend`] and [`FaultInjector`]
/// — the span then measures the throttled (or faulting) duration the
/// caller actually paid.
pub struct TracedBackend {
    inner: Arc<dyn StorageBackend>,
    tracer: apio_trace::Tracer,
}

impl TracedBackend {
    /// Trace `inner`'s vectored operations through `tracer`.
    pub fn new(inner: Arc<dyn StorageBackend>, tracer: apio_trace::Tracer) -> Self {
        TracedBackend { inner, tracer }
    }
}

impl StorageBackend for TracedBackend {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.inner.write_at(offset, data)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_at(offset, buf)
    }

    fn write_vectored_at(&self, batch: &[IoVec<'_>]) -> Result<()> {
        let mut span = self.tracer.span("storage.batch");
        span.set_event(apio_trace::Event::BackendBatch {
            segments: batch.len() as u64,
            bytes: batch.iter().map(|seg| seg.data.len() as u64).sum(),
        });
        self.inner.write_vectored_at(batch)
    }

    fn read_vectored_at(&self, batch: &mut [IoVecMut<'_>]) -> Result<()> {
        let mut span = self.tracer.span("storage.batch");
        span.set_event(apio_trace::Event::BackendBatch {
            segments: batch.len() as u64,
            bytes: batch.iter().map(|seg| seg.buf.len() as u64).sum(),
        });
        self.inner.read_vectored_at(batch)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn exercise(backend: &dyn StorageBackend) {
        assert!(backend.is_empty());
        backend.write_at(0, b"hello").unwrap();
        backend.write_at(10, b"world").unwrap();
        assert_eq!(backend.len(), 15);

        let mut buf = [0u8; 5];
        backend.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        backend.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"world");

        // The gap reads as zeros.
        let mut gap = [9u8; 5];
        backend.read_at(5, &mut gap).unwrap();
        assert_eq!(gap, [0u8; 5]);

        // Overwrite in place.
        backend.write_at(0, b"HELLO").unwrap();
        backend.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"HELLO");
        assert_eq!(backend.len(), 15);

        // Reading past the end fails.
        let mut big = [0u8; 32];
        assert!(backend.read_at(0, &mut big).is_err());
        backend.sync().unwrap();
    }

    #[test]
    fn mem_backend_contract() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn file_backend_contract() {
        let dir = std::env::temp_dir().join(format!("h5lite-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contract.bin");
        exercise(&FileBackend::create(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_reopen_preserves_data() {
        let dir = std::env::temp_dir().join(format!("h5lite-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.bin");
        {
            let b = FileBackend::create(&path).unwrap();
            b.write_at(100, b"persist").unwrap();
            b.sync().unwrap();
        }
        {
            let b = FileBackend::open(&path).unwrap();
            assert_eq!(b.len(), 107);
            let mut buf = [0u8; 7];
            b.read_at(100, &mut buf).unwrap();
            assert_eq!(&buf, b"persist");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let backend = Arc::new(MemBackend::new());
        let mut joins = Vec::new();
        for t in 0..8u64 {
            let b = backend.clone();
            joins.push(std::thread::spawn(move || {
                let data = vec![t as u8 + 1; 1000];
                b.write_at(t * 1000, &data).unwrap();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(backend.len(), 8000);
        for t in 0..8u64 {
            let mut buf = vec![0u8; 1000];
            backend.read_at(t * 1000, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == t as u8 + 1));
        }
    }

    #[test]
    fn empty_read_at_any_offset_succeeds() {
        let b = MemBackend::new();
        let mut empty: [u8; 0] = [];
        b.read_at(0, &mut empty).unwrap();
    }

    #[test]
    fn mem_read_at_overflow_errors_instead_of_panicking() {
        // Regression: `offset as usize + out.len()` used to overflow and
        // panic in debug builds; it must be a Storage error like write_at.
        let b = MemBackend::new();
        b.write_at(0, b"x").unwrap();
        let mut buf = [0u8; 2];
        let err = b.read_at(u64::MAX, &mut buf).unwrap_err();
        assert!(matches!(err, H5Error::Storage(_)), "{err:?}");
        let err = b.write_at(u64::MAX, b"yz").unwrap_err();
        assert!(matches!(err, H5Error::Storage(_)), "{err:?}");
    }

    fn exercise_vectored(backend: &dyn StorageBackend) {
        // Disjoint, unordered-in-memory-but-ordered-in-batch segments.
        let a = [1u8; 10];
        let b = [2u8; 10];
        let c = [3u8; 4];
        backend
            .write_vectored_at(&[
                IoVec { offset: 0, data: &a },
                IoVec { offset: 20, data: &b },
                IoVec { offset: 40, data: &c },
            ])
            .unwrap();
        assert_eq!(backend.len(), 44);

        let mut r0 = [0u8; 10];
        let mut r1 = [9u8; 10]; // covers the 10..20 gap: must read zeros
        let mut r2 = [0u8; 4];
        backend
            .read_vectored_at(&mut [
                IoVecMut { offset: 0, buf: &mut r0 },
                IoVecMut { offset: 10, buf: &mut r1 },
                IoVecMut { offset: 40, buf: &mut r2 },
            ])
            .unwrap();
        assert_eq!(r0, [1u8; 10]);
        assert_eq!(r1, [0u8; 10]);
        assert_eq!(r2, [3u8; 4]);

        // A past-the-end segment fails the batch.
        let mut past = [0u8; 8];
        assert!(backend
            .read_vectored_at(&mut [IoVecMut { offset: 40, buf: &mut past }])
            .is_err());
    }

    #[test]
    fn mem_vectored_contract() {
        exercise_vectored(&MemBackend::new());
    }

    #[test]
    fn file_vectored_contract() {
        let dir = std::env::temp_dir().join(format!("h5lite-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vectored.bin");
        exercise_vectored(&FileBackend::create(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn throttled_vectored_contract() {
        exercise_vectored(&ThrottledBackend::in_memory(1e12, 0.0));
    }

    #[test]
    fn mem_backend_spans_pages_and_shards() {
        // Writes and reads crossing page boundaries and landing on pages
        // far apart (different shards) must behave like one flat array.
        let b = MemBackend::new();
        let pattern: Vec<u8> = (0..3 * PAGE_BYTES).map(|i| (i % 251) as u8).collect();
        let base = (PAGE_BYTES as u64 * 7) + 13; // misaligned, mid-page
        b.write_at(base, &pattern).unwrap();
        assert_eq!(b.len(), base + pattern.len() as u64);

        let mut out = vec![0u8; pattern.len()];
        b.read_at(base, &mut out).unwrap();
        assert_eq!(out, pattern);

        // A read straddling written and never-written pages within len.
        b.write_at(PAGE_BYTES as u64 * 40, &[7u8; 4]).unwrap();
        let mut gap = vec![1u8; PAGE_BYTES + 8];
        b.read_at(PAGE_BYTES as u64 * 20, &mut gap).unwrap();
        assert!(gap.iter().all(|&x| x == 0));
    }

    #[test]
    fn mem_concurrent_writers_across_shards() {
        let backend = Arc::new(MemBackend::new());
        let mut joins = Vec::new();
        for t in 0..8u64 {
            let b = backend.clone();
            joins.push(std::thread::spawn(move || {
                // Each thread owns a distinct page-sized extent.
                let data = vec![t as u8 + 1; PAGE_BYTES];
                b.write_at(t * PAGE_BYTES as u64, &data).unwrap();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(backend.len(), 8 * PAGE_BYTES as u64);
        for t in 0..8u64 {
            let mut buf = vec![0u8; PAGE_BYTES];
            backend.read_at(t * PAGE_BYTES as u64, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == t as u8 + 1));
        }
    }

    #[test]
    fn throttled_batch_pays_one_latency() {
        // 2 segments through the scalar path: 2 × 30 ms of latency.
        // The same segments as one batch: a single 30 ms charge.
        let lat = 0.03;
        let b = ThrottledBackend::in_memory(1e12, lat);
        let seg = [0u8; 64];

        let t0 = std::time::Instant::now();
        b.write_vectored_at(&[
            IoVec { offset: 0, data: &seg },
            IoVec { offset: 64, data: &seg },
        ])
        .unwrap();
        let batched = t0.elapsed().as_secs_f64();
        assert!(batched >= lat * 0.9, "batch must pay latency, took {batched}");
        assert!(
            batched < lat * 1.9,
            "batch must pay latency ONCE, took {batched}"
        );

        let t0 = std::time::Instant::now();
        b.write_at(128, &seg).unwrap();
        b.write_at(192, &seg).unwrap();
        let scalar = t0.elapsed().as_secs_f64();
        assert!(scalar >= 2.0 * lat * 0.9, "scalar pays per op, took {scalar}");
    }

    #[test]
    fn throttled_channels_cap_in_flight_concurrency() {
        // 6 concurrent scalar writes over 2 channels: three serialized
        // waves of two, so wall time is ~3 latencies — not the single
        // shared latency the old unbounded model would charge.
        let lat = 0.03;
        let b = Arc::new(ThrottledBackend::with_channels(1e12, lat, 2));
        let t0 = std::time::Instant::now();
        let threads: Vec<_> = (0..6u64)
            .map(|i| {
                let b = b.clone();
                std::thread::spawn(move || b.write_at(i * 64, &[3u8; 64]).unwrap())
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(
            elapsed >= 3.0 * lat * 0.9,
            "depth beyond the channel cap must serialize, took {elapsed}"
        );
        assert!(
            elapsed < 5.0 * lat,
            "ops within the cap must overlap, took {elapsed}"
        );
    }

    #[test]
    fn injector_vectored_advances_one_index_per_segment() {
        let inner = Arc::new(MemBackend::new());
        let plan = FaultPlan::new(0).fail_at(FaultOp::Write, 2, FaultKind::Transient);
        let b = FaultInjector::new(inner.clone(), plan);

        let seg = [5u8; 8];
        let batch: Vec<IoVec<'_>> = (0..4)
            .map(|i| IoVec { offset: i * 8, data: &seg })
            .collect();
        let err = b.write_vectored_at(&batch).unwrap_err();
        assert!(err.is_retryable(), "{err:?}");
        assert_eq!(b.injected(), 1);
        // Segments 0 and 1 landed; the faulted segment 2 and the
        // never-attempted segment 3 did not.
        assert_eq!(inner.len(), 16);

        // The next scalar write consumes index 3 (segment 3 was never
        // attempted, so it did not advance the counter).
        b.write_at(100, &seg).unwrap();
        let mut buf = [0u8; 8];
        b.read_at(100, &mut buf).unwrap();
        assert_eq!(buf, seg);
    }
    #[test]
    fn throttled_backend_delegates_and_delays() {
        let b = ThrottledBackend::in_memory(1e6, 0.0); // 1 MB/s
        let t0 = std::time::Instant::now();
        b.write_at(0, &[1u8; 50_000]).unwrap(); // ~50 ms
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(elapsed >= 0.045, "throttle must stall, took {elapsed}");
        let mut buf = [0u8; 4];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 1, 1, 1]);
        assert_eq!(b.len(), 50_000);
    }

    #[test]
    fn throttled_contract() {
        exercise(&ThrottledBackend::in_memory(1e12, 0.0));
    }

    #[test]
    fn injector_fails_writes_after_budget() {
        let b = FaultInjector::failing_after(Arc::new(MemBackend::new()), 2);
        b.write_at(0, b"one").unwrap();
        b.write_at(10, b"two").unwrap();
        let err = b.write_at(20, b"three").unwrap_err();
        assert!(matches!(err, H5Error::Storage(m) if m.contains("injected")));
        assert_eq!(b.injected(), 1);
        // Reads keep working; earlier data intact.
        let mut buf = [0u8; 3];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"one");
    }

    #[test]
    fn injector_covers_reads_and_flushes_too() {
        // Regression for the old FaultyBackend asymmetry: plans must be
        // able to fault the read and flush paths, not just writes.
        let plan = FaultPlan::new(7)
            .fail_at(FaultOp::Read, 1, FaultKind::Transient)
            .fail_at(FaultOp::Flush, 0, FaultKind::Persistent);
        let b = FaultInjector::new(Arc::new(MemBackend::new()), plan);
        b.write_at(0, b"data").unwrap();

        let mut buf = [0u8; 4];
        b.read_at(0, &mut buf).unwrap(); // read #0 passes
        let err = b.read_at(0, &mut buf).unwrap_err(); // read #1 faults
        assert!(err.is_retryable(), "read fault should be transient: {err:?}");
        b.read_at(0, &mut buf).unwrap(); // read #2 passes again
        assert_eq!(&buf, b"data");

        let err = b.sync().unwrap_err();
        assert!(matches!(err, H5Error::Storage(_)), "{err:?}");
        b.sync().unwrap(); // flush #1 passes (At(0) already fired)
        assert_eq!(b.injected(), 2);
    }

    #[test]
    fn torn_write_persists_prefix_and_is_retryable() {
        let inner = Arc::new(MemBackend::new());
        let plan = FaultPlan::new(1).fail_at(FaultOp::Write, 0, FaultKind::Torn { fraction: 0.5 });
        let b = FaultInjector::new(inner.clone(), plan);

        let err = b.write_at(0, b"ABCDEFGH").unwrap_err();
        assert!(err.is_retryable(), "{err:?}");
        // Half the payload reached the device.
        assert_eq!(inner.len(), 4);
        let mut torn = [0u8; 4];
        inner.read_at(0, &mut torn).unwrap();
        assert_eq!(&torn, b"ABCD");

        // The retry (write #1, no rule) repairs the tear.
        b.write_at(0, b"ABCDEFGH").unwrap();
        let mut buf = [0u8; 8];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ABCDEFGH");
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let faults_for = |seed: u64| {
            let plan = FaultPlan::new(seed).random(FaultOp::Write, 0.3, FaultKind::Transient);
            let b = FaultInjector::new(Arc::new(MemBackend::new()), plan);
            (0..64u64)
                .map(|i| u8::from(b.write_at(i * 8, &[0u8; 8]).is_err()))
                .collect::<Vec<_>>()
        };
        let a = faults_for(42);
        assert_eq!(a, faults_for(42), "same seed must replay identically");
        assert_ne!(a, faults_for(43), "different seed should differ");
        let hits = a.iter().map(|&x| x as usize).sum::<usize>();
        assert!(hits > 5 && hits < 40, "rate 0.3 over 64 ops, got {hits}");
    }

    #[test]
    fn times_budget_caps_a_rule() {
        // A persistent-error *window*: fails twice, then heals.
        let plan = FaultPlan::new(0)
            .fail_after(FaultOp::Write, 0, FaultKind::Persistent)
            .times(2);
        let b = FaultInjector::new(Arc::new(MemBackend::new()), plan);
        assert!(b.write_at(0, b"x").is_err());
        assert!(b.write_at(0, b"x").is_err());
        b.write_at(0, b"x").unwrap();
        b.write_at(1, b"y").unwrap();
        assert_eq!(b.injected(), 2);
    }

    #[test]
    fn disarmed_injector_is_transparent() {
        let plan = FaultPlan::new(0).fail_after(FaultOp::Write, 0, FaultKind::Persistent);
        let b = FaultInjector::new(Arc::new(MemBackend::new()), plan);
        b.set_armed(false);
        for i in 0..4 {
            b.write_at(i * 4, b"pass").unwrap();
        }
        b.set_armed(true);
        assert!(b.write_at(0, b"now").is_err());
        assert_eq!(b.injected(), 1);
    }

    #[test]
    fn delay_faults_stall_but_succeed() {
        let plan = FaultPlan::new(0).fail_at(FaultOp::Write, 0, FaultKind::Delay { secs: 0.02 });
        let b = FaultInjector::new(Arc::new(MemBackend::new()), plan);
        let t0 = std::time::Instant::now();
        b.write_at(0, b"slow").unwrap();
        assert!(t0.elapsed().as_secs_f64() >= 0.015);
        assert_eq!(b.injected(), 0, "delays are not counted as faults");
        let mut buf = [0u8; 4];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"slow");
    }

    #[test]
    fn corrupt_fault_flips_one_bit_of_the_payload_only() {
        let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        inner.write_at(0, &[0u8; 64]).unwrap();
        let b = FaultInjector::new(
            inner.clone(),
            FaultPlan::new(0xC0FFEE).fail_at(FaultOp::Read, 1, FaultKind::Corrupt),
        );

        let mut clean = [0u8; 64];
        b.read_at(0, &mut clean).unwrap(); // read #0: untouched
        assert_eq!(clean, [0u8; 64]);

        let mut hit = [0u8; 64];
        b.read_at(0, &mut hit).unwrap(); // read #1: silently corrupted
        let flipped: u32 = hit.iter().map(|x| x.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one seeded bit flip");
        assert_eq!(b.injected(), 1);

        // The device itself is untouched — only the returned payload lies.
        let mut again = [0u8; 64];
        inner.read_at(0, &mut again).unwrap();
        assert_eq!(again, [0u8; 64]);
    }

    #[test]
    fn corrupt_faults_are_deterministic_per_seed() {
        let payload_for = |seed: u64| {
            let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
            inner.write_at(0, &[0u8; 32]).unwrap();
            let b = FaultInjector::new(
                inner,
                FaultPlan::new(seed).fail_after(FaultOp::Read, 0, FaultKind::Corrupt),
            );
            let mut buf = [0u8; 32];
            b.read_at(0, &mut buf).unwrap();
            buf
        };
        assert_eq!(payload_for(11), payload_for(11));
        assert_ne!(payload_for(11), payload_for(12));
    }

    #[test]
    fn corrupt_on_non_read_degrades_to_transient() {
        let plan = FaultPlan::new(1)
            .fail_at(FaultOp::Write, 0, FaultKind::Corrupt)
            .fail_at(FaultOp::Flush, 0, FaultKind::Corrupt);
        let b = FaultInjector::new(Arc::new(MemBackend::new()), plan);
        assert!(matches!(
            b.write_at(0, b"x").unwrap_err(),
            H5Error::Transient(_)
        ));
        assert!(matches!(b.sync().unwrap_err(), H5Error::Transient(_)));
    }

    #[test]
    fn crash_backend_cuts_after_k_mutations() {
        let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let clock = CrashClock::cut_after(2);
        let b = CrashBackend::new(inner.clone(), clock.clone());
        b.write_at(0, b"aa").unwrap();
        b.sync().unwrap();
        assert!(!clock.cut());
        assert!(matches!(
            b.write_at(2, b"bb").unwrap_err(),
            H5Error::Storage(_)
        ));
        assert!(b.sync().is_err());
        assert!(clock.cut());
        // Reads survive the cut; the inner device holds only what was
        // admitted before it.
        let mut buf = [0u8; 2];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"aa");
        assert_eq!(inner.len(), 2);
    }

    #[test]
    fn crash_backend_counts_each_vectored_segment_as_a_boundary() {
        let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let b = CrashBackend::new(inner.clone(), CrashClock::cut_after(1));
        let err = b
            .write_vectored_at(&[
                IoVec { offset: 0, data: b"aa" },
                IoVec { offset: 2, data: b"bb" },
            ])
            .unwrap_err();
        assert!(matches!(err, H5Error::Storage(_)));
        assert_eq!(inner.len(), 2, "only the admitted first segment landed");
    }

    #[test]
    fn crash_clock_record_pass_counts_every_mutation() {
        let clock = CrashClock::unlimited();
        let b = CrashBackend::new(Arc::new(MemBackend::new()), clock.clone());
        b.write_at(0, b"a").unwrap();
        b.write_vectored_at(&[
            IoVec { offset: 1, data: b"b" },
            IoVec { offset: 2, data: b"c" },
        ])
        .unwrap();
        b.sync().unwrap();
        assert_eq!(clock.mutations(), 4, "scalar + 2 segments + sync");
        assert!(!clock.cut());
    }

    #[test]
    fn one_clock_orders_mutations_across_two_backends() {
        // Container backend and staging device share the clock: the cut
        // lands at one global boundary across both.
        let c_inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let s_inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let clock = CrashClock::cut_after(3);
        let c = CrashBackend::new(c_inner.clone(), clock.clone());
        let s = CrashBackend::new(s_inner.clone(), clock);
        c.write_at(0, b"c0").unwrap(); // mutation 0
        s.write_at(0, b"s0").unwrap(); // mutation 1
        c.write_at(2, b"c1").unwrap(); // mutation 2
        assert!(s.write_at(2, b"s1").is_err()); // mutation 3: refused
        assert_eq!(c_inner.len(), 4);
        assert_eq!(s_inner.len(), 2);
    }
}
