//! Atomic dual-slot superblock commit (DESIGN.md §13).
//!
//! The container's root pointer lives in **two** 64-byte slots at device
//! offsets 0 and 64. Each slot is self-describing: magic, a generation
//! number, the metadata-extent pointer (address/length/FNV), the
//! allocation watermark, the root object id, and an FNV-1a self-checksum
//! over everything before it. A commit writes exactly **one** slot — the
//! one the *next* generation maps to — so no single torn or interrupted
//! superblock write can destroy the last durable root: [`read_latest`]
//! validates both slots independently and resumes from the highest valid
//! generation.
//!
//! The commit protocol (driven by `Container::flush`):
//!
//! 1. append the metadata extent and `sync` — the new root's payload is
//!    durable before any pointer to it exists;
//! 2. write slot `generation % 2` (the very first commit seeds both
//!    slots so a later torn commit always has a valid fallback);
//! 3. `sync` again — the root switch itself is now durable.
//!
//! A crash between any two steps leaves at least one valid slot naming a
//! fully durable metadata extent. The `xtask` `superblock-discipline`
//! lint denies raw offset-0 writes anywhere else in `h5lite`, so this
//! module stays the only code path that can touch the slots.

use std::sync::Arc;

use crate::codec::{Reader, Writer};
use crate::error::{H5Error, Result};
use crate::storage::StorageBackend;

/// Bytes per superblock slot.
pub const SLOT_LEN: u64 = 64;
/// Total reserved superblock area (two slots); extents start here.
pub const SUPERBLOCK_AREA: u64 = 2 * SLOT_LEN;

/// Format magic: version 2 is the dual-slot layout.
const MAGIC: &[u8; 8] = b"H5LITE\x00\x02";
/// Bytes covered by the slot self-checksum (magic + six u64 fields).
const CHECKSUMMED_LEN: usize = 56;

/// FNV-1a over `bytes` — the one checksum the whole container format
/// uses (slots, the metadata extent, and per-extent data checksums).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One decoded superblock slot: the durable root of a container.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Superblock {
    /// Monotonic commit counter; the highest valid slot wins at open.
    pub generation: u64,
    /// Address of the current metadata extent.
    pub meta_addr: u64,
    /// Length of the current metadata extent.
    pub meta_len: u64,
    /// FNV-1a over the metadata extent.
    pub meta_fnv: u64,
    /// Allocation watermark at commit time.
    pub eof: u64,
    /// Root object id (always `ROOT_ID`; validated by the opener).
    pub root_id: u64,
}

/// Encode one 64-byte slot image: magic, fields, self-checksum.
pub(crate) fn encode_slot(sb: &Superblock) -> Vec<u8> {
    let mut out = Vec::with_capacity(SLOT_LEN as usize);
    out.extend_from_slice(MAGIC);
    let mut w = Writer::new();
    w.u64(sb.generation);
    w.u64(sb.meta_addr);
    w.u64(sb.meta_len);
    w.u64(sb.meta_fnv);
    w.u64(sb.eof);
    w.u64(sb.root_id);
    out.extend_from_slice(&w.into_bytes());
    debug_assert_eq!(out.len(), CHECKSUMMED_LEN);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    debug_assert_eq!(out.len() as u64, SLOT_LEN);
    out
}

/// Decode and validate one slot image (magic + self-checksum + fields).
pub(crate) fn decode_slot(buf: &[u8]) -> Result<Superblock> {
    if buf.len() < SLOT_LEN as usize {
        return Err(H5Error::Corrupt("superblock slot too short".into()));
    }
    if &buf[..MAGIC.len()] != MAGIC {
        return Err(H5Error::Corrupt("bad superblock magic".into()));
    }
    let stored = u64::from_le_bytes(
        buf[CHECKSUMMED_LEN..SLOT_LEN as usize]
            .try_into()
            .map_err(|_| H5Error::Corrupt("superblock slot too short".into()))?,
    );
    if fnv1a64(&buf[..CHECKSUMMED_LEN]) != stored {
        return Err(H5Error::Corrupt("superblock slot checksum mismatch".into()));
    }
    let mut r = Reader::new(&buf[MAGIC.len()..CHECKSUMMED_LEN]);
    Ok(Superblock {
        generation: r.u64()?,
        meta_addr: r.u64()?,
        meta_len: r.u64()?,
        meta_fnv: r.u64()?,
        eof: r.u64()?,
        root_id: r.u64()?,
    })
}

/// Device offset of slot `index` (0 or 1).
fn slot_offset(index: u64) -> Result<u64> {
    index.checked_mul(SLOT_LEN).ok_or_else(|| {
        H5Error::Storage("superblock slot offset overflows the device address space".into())
    })
}

/// Read both slots and return the highest-generation valid one, plus the
/// number of invalid slots seen on the way (0 in the healthy steady
/// state, where the two slots hold consecutive generations). A non-zero
/// count on a successful open means the container survived a torn or
/// corrupted commit by falling back to the other slot.
pub(crate) fn read_latest(backend: &Arc<dyn StorageBackend>) -> Result<(Superblock, u64)> {
    let mut best: Option<Superblock> = None;
    let mut invalid = 0u64;
    for index in 0..2u64 {
        let mut buf = [0u8; SLOT_LEN as usize];
        if backend.read_at(slot_offset(index)?, &mut buf).is_err() {
            invalid = invalid.saturating_add(1);
            continue;
        }
        match decode_slot(&buf) {
            Err(_) => invalid = invalid.saturating_add(1),
            Ok(sb) => match &best {
                Some(b) if b.generation >= sb.generation => {}
                _ => best = Some(sb),
            },
        }
    }
    match best {
        Some(sb) => Ok((sb, invalid)),
        None => Err(H5Error::Corrupt(
            "no valid superblock slot (not an h5lite container, or a torn create)".into(),
        )),
    }
}

/// Commit `sb` by writing the slot its generation maps to. The first
/// commit (generation 1) seeds both slots with the same image so every
/// later commit has a valid fallback to tear away from. The caller
/// syncs the metadata extent before calling and syncs again after.
pub(crate) fn commit(backend: &Arc<dyn StorageBackend>, sb: &Superblock) -> Result<()> {
    let bytes = encode_slot(sb);
    let target = sb.generation % 2;
    if sb.generation == 1 {
        let other = 1u64.saturating_sub(target);
        backend.write_at(slot_offset(other)?, &bytes)?;
    }
    backend.write_at(slot_offset(target)?, &bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemBackend;

    fn sb(generation: u64) -> Superblock {
        Superblock {
            generation,
            meta_addr: 128 + generation * 10,
            meta_len: 33,
            meta_fnv: 0xFEED,
            eof: 4096,
            root_id: 1,
        }
    }

    #[test]
    fn slot_roundtrip() {
        let orig = sb(7);
        let bytes = encode_slot(&orig);
        assert_eq!(bytes.len() as u64, SLOT_LEN);
        assert_eq!(decode_slot(&bytes).unwrap(), orig);
    }

    #[test]
    fn any_flipped_slot_byte_is_detected() {
        let bytes = encode_slot(&sb(3));
        for i in 0..bytes.len() {
            let mut torn = bytes.clone();
            torn[i] ^= 0x40;
            assert!(
                decode_slot(&torn).is_err(),
                "flip at byte {i} must invalidate the slot"
            );
        }
    }

    #[test]
    fn open_picks_highest_valid_generation() {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        commit(&backend, &sb(1)).unwrap();
        commit(&backend, &sb(2)).unwrap();
        let (latest, invalid) = read_latest(&backend).unwrap();
        assert_eq!(latest.generation, 2);
        assert_eq!(invalid, 0, "both slots valid in the steady state");
    }

    #[test]
    fn torn_commit_falls_back_to_the_other_slot() {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        commit(&backend, &sb(1)).unwrap();
        commit(&backend, &sb(2)).unwrap();
        // Tear the generation-2 slot (index 0) mid-write: scribble over
        // its second half. Open must fall back to generation 1.
        backend.write_at(SLOT_LEN / 2, &[0xAB; 32]).unwrap();
        let (latest, invalid) = read_latest(&backend).unwrap();
        assert_eq!(latest.generation, 1, "fallback to the surviving slot");
        assert_eq!(invalid, 1, "the torn slot is reported");
    }

    #[test]
    fn first_commit_seeds_both_slots() {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        commit(&backend, &sb(1)).unwrap();
        // Destroy either slot: the other still opens.
        for torn_slot in 0..2u64 {
            let b2: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
            commit(&b2, &sb(1)).unwrap();
            b2.write_at(torn_slot * SLOT_LEN, &[0u8; SLOT_LEN as usize])
                .unwrap();
            let (latest, invalid) = read_latest(&b2).unwrap();
            assert_eq!(latest.generation, 1);
            assert_eq!(invalid, 1);
        }
    }

    #[test]
    fn garbage_everywhere_is_corrupt() {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        backend.write_at(0, &[0x5A; SUPERBLOCK_AREA as usize]).unwrap();
        assert!(matches!(
            read_latest(&backend).unwrap_err(),
            H5Error::Corrupt(_)
        ));
        let empty: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        assert!(read_latest(&empty).is_err());
    }
}
