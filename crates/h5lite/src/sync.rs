//! Poison-transparent wrappers over `std::sync`.
//!
//! `h5lite` is runtime-agnostic — it must not depend on `argolite` (the
//! VOL trait works with any connector), so it cannot use the tasking
//! crate's sanctioned lock module. This shim gives it the same two
//! properties the rest of the stack relies on: guards without `Result`
//! noise, and no lock poisoning — a panicking background I/O thread must
//! not wedge every later metadata operation on the container.
//!
//! ## Lock classes without a dependency edge
//!
//! Locks constructed with [`Mutex::new_named`]/[`RwLock::new_named`]
//! carry a *class name*. On its own h5lite does nothing with the name;
//! a layer that depends on both h5lite and `argolite` (the async
//! connector) can install process-wide [`order_hook`] callbacks that
//! forward every named acquisition/release into `argolite`'s
//! `debug-invariants` lock-order graph. That is how the metadata-plane
//! shard locks (`crates/h5lite/src/meta.rs`) participate in cross-crate
//! deadlock detection even though h5lite cannot name argolite.

use std::sync::{self, OnceLock, PoisonError};
use std::time::Duration;

/// Process-wide observation hooks for named-lock traffic.
///
/// Install with [`order_hook::install`]; until then (and always for
/// anonymous locks) acquisitions cost one relaxed pointer load. The
/// hooks fire on the acquiring thread, *after* the lock is held and
/// *before* it is released, which is exactly the window a held-stack
/// lock-order recorder needs to build its edge graph.
pub mod order_hook {
    use super::OnceLock;

    /// `(on_acquire, on_release)` callbacks, each given the class name.
    struct Hooks {
        acquire: fn(&'static str),
        release: fn(&'static str),
    }

    static HOOKS: OnceLock<Hooks> = OnceLock::new();

    /// Install the process-wide hooks. First caller wins; later calls
    /// are ignored, so bridges can install idempotently from any number
    /// of entry points.
    pub fn install(acquire: fn(&'static str), release: fn(&'static str)) {
        let _ = HOOKS.set(Hooks { acquire, release }); // xtask: allow(swallowed-result) first-caller-wins install; a later bridge is deliberately ignored
    }

    pub(super) fn acquired(name: &'static str) {
        if let Some(h) = HOOKS.get() {
            (h.acquire)(name);
        }
    }

    pub(super) fn released(name: &'static str) {
        if let Some(h) = HOOKS.get() {
            (h.release)(name);
        }
    }
}

/// Mutual exclusion without poison propagation.
pub struct Mutex<T: ?Sized> {
    name: Option<&'static str>,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A fresh anonymous mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            name: None,
            inner: sync::Mutex::new(value),
        }
    }

    /// A fresh mutex belonging to lock class `name` (see [`order_hook`]).
    pub fn new_named(name: &'static str, value: T) -> Self {
        Mutex {
            name: Some(name),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(name) = self.name {
            order_hook::acquired(name);
        }
        MutexGuard {
            name: self.name,
            inner: Some(g),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex`]. The `Option` is vacant only transiently
/// inside [`Condvar`] waits, which hold the unique `&mut`.
#[must_use = "dropping a MutexGuard immediately releases the lock"]
pub struct MutexGuard<'a, T: ?Sized> {
    name: Option<&'static str>,
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard present outside wait"),
        }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard present outside wait"),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // A vacated guard (mid-`Condvar::wait`) already reported its
        // release when the wait began.
        if self.inner.is_some() {
            if let Some(name) = self.name {
                order_hook::released(name);
            }
        }
    }
}

/// Condition variable pairing with [`Mutex`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some(g) = guard.inner.take() {
            if let Some(name) = guard.name {
                order_hook::released(name);
            }
            guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
            if let Some(name) = guard.name {
                order_hook::acquired(name);
            }
        }
    }

    /// [`Condvar::wait`] with a relative timeout; returns whether the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        match guard.inner.take() {
            Some(g) => {
                if let Some(name) = guard.name {
                    order_hook::released(name);
                }
                let (g, res) = match self.inner.wait_timeout(g, timeout) {
                    Ok(pair) => pair,
                    Err(p) => p.into_inner(),
                };
                guard.inner = Some(g);
                if let Some(name) = guard.name {
                    order_hook::acquired(name);
                }
                res.timed_out()
            }
            None => false,
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Reader-writer lock without poison propagation.
pub struct RwLock<T: ?Sized> {
    name: Option<&'static str>,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A fresh anonymous rwlock.
    pub fn new(value: T) -> Self {
        RwLock {
            name: None,
            inner: sync::RwLock::new(value),
        }
    }

    /// A fresh rwlock belonging to lock class `name` (see
    /// [`order_hook`]).
    pub fn new_named(name: &'static str, value: T) -> Self {
        RwLock {
            name: Some(name),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(name) = self.name {
            order_hook::acquired(name);
        }
        RwLockReadGuard {
            name: self.name,
            inner: g,
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(name) = self.name {
            order_hook::acquired(name);
        }
        RwLockWriteGuard {
            name: self.name,
            inner: g,
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// RAII shared guard for [`RwLock`].
#[must_use = "dropping a read guard immediately releases the lock"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    name: Option<&'static str>,
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            order_hook::released(name);
        }
    }
}

/// RAII exclusive guard for [`RwLock`].
#[must_use = "dropping a write guard immediately releases the lock"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    name: Option<&'static str>,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            order_hook::released(name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_poison_transparent() {
        let l = Arc::new(RwLock::new(3));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison");
        })
        .join();
        assert_eq!(*l.read(), 3);
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn mutex_and_condvar() {
        let m = Mutex::new(0);
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
        drop(g);
        assert_eq!(m.into_inner(), 9);
    }

    #[test]
    fn named_locks_work_without_hooks() {
        let m = Mutex::new_named("h5lite.test.m", 1);
        assert_eq!(*m.lock(), 1);
        let l = RwLock::new_named("h5lite.test.l", 2);
        assert_eq!(*l.read(), 2);
        *l.write() = 3;
        assert_eq!(*l.read(), 3);
    }
}
