//! Poison-transparent wrappers over `std::sync`.
//!
//! `h5lite` is runtime-agnostic — it must not depend on `argolite` (the
//! VOL trait works with any connector), so it cannot use the tasking
//! crate's sanctioned lock module. This shim gives it the same two
//! properties the rest of the stack relies on: guards without `Result`
//! noise, and no lock poisoning — a panicking background I/O thread must
//! not wedge every later metadata operation on the container.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion without poison propagation.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A fresh mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex`]. The `Option` is vacant only transiently
/// inside [`Condvar`] waits, which hold the unique `&mut`.
#[must_use = "dropping a MutexGuard immediately releases the lock"]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard present outside wait"),
        }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard present outside wait"),
        }
    }
}

/// Condition variable pairing with [`Mutex`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some(g) = guard.inner.take() {
            guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
        }
    }

    /// [`Condvar::wait`] with a relative timeout; returns whether the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        match guard.inner.take() {
            Some(g) => {
                let (g, res) = match self.inner.wait_timeout(g, timeout) {
                    Ok(pair) => pair,
                    Err(p) => p.into_inner(),
                };
                guard.inner = Some(g);
                res.timed_out()
            }
            None => false,
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Reader-writer lock without poison propagation.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A fresh rwlock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_poison_transparent() {
        let l = Arc::new(RwLock::new(3));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison");
        })
        .join();
        assert_eq!(*l.read(), 3);
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn mutex_and_condvar() {
        let m = Mutex::new(0);
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
        drop(g);
        assert_eq!(m.into_inner(), 9);
    }
}
