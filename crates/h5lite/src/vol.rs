//! The Virtual Object Layer: the connector interface every public
//! operation routes through.
//!
//! This mirrors HDF5's VOL architecture: the API objects ([`crate::File`],
//! [`crate::Group`], [`crate::Dataset`]) never touch the container
//! directly for data movement — they call a [`Vol`] connector, which may
//! execute eagerly ([`crate::native::NativeVol`]) or defer to background
//! execution streams (the `asyncvol` crate). Swapping the connector
//! changes *how* I/O happens without changing a line of application code,
//! which is exactly the property the paper's §II-A highlights.
//!
//! Metadata operations (group/dataset creation, lookup, attributes) have
//! synchronous default implementations: they are microseconds against the
//! in-memory object tree, and the async connector orders data operations
//! after them via its dependency tracking.

use std::sync::Arc;

use crate::container::{Container, DatasetInfo, ObjectId};
use crate::dataspace::{Dataspace, Selection};
use crate::datatype::Datatype;
use crate::error::Result;
use crate::layout::Layout;
use crate::promise::Promise;

/// Token for an in-flight write operation.
///
/// `Request::SYNC` denotes an operation that completed before the call
/// returned (the native connector's only mode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[must_use = "dropping a Request loses the only handle for waiting on the write"]
pub struct Request(pub u64);

impl Request {
    /// The already-complete request.
    pub const SYNC: Request = Request(0);

    /// Whether the operation completed before the call returned.
    pub fn is_sync(self) -> bool {
        self.0 == 0
    }
}

/// An in-flight read: a [`Request`] plus the promise its data arrives on.
#[must_use = "a ReadRequest does nothing unless waited on"]
pub struct ReadRequest {
    promise: Promise<Result<Vec<u8>>>,
}

impl ReadRequest {
    /// A read that will be fulfilled later by a background task.
    pub fn pending(promise: Promise<Result<Vec<u8>>>) -> Self {
        ReadRequest { promise }
    }

    /// A read that already completed (synchronous connector).
    pub fn resolved(result: Result<Vec<u8>>) -> Self {
        ReadRequest {
            promise: Promise::resolved(result),
        }
    }

    /// Whether the data has arrived.
    pub fn is_ready(&self) -> bool {
        self.promise.is_fulfilled()
    }

    /// Block until the data arrives and take it.
    pub fn wait(self) -> Result<Vec<u8>> {
        self.promise.take()
    }
}

/// A VOL connector: the pluggable execution engine under the public API.
pub trait Vol: Send + Sync {
    /// Connector name, for diagnostics ("native", "async", ...).
    fn name(&self) -> &str;

    // ----- data path (the interesting part) ---------------------------

    /// Write raw bytes into a selection of a dataset.
    ///
    /// The returned request may be pending; the caller must [`Vol::wait`]
    /// (or [`Vol::wait_all`]) before relying on durability. The connector
    /// must not assume `data` outlives the call — deferring connectors
    /// snapshot it (the paper's *transactional overhead*).
    fn dataset_write(
        &self,
        c: &Arc<Container>,
        ds: ObjectId,
        sel: &Selection,
        data: &[u8],
    ) -> Result<Request>;

    /// Read raw bytes from a selection of a dataset.
    fn dataset_read(&self, c: &Arc<Container>, ds: ObjectId, sel: &Selection)
        -> Result<ReadRequest>;

    /// Block until one write request is durable in the container.
    fn wait(&self, req: Request) -> Result<()>;

    /// Block until every outstanding operation issued through this
    /// connector is complete.
    fn wait_all(&self) -> Result<()>;

    /// Flush the container (drains outstanding operations first).
    fn file_flush(&self, c: &Arc<Container>) -> Result<()> {
        self.wait_all()?;
        c.flush()
    }

    // ----- metadata path (synchronous defaults) ------------------------

    /// Create a group (synchronous default).
    fn group_create(&self, c: &Arc<Container>, parent: ObjectId, name: &str) -> Result<ObjectId> {
        c.create_group(parent, name)
    }

    /// Create a dataset (synchronous default).
    fn dataset_create(
        &self,
        c: &Arc<Container>,
        parent: ObjectId,
        name: &str,
        dtype: Datatype,
        space: &Dataspace,
        layout: Layout,
    ) -> Result<ObjectId> {
        c.create_dataset(parent, name, dtype, space, layout)
    }

    /// Resolve a link (synchronous default).
    fn link_lookup(&self, c: &Arc<Container>, parent: ObjectId, name: &str) -> Result<ObjectId> {
        c.lookup(parent, name)
    }

    /// Describe a dataset (synchronous default).
    fn dataset_info(&self, c: &Arc<Container>, ds: ObjectId) -> Result<DatasetInfo> {
        c.dataset_info(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_request_token() {
        assert!(Request::SYNC.is_sync());
        assert!(!Request(3).is_sync());
    }

    #[test]
    fn resolved_read_request() {
        let rr = ReadRequest::resolved(Ok(vec![1, 2, 3]));
        assert!(rr.is_ready());
        assert_eq!(rr.wait().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn pending_read_request_fulfilled_later() {
        let p: Promise<Result<Vec<u8>>> = Promise::new();
        let rr = ReadRequest::pending(p.clone());
        assert!(!rr.is_ready());
        p.fulfill(Ok(vec![9]));
        assert_eq!(rr.wait().unwrap(), vec![9]);
    }
}
