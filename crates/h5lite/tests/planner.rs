//! Acceptance tests for the I/O planner's lock and batch accounting: a
//! strided 1-D selection with well over 1k runs must reach the backend
//! as at most `ceil(runs / COALESCE_WINDOW)` vectored batches per
//! operation, with exactly one metadata-lock acquisition in steady
//! state and zero scalar data-path calls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use h5lite::container::ROOT_ID;
use h5lite::{
    shard_of, Container, Dataspace, Datatype, Hyperslab, IoVec, IoVecMut, Layout, MemBackend,
    MetaLockStats, Selection, StorageBackend, COALESCE_WINDOW, META_SHARDS,
};

/// Forwards to a [`MemBackend`] while counting scalar calls, vectored
/// batches, and total batched segments.
#[derive(Default)]
struct CountingBackend {
    inner: MemBackend,
    scalar_writes: AtomicU64,
    scalar_reads: AtomicU64,
    write_batches: AtomicU64,
    read_batches: AtomicU64,
    batch_segments: AtomicU64,
}

impl CountingBackend {
    fn count(&self, c: &AtomicU64) -> u64 {
        c.load(Ordering::SeqCst)
    }
}

impl StorageBackend for CountingBackend {
    fn write_at(&self, offset: u64, data: &[u8]) -> h5lite::Result<()> {
        self.scalar_writes.fetch_add(1, Ordering::SeqCst);
        self.inner.write_at(offset, data)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> h5lite::Result<()> {
        self.scalar_reads.fetch_add(1, Ordering::SeqCst);
        self.inner.read_at(offset, buf)
    }

    fn write_vectored_at(&self, batch: &[IoVec<'_>]) -> h5lite::Result<()> {
        self.write_batches.fetch_add(1, Ordering::SeqCst);
        self.batch_segments
            .fetch_add(batch.len() as u64, Ordering::SeqCst);
        self.inner.write_vectored_at(batch)
    }

    fn read_vectored_at(&self, batch: &mut [IoVecMut<'_>]) -> h5lite::Result<()> {
        self.read_batches.fetch_add(1, Ordering::SeqCst);
        self.batch_segments
            .fetch_add(batch.len() as u64, Ordering::SeqCst);
        self.inner.read_vectored_at(batch)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> h5lite::Result<()> {
        self.inner.sync()
    }
}

/// 1500 single-element runs: element 0, 3, 6, … over a 4500-element
/// dataset. `Selection::runs` cannot coalesce any pair, so the planner
/// sees the full per-run storm.
const RUNS: u64 = 1500;

fn strided_setup(layout: Layout) -> (Container, Arc<CountingBackend>, Selection, Vec<u8>) {
    let backend = Arc::new(CountingBackend::default());
    let c = Container::create(backend.clone() as Arc<dyn StorageBackend>);
    let space = Dataspace::d1(RUNS * 3);
    let id = c
        .create_dataset(ROOT_ID, "x", Datatype::F32, &space, layout)
        .unwrap();
    assert_eq!(id, 2);
    let sel = Selection::Slab(Hyperslab::strided(&[0], &[RUNS], &[3]));
    let data: Vec<u8> = (0..RUNS * 4).map(|i| (i % 249) as u8 + 1).collect();
    (c, backend, sel, data)
}

fn expected_batches(runs: u64) -> u64 {
    runs.div_ceil(COALESCE_WINDOW as u64)
}

#[test]
fn contiguous_strided_write_is_one_lock_and_two_batches() {
    let (c, backend, sel, data) = strided_setup(Layout::Contiguous);
    let id = 2;

    let locks0 = c.meta_lock_acquisitions();
    let batches0 = backend.count(&backend.write_batches);
    let scalars0 = backend.count(&backend.scalar_writes);

    c.write_selection(id, &sel, &data).unwrap();

    assert_eq!(
        c.meta_lock_acquisitions() - locks0,
        1,
        "contiguous strided write must resolve everything under one lock"
    );
    let batches = backend.count(&backend.write_batches) - batches0;
    assert!(batches >= 1 && batches <= expected_batches(RUNS));
    assert_eq!(
        backend.count(&backend.scalar_writes) - scalars0,
        0,
        "data path must not fall back to scalar write_at"
    );
}

#[test]
fn contiguous_strided_read_is_one_lock_and_two_batches() {
    let (c, backend, sel, data) = strided_setup(Layout::Contiguous);
    let id = 2;
    c.write_selection(id, &sel, &data).unwrap();

    let locks0 = c.meta_lock_acquisitions();
    let batches0 = backend.count(&backend.read_batches);
    let scalars0 = backend.count(&backend.scalar_reads);
    let segs0 = backend.count(&backend.batch_segments);

    let back = c.read_selection(id, &sel).unwrap();
    assert_eq!(back, data);

    assert_eq!(c.meta_lock_acquisitions() - locks0, 1);
    let batches = backend.count(&backend.read_batches) - batches0;
    assert!(batches >= 1 && batches <= expected_batches(RUNS));
    assert_eq!(backend.count(&backend.scalar_reads) - scalars0, 0);
    // Every run reaches the backend as exactly one batched segment.
    assert_eq!(backend.count(&backend.batch_segments) - segs0, RUNS);
}

#[test]
fn chunked_steady_state_matches_contiguous_accounting() {
    let layout = Layout::Chunked1D { chunk_elems: 64 };
    let (c, backend, sel, data) = strided_setup(layout);
    let id = 2;

    // First write allocates every touched chunk: one read-locked
    // planning pass plus one write-locked allocation pass.
    let locks0 = c.meta_lock_acquisitions();
    c.write_selection(id, &sel, &data).unwrap();
    assert_eq!(
        c.meta_lock_acquisitions() - locks0,
        2,
        "first write = plan pass + allocation pass"
    );

    // Steady state: chunks exist, so back to one lock and ≤2 batches.
    let locks0 = c.meta_lock_acquisitions();
    let batches0 = backend.count(&backend.write_batches);
    let scalars0 = backend.count(&backend.scalar_writes);
    c.write_selection(id, &sel, &data).unwrap();
    assert_eq!(c.meta_lock_acquisitions() - locks0, 1);
    let batches = backend.count(&backend.write_batches) - batches0;
    assert!(batches >= 1 && batches <= expected_batches(RUNS));
    assert_eq!(backend.count(&backend.scalar_writes) - scalars0, 0);

    let locks0 = c.meta_lock_acquisitions();
    let back = c.read_selection(id, &sel).unwrap();
    assert_eq!(back, data);
    assert_eq!(c.meta_lock_acquisitions() - locks0, 1);
}

/// Per-shard delta between two [`MetaLockStats`] captures, as
/// `(shard, reads, writes)` triples for every shard that moved.
fn shard_delta(before: &MetaLockStats, after: &MetaLockStats) -> Vec<(usize, u64, u64)> {
    (0..META_SHARDS)
        .filter_map(|s| {
            let r = after.shard_reads[s] - before.shard_reads[s];
            let w = after.shard_writes[s] - before.shard_writes[s];
            (r + w > 0).then_some((s, r, w))
        })
        .collect()
}

#[test]
fn per_shard_breakdown_pins_steady_ops_to_the_dataset_shard() {
    // The aggregate one-lock-per-op counts above stay meaningful under
    // sharding only if the single acquisition is a *shard read* of the
    // dataset's own shard: no tree traffic, no stray shard, no write
    // acquisition on the read path.
    let (c, _backend, sel, data) = strided_setup(Layout::Chunked1D { chunk_elems: 64 });
    let id = 2;
    let home = shard_of(id);
    assert_eq!(home, 2, "sequential ids land on sequential shards");

    // First write = plan pass (shard read) + allocation pass (shard
    // write), both on the home shard.
    let s0 = c.meta_lock_stats();
    c.write_selection(id, &sel, &data).unwrap();
    let s1 = c.meta_lock_stats();
    assert_eq!(shard_delta(&s0, &s1), vec![(home, 1, 1)]);
    assert_eq!((s1.tree_reads, s1.tree_writes), (s0.tree_reads, s0.tree_writes));

    // Steady-state write: one read acquisition of the home shard only.
    let s1 = c.meta_lock_stats();
    c.write_selection(id, &sel, &data).unwrap();
    let s2 = c.meta_lock_stats();
    assert_eq!(shard_delta(&s1, &s2), vec![(home, 1, 0)]);

    // Steady-state read: same breakdown — readers never take a shard
    // write lock.
    let s2 = c.meta_lock_stats();
    let back = c.read_selection(id, &sel).unwrap();
    assert_eq!(back, data);
    let s3 = c.meta_lock_stats();
    assert_eq!(shard_delta(&s2, &s3), vec![(home, 1, 0)]);
    assert_eq!((s3.tree_reads, s3.tree_writes), (s2.tree_reads, s2.tree_writes));
}

#[test]
fn disjoint_datasets_touch_disjoint_shard_locks() {
    // Two tenants on consecutive dataset ids: every steady op moves
    // exactly one counter, and never the other tenant's.
    let backend = Arc::new(CountingBackend::default());
    let c = Container::create(backend as Arc<dyn StorageBackend>);
    let space = Dataspace::d1(64);
    let a = c
        .create_dataset(ROOT_ID, "a", Datatype::F32, &space, Layout::Contiguous)
        .unwrap();
    let b = c
        .create_dataset(ROOT_ID, "b", Datatype::F32, &space, Layout::Contiguous)
        .unwrap();
    assert_ne!(shard_of(a), shard_of(b), "consecutive ids must not collide");

    let sel = Selection::Slab(Hyperslab::range1(0, 64));
    let data = vec![9u8; 64 * 4];
    c.write_selection(a, &sel, &data).unwrap();

    let s0 = c.meta_lock_stats();
    c.write_selection(b, &sel, &data).unwrap();
    let s1 = c.meta_lock_stats();
    assert_eq!(shard_delta(&s0, &s1), vec![(shard_of(b), 1, 0)]);

    let s1 = c.meta_lock_stats();
    let back = c.read_selection(a, &sel).unwrap();
    assert_eq!(back, data);
    let s2 = c.meta_lock_stats();
    assert_eq!(shard_delta(&s1, &s2), vec![(shard_of(a), 1, 0)]);
}

#[test]
fn chunked_read_of_unallocated_holes_stays_zero_filled() {
    // Write only the strided selection, then read the *complement*:
    // untouched chunks must come back as zeros without ever hitting the
    // backend scalar path.
    let layout = Layout::Chunked1D { chunk_elems: 8 };
    let backend = Arc::new(CountingBackend::default());
    let c = Container::create(backend.clone() as Arc<dyn StorageBackend>);
    // 32 elements, chunks of 8; write elements 0..8 only (chunk 0).
    let space = Dataspace::d1(32);
    let id = c
        .create_dataset(ROOT_ID, "x", Datatype::F32, &space, layout)
        .unwrap();
    let head = vec![7u8; 8 * 4];
    c.write_selection(id, &Selection::Slab(Hyperslab::range1(0, 8)), &head)
        .unwrap();

    let scalars0 = backend.count(&backend.scalar_reads);
    let tail = c
        .read_selection(id, &Selection::Slab(Hyperslab::range1(8, 24)))
        .unwrap();
    assert_eq!(tail, vec![0u8; 24 * 4]);
    assert_eq!(backend.count(&backend.scalar_reads) - scalars0, 0);
}
