//! BD-CATS-IO: the clustering read kernel (§IV-B).
//!
//! BD-CATS (trillion-particle DBSCAN) reads the particle data VPIC wrote,
//! one time step per analysis epoch, with the clustering computation
//! replaced by a sleep. In asynchronous mode the behaviour matches the
//! paper's description of the VOL connector: *"prefetching is triggered
//! after reading data for the first time step. The first read is a
//! blocking operation since there is a dependency on the data for the
//! first computational phase"* (§V-A2). Each completed step schedules the
//! prefetch of the next step, so later reads only pay the buffer delivery
//! (plus any un-overlapped prefetch remainder).

use std::sync::Arc;
use std::time::{Duration, Instant};

use apio_core::history::Direction;
use asyncvol::AsyncVol;
use h5lite::{File, Hyperslab, Selection, Vol};
use mpisim::{Perturbation, Workload};

use crate::measure::{KernelMode, PhaseTiming, RealRunReport};
use crate::vpic::{particle_value, VpicConfig, PAPER_BYTES_PER_RANK, PROPERTIES};

/// Run the read kernel over a container previously written by
/// [`crate::vpic`]. The connector is chosen fresh over the same
/// container, so a sync-written file can be read asynchronously.
pub fn run_real(
    source: &File,
    cfg: &VpicConfig,
    mode: KernelMode,
) -> h5lite::Result<RealRunReport> {
    let (file, async_vol): (File, Option<Arc<AsyncVol>>) = match mode {
        KernelMode::Sync => (
            File::from_parts(source.container().clone(), Arc::new(h5lite::NativeVol::new())),
            None,
        ),
        KernelMode::Async => {
            let vol = Arc::new(AsyncVol::new());
            let dynvol: Arc<dyn Vol> = vol.clone();
            (File::from_parts(source.container().clone(), dynvol), Some(vol))
        }
    };

    let t_start = Instant::now();
    let mut phases = Vec::with_capacity(cfg.timesteps as usize);
    let mut rank_io_secs = Vec::with_capacity(cfg.timesteps as usize);

    for step in 0..cfg.timesteps {
        let group = file.root().open_group(&format!("Step#{step}"))?;
        let datasets: Vec<h5lite::Dataset> = PROPERTIES
            .iter()
            .map(|p| group.open_dataset(p))
            .collect::<h5lite::Result<_>>()?;

        // Read phase: every rank reads its slab of every property and
        // checks a sample against the generator.
        let io_start = Instant::now();
        let per_rank = std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for rank in 0..cfg.ranks {
                let datasets = &datasets;
                joins.push(scope.spawn(move || -> h5lite::Result<f64> {
                    let rank_start = Instant::now();
                    let base = rank as u64 * cfg.particles_per_rank;
                    let slab = Hyperslab::range1(base, cfg.particles_per_rank);
                    for (prop, ds) in datasets.iter().enumerate() {
                        let data: Vec<f32> = ds.read_slab(&slab)?;
                        // Spot-check the first and last particle.
                        let first = particle_value(step, prop, base);
                        let last = particle_value(
                            step,
                            prop,
                            base + cfg.particles_per_rank - 1,
                        );
                        if data[0] != first || *data.last().unwrap() != last {
                            return Err(h5lite::H5Error::Corrupt(format!(
                                "step {step} prop {prop} rank {rank}: stale data"
                            )));
                        }
                    }
                    Ok(rank_start.elapsed().as_secs_f64())
                }));
            }
            let mut per_rank = Vec::with_capacity(joins.len());
            for j in joins {
                per_rank.push(j.join().expect("rank thread panicked")?);
            }
            Ok::<Vec<f64>, h5lite::H5Error>(per_rank)
        })?;
        let visible_io_secs = io_start.elapsed().as_secs_f64();
        rank_io_secs.push(per_rank);

        // Schedule the next step's prefetch before computing, so the
        // prefetch overlaps the clustering phase.
        if mode == KernelMode::Async && step + 1 < cfg.timesteps {
            let vol = async_vol.as_ref().expect("async mode has a connector");
            let next = file.root().open_group(&format!("Step#{}", step + 1))?;
            for prop in PROPERTIES {
                let ds = next.open_dataset(prop)?;
                for rank in 0..cfg.ranks {
                    let slab = Hyperslab::range1(
                        rank as u64 * cfg.particles_per_rank,
                        cfg.particles_per_rank,
                    );
                    // Fire-and-forget cache fill; hits are observed via
                    // read_async, not by waiting on this request.
                    let _ = vol.prefetch(file.container(), ds.id(), &Selection::Slab(slab));
                }
            }
        }

        if cfg.compute_secs > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(cfg.compute_secs));
        }
        phases.push(PhaseTiming {
            compute_secs: cfg.compute_secs,
            visible_io_secs,
        });
    }

    file.wait_all()?;
    Ok(RealRunReport {
        mode,
        ranks: cfg.ranks,
        bytes_per_epoch: cfg.bytes_per_epoch(),
        phases,
        rank_io_secs,
        wall_secs: t_start.elapsed().as_secs_f64(),
        async_stats: async_vol.map(|v| v.stats()),
    })
}

/// The paper-scale simulator workload: weak-scaling reads of the VPIC
/// output with a 30 s simulated clustering phase.
pub fn workload(ranks: u32, timesteps: u32, compute_secs: f64) -> Workload {
    Workload {
        ranks,
        per_rank_bytes: PAPER_BYTES_PER_RANK,
        epochs: timesteps,
        compute_secs,
        direction: Direction::Read,
        t_init: 0.5,
        t_term: 0.2,
        perturb: Perturbation::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vpic;

    fn small_cfg() -> VpicConfig {
        VpicConfig {
            ranks: 4,
            particles_per_rank: 1 << 12,
            timesteps: 4,
            compute_secs: 0.02,
        }
    }

    #[test]
    fn sync_read_verifies_written_data() {
        let cfg = small_cfg();
        let (_, file) = vpic::run_real_into(&cfg, KernelMode::Sync).unwrap();
        let report = run_real(&file, &cfg, KernelMode::Sync).unwrap();
        assert_eq!(report.phases.len(), 4);
        assert!(report.async_stats.is_none());
    }

    #[test]
    fn async_read_prefetches_later_steps() {
        let cfg = small_cfg();
        let (_, file) = vpic::run_real_into(&cfg, KernelMode::Sync).unwrap();
        let report = run_real(&file, &cfg, KernelMode::Async).unwrap();
        let stats = report.async_stats.unwrap();
        // Steps 1..4 read 8 props × 4 ranks each from prefetch.
        let expected_hits = (cfg.timesteps as u64 - 1) * 8 * cfg.ranks as u64;
        assert_eq!(stats.prefetch_hits, expected_hits);
        // Only step 0 was read cold.
        assert_eq!(stats.blocking_reads, 8 * cfg.ranks as u64);
    }

    #[test]
    fn async_read_data_is_still_correct() {
        // The in-kernel spot checks run on every rank/prop/step; a
        // connector bug surfaces as a Corrupt error here.
        let cfg = small_cfg();
        let (_, file) = vpic::run_real_into(&cfg, KernelMode::Async).unwrap();
        run_real(&file, &cfg, KernelMode::Async).unwrap();
    }

    #[test]
    fn read_workload_is_read_direction() {
        let w = workload(384, 8, 30.0);
        assert_eq!(w.direction, Direction::Read);
        assert_eq!(w.per_rank_bytes, PAPER_BYTES_PER_RANK);
    }

    #[test]
    fn async_later_steps_are_faster_with_compute_overlap() {
        // Over throttled storage (50 MB/s) the blocking first step pays
        // the full read while prefetched steps only pay delivery.
        let cfg = VpicConfig {
            ranks: 2,
            particles_per_rank: 1 << 13,
            timesteps: 3,
            compute_secs: 0.05,
        };
        let (_, file) =
            vpic::run_real_throttled_into(&cfg, KernelMode::Sync, 50e6, 2e-4).unwrap();
        let report = run_real(&file, &cfg, KernelMode::Async).unwrap();
        let bws = report.phase_bandwidths();
        assert!(
            bws[1] > 2.0 * bws[0] && bws[2] > 2.0 * bws[0],
            "prefetched steps should beat the blocking first step: {bws:?}"
        );
    }
}
