#![warn(missing_docs)]
//! # kernels — the paper's parallel I/O kernels (PIOK)
//!
//! Faithful re-implementations of the two I/O kernels the paper uses to
//! validate its model (§IV-B), each runnable two ways:
//!
//! - **Real engine** — ranks are OS threads writing/reading hyperslabs of
//!   shared `h5lite` datasets through a VOL connector (native or async),
//!   with real buffers and wall-clock measurement. Sizes are scaled down
//!   so the kernels run in test time; the *mechanism* (snapshot copies,
//!   background streams, prefetch) is exactly the at-scale one.
//! - **Simulator** — the same epoch structure as an [`mpisim::Workload`]
//!   executed on the Summit/Cori machine models at paper scale (up to
//!   12 288 ranks), in virtual time.
//!
//! [`vpic`] is the write kernel: every rank writes 8 particle properties
//! per time step, ~32 MiB per rank per checkpoint, weak scaling.
//! [`bdcats`] is the read kernel: it reads the data VPIC-IO wrote, one
//! time step per analysis epoch, first read blocking, later reads
//! prefetched.

pub mod bdcats;
pub mod measure;
pub mod vpic;

pub use measure::{trace_epochs, trace_rank_epochs, KernelMode, PhaseTiming, RealRunReport};
