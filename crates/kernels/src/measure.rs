//! Measurement plumbing shared by the real-engine kernels.

use std::sync::Arc;

use apio_trace::critpath::{SPAN_COMPUTE, SPAN_WAIT, SPAN_WRITE};
use apio_trace::{Event, SpanContext, TraceClock, Tracer, VirtualClock};
use asyncvol::AsyncVol;
use h5lite::{Container, File, NativeVol, Vol};

/// Which connector a real-engine kernel run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelMode {
    /// Native (synchronous) VOL.
    Sync,
    /// Asynchronous VOL with one background stream.
    Async,
}

/// Wall-clock timing of one epoch of a real run.
#[derive(Clone, Copy, Debug)]
pub struct PhaseTiming {
    /// Simulated compute phase (sleep) in seconds.
    pub compute_secs: f64,
    /// Time the application thread spent inside I/O calls this epoch.
    pub visible_io_secs: f64,
}

/// Outcome of a real-engine kernel run.
#[derive(Clone, Debug)]
pub struct RealRunReport {
    /// Which connector the run used.
    pub mode: KernelMode,
    /// Number of rank threads.
    pub ranks: u32,
    /// Bytes moved per epoch across all ranks.
    pub bytes_per_epoch: u64,
    /// Per-epoch wall-clock timings.
    pub phases: Vec<PhaseTiming>,
    /// Per-epoch, per-rank time inside I/O calls (seconds): outer index
    /// is the epoch, inner the rank thread. Feeds the per-rank span
    /// streams ([`trace_rank_epochs`]); empty when a runner predates the
    /// per-rank measurement.
    pub rank_io_secs: Vec<Vec<f64>>,
    /// Total wall time including the final drain.
    pub wall_secs: f64,
    /// Connector statistics for async runs.
    pub async_stats: Option<asyncvol::AsyncVolStats>,
}

impl RealRunReport {
    /// Observed aggregate bandwidth per epoch (bytes/s), the paper's
    /// plotted quantity: bytes over application-visible I/O time.
    pub fn phase_bandwidths(&self) -> Vec<f64> {
        self.phases
            .iter()
            .map(|p| self.bytes_per_epoch as f64 / p.visible_io_secs.max(1e-12))
            .collect()
    }

    /// Best per-epoch observed bandwidth.
    pub fn peak_bandwidth(&self) -> f64 {
        self.phase_bandwidths()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Total application-visible I/O time.
    pub fn total_visible_io(&self) -> f64 {
        self.phases.iter().map(|p| p.visible_io_secs).sum()
    }
}

/// Replay a finished kernel run onto a tracer as one `"epoch"` span per
/// phase, driven by a [`VirtualClock`] — the report already holds the
/// measured wall-clock splits, so the replay is deterministic. Mirrors
/// [`mpisim::trace_epochs`](mpisim::runner::trace_epochs) for simulated
/// runs.
pub fn trace_epochs(report: &RealRunReport, tracer: &Tracer, clock: &VirtualClock) {
    for (i, p) in report.phases.iter().enumerate() {
        let comp_nanos = (p.compute_secs.max(0.0) * 1e9) as u64;
        let io_nanos = (p.visible_io_secs.max(0.0) * 1e9) as u64;
        let mut span = tracer.span_ctx("epoch", SpanContext::new(0, 0, i as u64));
        clock.advance(comp_nanos + io_nanos);
        span.set_event(Event::EpochMark {
            epoch: i as u64,
            comp_nanos,
            io_nanos,
            bytes: report.bytes_per_epoch,
        });
    }
}

/// Re-enact a finished kernel run as one context-tagged span stream per
/// rank (`job`, rank = thread index), mirroring
/// `mpisim::trace_rank_streams` for the real engine. Each epoch tiles per
/// rank as `[compute][write io_r][wait max_io − io_r]`: the compute
/// sleep is common to all ranks, each rank then pays its own measured
/// I/O time, and early finishers wait at the epoch barrier for the
/// slowest rank. Epochs where per-rank timings were not collected fall
/// back to charging the collective visible I/O time to every rank.
pub fn trace_rank_epochs(
    job: u32,
    report: &RealRunReport,
    tracer: &Tracer,
    clock: &VirtualClock,
) {
    let nanos = |secs: f64| (secs.max(0.0) * 1e9) as u64;
    let mut epoch_start = clock.now_nanos();
    for (e, p) in report.phases.iter().enumerate() {
        let comp = nanos(p.compute_secs);
        let per_rank: Vec<u64> = match report.rank_io_secs.get(e) {
            Some(ios) if ios.len() == report.ranks as usize => {
                ios.iter().map(|&s| nanos(s)).collect()
            }
            _ => vec![nanos(p.visible_io_secs); report.ranks as usize],
        };
        let max_io = per_rank.iter().copied().max().unwrap_or(0);
        for (rank, &io) in per_rank.iter().enumerate() {
            let ctx = SpanContext::new(job, rank as u32, e as u64);
            clock.set(epoch_start);
            {
                let _g = tracer.span_ctx(SPAN_COMPUTE, ctx);
                clock.advance(comp);
            }
            {
                let _g = tracer.span_ctx(SPAN_WRITE, ctx);
                clock.advance(io);
            }
            tracer.instant_ctx("barrier.enter", ctx, Event::BarrierEnter { epoch: e as u64 });
            {
                let _g = tracer.span_ctx(SPAN_WAIT, ctx);
                clock.advance(max_io - io);
            }
            tracer.instant_ctx("barrier.exit", ctx, Event::BarrierExit { epoch: e as u64 });
        }
        epoch_start += comp + max_io;
        clock.set(epoch_start);
    }
}

/// Assemble an in-memory file with the requested connector. Returns the
/// file and, for async mode, a handle to the connector for stats.
pub fn make_file(mode: KernelMode) -> (File, Option<Arc<AsyncVol>>) {
    make_file_on(Arc::new(Container::create_mem()), mode)
}

/// Assemble a file with the requested connector over a throttled
/// in-memory backend — a stand-in for a parallel file system slower than
/// memcpy, which is the regime where asynchronous I/O pays off.
pub fn make_file_throttled(
    mode: KernelMode,
    bandwidth: f64,
    latency: f64,
) -> (File, Option<Arc<AsyncVol>>) {
    let backend = Arc::new(h5lite::ThrottledBackend::in_memory(bandwidth, latency));
    make_file_on(Arc::new(Container::create(backend)), mode)
}

/// Assemble a file with the requested connector over a given container.
pub fn make_file_on(container: Arc<Container>, mode: KernelMode) -> (File, Option<Arc<AsyncVol>>) {
    match mode {
        KernelMode::Sync => (
            File::from_parts(container, Arc::new(NativeVol::new())),
            None,
        ),
        KernelMode::Async => {
            let vol = Arc::new(AsyncVol::new());
            let dynvol: Arc<dyn Vol> = vol.clone();
            (File::from_parts(container, dynvol), Some(vol))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_file_wires_the_connector() {
        let (f, none) = make_file(KernelMode::Sync);
        assert_eq!(f.vol().name(), "native");
        assert!(none.is_none());
        let (f, some) = make_file(KernelMode::Async);
        assert_eq!(f.vol().name(), "async");
        assert!(some.is_some());
    }

    #[test]
    fn trace_epochs_replays_report_phases() {
        let r = RealRunReport {
            mode: KernelMode::Async,
            ranks: 2,
            bytes_per_epoch: 4096,
            phases: vec![
                PhaseTiming {
                    compute_secs: 0.001,
                    visible_io_secs: 0.002,
                },
                PhaseTiming {
                    compute_secs: 0.001,
                    visible_io_secs: 0.0005,
                },
            ],
            rank_io_secs: vec![],
            wall_secs: 0.0045,
            async_stats: None,
        };
        let clock = Arc::new(VirtualClock::new(0));
        let t = Tracer::with_clock(clock.clone());
        trace_epochs(&r, &t, &clock);
        let records = t.sink().records().to_vec();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].dur_nanos, 3_000_000);
        assert_eq!(records[1].dur_nanos, 1_500_000);
        let Some(Event::EpochMark { epoch, bytes, .. }) = records[1].event else {
            panic!("missing EpochMark");
        };
        assert_eq!((epoch, bytes), (1, 4096));
    }

    #[test]
    fn trace_rank_epochs_tiles_each_rank_to_the_epoch_wall() {
        let r = RealRunReport {
            mode: KernelMode::Sync,
            ranks: 2,
            bytes_per_epoch: 4096,
            phases: vec![PhaseTiming {
                compute_secs: 0.001,
                visible_io_secs: 0.002,
            }],
            // Rank 1 is the I/O straggler; rank 0 waits at the barrier.
            rank_io_secs: vec![vec![0.0005, 0.002]],
            wall_secs: 0.003,
            async_stats: None,
        };
        let clock = Arc::new(VirtualClock::new(0));
        let t = Tracer::with_clock(clock.clone());
        trace_rank_epochs(3, &r, &t, &clock);
        let analysis = apio_trace::critpath::analyze_job(&t.sink(), 3);
        assert_eq!(analysis.ranks, 2);
        assert_eq!(analysis.epochs.len(), 1);
        let e = &analysis.epochs[0];
        assert_eq!(e.straggler, 1, "slow-I/O rank must be named");
        for slice in &e.ranks {
            let total = slice.compute_nanos
                + slice.write_nanos
                + slice.meta_nanos
                + slice.wait_nanos;
            assert_eq!(total, 3_000_000, "rank {} must tile the wall", slice.rank);
        }
        // Clock parks at the epoch boundary: compute + max rank I/O.
        assert_eq!(clock.now_nanos(), 3_000_000);
    }

    #[test]
    fn trace_rank_epochs_falls_back_to_collective_io_time() {
        let r = RealRunReport {
            mode: KernelMode::Sync,
            ranks: 2,
            bytes_per_epoch: 4096,
            phases: vec![PhaseTiming {
                compute_secs: 0.001,
                visible_io_secs: 0.002,
            }],
            rank_io_secs: vec![],
            wall_secs: 0.003,
            async_stats: None,
        };
        let clock = Arc::new(VirtualClock::new(0));
        let t = Tracer::with_clock(clock.clone());
        trace_rank_epochs(0, &r, &t, &clock);
        let analysis = apio_trace::critpath::analyze_job(&t.sink(), 0);
        let e = &analysis.epochs[0];
        for slice in &e.ranks {
            assert_eq!(slice.write_nanos, 2_000_000);
            assert_eq!(slice.wait_nanos, 0);
        }
    }

    #[test]
    fn report_bandwidth_math() {
        let r = RealRunReport {
            mode: KernelMode::Sync,
            ranks: 4,
            bytes_per_epoch: 1000,
            phases: vec![
                PhaseTiming {
                    compute_secs: 0.0,
                    visible_io_secs: 2.0,
                },
                PhaseTiming {
                    compute_secs: 0.0,
                    visible_io_secs: 0.5,
                },
            ],
            rank_io_secs: vec![],
            wall_secs: 2.5,
            async_stats: None,
        };
        assert_eq!(r.phase_bandwidths(), vec![500.0, 2000.0]);
        assert_eq!(r.peak_bandwidth(), 2000.0);
        assert_eq!(r.total_visible_io(), 2.5);
    }
}
