//! Measurement plumbing shared by the real-engine kernels.

use std::sync::Arc;

use apio_trace::{Event, Tracer, VirtualClock};
use asyncvol::AsyncVol;
use h5lite::{Container, File, NativeVol, Vol};

/// Which connector a real-engine kernel run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelMode {
    /// Native (synchronous) VOL.
    Sync,
    /// Asynchronous VOL with one background stream.
    Async,
}

/// Wall-clock timing of one epoch of a real run.
#[derive(Clone, Copy, Debug)]
pub struct PhaseTiming {
    /// Simulated compute phase (sleep) in seconds.
    pub compute_secs: f64,
    /// Time the application thread spent inside I/O calls this epoch.
    pub visible_io_secs: f64,
}

/// Outcome of a real-engine kernel run.
#[derive(Clone, Debug)]
pub struct RealRunReport {
    /// Which connector the run used.
    pub mode: KernelMode,
    /// Number of rank threads.
    pub ranks: u32,
    /// Bytes moved per epoch across all ranks.
    pub bytes_per_epoch: u64,
    /// Per-epoch wall-clock timings.
    pub phases: Vec<PhaseTiming>,
    /// Total wall time including the final drain.
    pub wall_secs: f64,
    /// Connector statistics for async runs.
    pub async_stats: Option<asyncvol::AsyncVolStats>,
}

impl RealRunReport {
    /// Observed aggregate bandwidth per epoch (bytes/s), the paper's
    /// plotted quantity: bytes over application-visible I/O time.
    pub fn phase_bandwidths(&self) -> Vec<f64> {
        self.phases
            .iter()
            .map(|p| self.bytes_per_epoch as f64 / p.visible_io_secs.max(1e-12))
            .collect()
    }

    /// Best per-epoch observed bandwidth.
    pub fn peak_bandwidth(&self) -> f64 {
        self.phase_bandwidths()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Total application-visible I/O time.
    pub fn total_visible_io(&self) -> f64 {
        self.phases.iter().map(|p| p.visible_io_secs).sum()
    }
}

/// Replay a finished kernel run onto a tracer as one `"epoch"` span per
/// phase, driven by a [`VirtualClock`] — the report already holds the
/// measured wall-clock splits, so the replay is deterministic. Mirrors
/// [`mpisim::trace_epochs`](mpisim::runner::trace_epochs) for simulated
/// runs.
pub fn trace_epochs(report: &RealRunReport, tracer: &Tracer, clock: &VirtualClock) {
    for (i, p) in report.phases.iter().enumerate() {
        let comp_nanos = (p.compute_secs.max(0.0) * 1e9) as u64;
        let io_nanos = (p.visible_io_secs.max(0.0) * 1e9) as u64;
        let mut span = tracer.span("epoch");
        clock.advance(comp_nanos + io_nanos);
        span.set_event(Event::EpochMark {
            epoch: i as u64,
            comp_nanos,
            io_nanos,
            bytes: report.bytes_per_epoch,
        });
    }
}

/// Assemble an in-memory file with the requested connector. Returns the
/// file and, for async mode, a handle to the connector for stats.
pub fn make_file(mode: KernelMode) -> (File, Option<Arc<AsyncVol>>) {
    make_file_on(Arc::new(Container::create_mem()), mode)
}

/// Assemble a file with the requested connector over a throttled
/// in-memory backend — a stand-in for a parallel file system slower than
/// memcpy, which is the regime where asynchronous I/O pays off.
pub fn make_file_throttled(
    mode: KernelMode,
    bandwidth: f64,
    latency: f64,
) -> (File, Option<Arc<AsyncVol>>) {
    let backend = Arc::new(h5lite::ThrottledBackend::in_memory(bandwidth, latency));
    make_file_on(Arc::new(Container::create(backend)), mode)
}

/// Assemble a file with the requested connector over a given container.
pub fn make_file_on(container: Arc<Container>, mode: KernelMode) -> (File, Option<Arc<AsyncVol>>) {
    match mode {
        KernelMode::Sync => (
            File::from_parts(container, Arc::new(NativeVol::new())),
            None,
        ),
        KernelMode::Async => {
            let vol = Arc::new(AsyncVol::new());
            let dynvol: Arc<dyn Vol> = vol.clone();
            (File::from_parts(container, dynvol), Some(vol))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_file_wires_the_connector() {
        let (f, none) = make_file(KernelMode::Sync);
        assert_eq!(f.vol().name(), "native");
        assert!(none.is_none());
        let (f, some) = make_file(KernelMode::Async);
        assert_eq!(f.vol().name(), "async");
        assert!(some.is_some());
    }

    #[test]
    fn trace_epochs_replays_report_phases() {
        let r = RealRunReport {
            mode: KernelMode::Async,
            ranks: 2,
            bytes_per_epoch: 4096,
            phases: vec![
                PhaseTiming {
                    compute_secs: 0.001,
                    visible_io_secs: 0.002,
                },
                PhaseTiming {
                    compute_secs: 0.001,
                    visible_io_secs: 0.0005,
                },
            ],
            wall_secs: 0.0045,
            async_stats: None,
        };
        let clock = Arc::new(VirtualClock::new(0));
        let t = Tracer::with_clock(clock.clone());
        trace_epochs(&r, &t, &clock);
        let records = t.sink().records().to_vec();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].dur_nanos, 3_000_000);
        assert_eq!(records[1].dur_nanos, 1_500_000);
        let Some(Event::EpochMark { epoch, bytes, .. }) = records[1].event else {
            panic!("missing EpochMark");
        };
        assert_eq!((epoch, bytes), (1, 4096));
    }

    #[test]
    fn report_bandwidth_math() {
        let r = RealRunReport {
            mode: KernelMode::Sync,
            ranks: 4,
            bytes_per_epoch: 1000,
            phases: vec![
                PhaseTiming {
                    compute_secs: 0.0,
                    visible_io_secs: 2.0,
                },
                PhaseTiming {
                    compute_secs: 0.0,
                    visible_io_secs: 0.5,
                },
            ],
            wall_secs: 2.5,
            async_stats: None,
        };
        assert_eq!(r.phase_bandwidths(), vec![500.0, 2000.0]);
        assert_eq!(r.peak_bandwidth(), 2000.0);
        assert_eq!(r.total_visible_io(), 2.5);
    }
}
