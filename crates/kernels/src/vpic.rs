//! VPIC-IO: the plasma-physics particle write kernel (§IV-B).
//!
//! Extracted from the Vector Particle-In-Cell code, the kernel emulates
//! checkpointing particle data: each rank owns `particles_per_rank`
//! particles with 8 properties; every time step, each property is written
//! to a 1-D dataset (`/Step#t/<prop>`), every rank writing its own
//! hyperslab. Data size scales with ranks (weak scaling). The paper's
//! configuration is 8×1024×1024 particles (≈32 MB) per rank with a 30 s
//! simulated compute phase between checkpoints.

use std::sync::Arc;
use std::time::{Duration, Instant};

use apio_core::history::Direction;
use h5lite::{Dataspace, File, Hyperslab};
use mpisim::{Perturbation, Workload};
use platform::units::MIB;

use crate::measure::{make_file, KernelMode, PhaseTiming, RealRunReport};

/// The 8 particle properties VPIC-IO writes (h5bench's naming).
pub const PROPERTIES: [&str; 8] = ["x", "y", "z", "i", "ux", "uy", "uz", "q"];

/// Per-rank payload per checkpoint at paper scale (≈32 MB per rank).
pub const PAPER_BYTES_PER_RANK: u64 = 32 * MIB;

/// Configuration of a real-engine VPIC-IO run.
#[derive(Clone, Debug)]
pub struct VpicConfig {
    /// Number of writer threads ("ranks").
    pub ranks: u32,
    /// Particles each rank owns (downscale from the paper's 8 Mi for
    /// test-time runs).
    pub particles_per_rank: u64,
    /// Checkpoints to write.
    pub timesteps: u32,
    /// Simulated compute phase between checkpoints (sleep).
    pub compute_secs: f64,
}

impl VpicConfig {
    /// A small configuration that runs in test time.
    pub fn small(ranks: u32, timesteps: u32) -> Self {
        VpicConfig {
            ranks,
            particles_per_rank: 1 << 14,
            timesteps,
            compute_secs: 0.01,
        }
    }

    /// Bytes each rank writes per checkpoint (8 properties × f32).
    pub fn bytes_per_rank(&self) -> u64 {
        self.particles_per_rank * PROPERTIES.len() as u64 * 4
    }

    /// Bytes all ranks write per checkpoint.
    pub fn bytes_per_epoch(&self) -> u64 {
        self.bytes_per_rank() * self.ranks as u64
    }
}

/// Deterministic particle property value: reproducible across runs and
/// cheap enough not to pollute the I/O timing.
pub fn particle_value(step: u32, prop: usize, global_index: u64) -> f32 {
    let h = (global_index ^ (step as u64) << 40 ^ (prop as u64) << 56)
        .wrapping_mul(0x9E3779B97F4A7C15);
    // Map to a stable, finite float in [0, 1).
    (h >> 40) as f32 / (1u64 << 24) as f32
}

fn rank_payload(cfg: &VpicConfig, step: u32, prop: usize, rank: u32) -> Vec<f32> {
    let base = rank as u64 * cfg.particles_per_rank;
    (0..cfg.particles_per_rank)
        .map(|i| particle_value(step, prop, base + i))
        .collect()
}

/// The strided per-rank selection over *interleaved* particle storage:
/// rank `rank` of `ranks` owns every `ranks`-th element starting at
/// `rank`. This is the BD-CATS-IO access shape over VPIC output when
/// particles are stored interleaved rather than blocked per rank — and
/// the worst case for per-run I/O, since every one of the
/// `elems_per_rank` runs is a single element. The planner/vectored
/// benches use it as the canonical strided scenario.
pub fn interleaved_slab(rank: u32, ranks: u32, elems_per_rank: u64) -> Hyperslab {
    Hyperslab::strided(&[rank as u64], &[elems_per_rank], &[ranks as u64])
}

/// Run the kernel on the real engine. Returns per-epoch timings and, for
/// async mode, the connector statistics.
pub fn run_real(cfg: &VpicConfig, mode: KernelMode) -> h5lite::Result<RealRunReport> {
    run_real_into(cfg, mode).map(|(report, _file)| report)
}

/// Run on the real engine and hand back the file for further use (e.g. a
/// BD-CATS-IO read pass over the same container).
pub fn run_real_into(
    cfg: &VpicConfig,
    mode: KernelMode,
) -> h5lite::Result<(RealRunReport, File)> {
    let (file, async_vol) = make_file(mode);
    let report = write_into(&file, cfg, mode, async_vol)?;
    Ok((report, file))
}

/// Run on the real engine against a throttled backend emulating a storage
/// tier slower than memcpy (`bandwidth` bytes/s, `latency` seconds per
/// operation) — the regime where the async VOL's snapshot-and-return
/// genuinely hides I/O.
pub fn run_real_throttled(
    cfg: &VpicConfig,
    mode: KernelMode,
    bandwidth: f64,
    latency: f64,
) -> h5lite::Result<RealRunReport> {
    run_real_throttled_into(cfg, mode, bandwidth, latency).map(|(r, _)| r)
}

/// Throttled variant of [`run_real_into`].
pub fn run_real_throttled_into(
    cfg: &VpicConfig,
    mode: KernelMode,
    bandwidth: f64,
    latency: f64,
) -> h5lite::Result<(RealRunReport, File)> {
    let (file, async_vol) = crate::measure::make_file_throttled(mode, bandwidth, latency);
    let report = write_into(&file, cfg, mode, async_vol)?;
    Ok((report, file))
}

fn write_into(
    file: &File,
    cfg: &VpicConfig,
    mode: KernelMode,
    async_vol: Option<Arc<asyncvol::AsyncVol>>,
) -> h5lite::Result<RealRunReport> {
    let total_particles = cfg.particles_per_rank * cfg.ranks as u64;
    let t_start = Instant::now();
    let mut phases = Vec::with_capacity(cfg.timesteps as usize);
    let mut rank_io_secs = Vec::with_capacity(cfg.timesteps as usize);
    for step in 0..cfg.timesteps {
        let group = file.root().create_group(&format!("Step#{step}"))?;
        let datasets: Vec<h5lite::Dataset> = PROPERTIES
            .iter()
            .map(|prop| group.create_dataset::<f32>(prop, &Dataspace::d1(total_particles)))
            .collect::<h5lite::Result<_>>()?;
        let io_start = Instant::now();
        let per_rank = std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for rank in 0..cfg.ranks {
                let datasets = &datasets;
                let cfg = &cfg;
                joins.push(scope.spawn(move || -> h5lite::Result<f64> {
                    let rank_start = Instant::now();
                    let slab = Hyperslab::range1(
                        rank as u64 * cfg.particles_per_rank,
                        cfg.particles_per_rank,
                    );
                    for (prop, ds) in datasets.iter().enumerate() {
                        let data = rank_payload(cfg, step, prop, rank);
                        match mode {
                            KernelMode::Sync => ds.write_slab(&slab, &data)?,
                            KernelMode::Async => {
                                // Drained collectively by wait_all after
                                // the epoch, not per-request.
                                let _ = ds.write_slab_async(
                                    &h5lite::Selection::Slab(slab.clone()),
                                    &data,
                                )?;
                            }
                        }
                    }
                    Ok(rank_start.elapsed().as_secs_f64())
                }));
            }
            let mut per_rank = Vec::with_capacity(joins.len());
            for j in joins {
                per_rank.push(j.join().expect("rank thread panicked")?);
            }
            Ok::<Vec<f64>, h5lite::H5Error>(per_rank)
        })?;
        rank_io_secs.push(per_rank);
        phases.push(PhaseTiming {
            compute_secs: cfg.compute_secs,
            visible_io_secs: io_start.elapsed().as_secs_f64(),
        });
        if cfg.compute_secs > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(cfg.compute_secs));
        }
    }
    file.flush()?;
    Ok(RealRunReport {
        mode,
        ranks: cfg.ranks,
        bytes_per_epoch: cfg.bytes_per_epoch(),
        phases,
        rank_io_secs,
        wall_secs: t_start.elapsed().as_secs_f64(),
        async_stats: async_vol.map(|v| v.stats()),
    })
}

/// Verify every particle of every step against the deterministic
/// generator — catches ordering or snapshot-isolation bugs in the
/// connector under test.
pub fn verify(file: &File, cfg: &VpicConfig) -> h5lite::Result<()> {
    for step in 0..cfg.timesteps {
        let group = file.root().open_group(&format!("Step#{step}"))?;
        for (prop, name) in PROPERTIES.iter().enumerate() {
            let ds = group.open_dataset(name)?;
            let data: Vec<f32> = ds.read()?;
            for (i, &v) in data.iter().enumerate() {
                let expect = particle_value(step, prop, i as u64);
                if v != expect {
                    return Err(h5lite::H5Error::Corrupt(format!(
                        "step {step} prop {name} particle {i}: {v} != {expect}"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// The paper-scale simulator workload: weak scaling, ≈32 MiB per rank per
/// checkpoint, 30 s simulated compute (§IV-B).
pub fn workload(ranks: u32, timesteps: u32, compute_secs: f64) -> Workload {
    Workload {
        ranks,
        per_rank_bytes: PAPER_BYTES_PER_RANK,
        epochs: timesteps,
        compute_secs,
        direction: Direction::Write,
        t_init: 0.5,
        t_term: 0.2,
        perturb: Perturbation::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_slab_selects_every_ranks_th_element() {
        use h5lite::Selection;
        let space = Dataspace::d1(12);
        let sel = Selection::Slab(interleaved_slab(1, 4, 3));
        let runs = sel.runs(&space).unwrap();
        // Rank 1 of 4 over 12 elements: indices 1, 5, 9 — three
        // single-element runs (nothing for the linear coalescer to merge).
        assert_eq!(runs, vec![(1, 1), (5, 1), (9, 1)]);
    }

    #[test]
    fn config_sizes() {
        let cfg = VpicConfig::small(4, 2);
        assert_eq!(cfg.bytes_per_rank(), (1 << 14) * 8 * 4);
        assert_eq!(cfg.bytes_per_epoch(), cfg.bytes_per_rank() * 4);
        let w = workload(768, 5, 30.0);
        assert_eq!(w.per_rank_bytes, 32 * MIB);
        assert_eq!(w.ranks, 768);
    }

    #[test]
    fn particle_values_are_deterministic_and_distinct() {
        assert_eq!(particle_value(0, 0, 42), particle_value(0, 0, 42));
        assert_ne!(particle_value(0, 0, 42), particle_value(0, 0, 43));
        assert_ne!(particle_value(0, 0, 42), particle_value(1, 0, 42));
        assert_ne!(particle_value(0, 0, 42), particle_value(0, 1, 42));
        let v = particle_value(3, 5, 1 << 50);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn sync_run_writes_correct_data() {
        let cfg = VpicConfig {
            ranks: 4,
            particles_per_rank: 512,
            timesteps: 2,
            compute_secs: 0.0,
        };
        let (report, file) = run_real_into(&cfg, KernelMode::Sync).unwrap();
        assert_eq!(report.phases.len(), 2);
        verify(&file, &cfg).unwrap();
    }

    #[test]
    fn async_run_writes_correct_data_after_drain() {
        let cfg = VpicConfig {
            ranks: 4,
            particles_per_rank: 512,
            timesteps: 3,
            compute_secs: 0.0,
        };
        let (report, file) = run_real_into(&cfg, KernelMode::Async).unwrap();
        verify(&file, &cfg).unwrap();
        let stats = report.async_stats.unwrap();
        // 3 steps × 8 properties × 4 ranks background writes.
        assert_eq!(stats.writes, 3 * 8 * 4);
        assert_eq!(stats.snapshot_bytes, 3 * cfg.bytes_per_epoch());
    }

    #[test]
    fn async_visible_io_is_smaller_than_sync_on_slow_storage() {
        // Over a storage tier slower than memcpy (here 200 MB/s + 1 ms per
        // op), the async path only pays the snapshot while sync pays the
        // full transfer — deterministically, not by timing luck.
        let cfg = VpicConfig {
            ranks: 2,
            particles_per_rank: 1 << 14,
            timesteps: 3,
            compute_secs: 0.05,
        };
        let sync = run_real_throttled(&cfg, KernelMode::Sync, 200e6, 1e-3).unwrap();
        let asy = run_real_throttled(&cfg, KernelMode::Async, 200e6, 1e-3).unwrap();
        assert!(
            asy.total_visible_io() < sync.total_visible_io() / 2.0,
            "async visible {} vs sync {}",
            asy.total_visible_io(),
            sync.total_visible_io()
        );
    }
}
