//! Cross-rank straggler attribution: run a workload, emit its per-rank
//! span streams, and fold the critical-path analysis into the operator
//! report's [`StragglerReport`] section (DESIGN.md §16).
//!
//! This is the end-to-end path the acceptance scenario exercises: a
//! seeded 16-rank run with one rank slowed 4× must name that rank as the
//! per-epoch straggler in `apio-report --json`, with the per-rank
//! decomposition tiling each epoch's wall time and the observed overlap
//! efficiency matching the Eq. 2 prediction on unperturbed configs.

use std::sync::Arc;

use apio_core::history::IoMode;
use apio_core::report::{StragglerEpoch, StragglerReport};
use apio_trace::{critpath, TraceSink, Tracer, VirtualClock};

use crate::comm::Job;
use crate::runner::{run_analytic, trace_rank_streams};
use crate::workload::{RunConfig, RunResult, StagingTier, Workload};

/// Eq. 2's predicted overlap efficiency for this workload: of the
/// background I/O time `t_io`, the fraction `min(t_io, t_comp) / t_io`
/// can hide under the next epoch's compute. Synchronous runs overlap
/// nothing by construction.
pub fn predicted_overlap_efficiency(job: &Job, w: &Workload, cfg: &RunConfig) -> f64 {
    if cfg.mode == IoMode::Sync {
        return 0.0;
    }
    let bg_extra = match cfg.staging {
        StagingTier::Dram => 0.0,
        StagingTier::Nvme => job.staging_readback_time(w.per_rank_bytes),
    };
    let t_io = bg_extra + job.collective_io_time(w.per_rank_bytes, w.direction, cfg.contention);
    if t_io <= 0.0 {
        return 0.0;
    }
    w.compute_secs.min(t_io) / t_io
}

/// The full attribution pipeline for one run: execute `w` under `cfg`,
/// re-enact the per-rank streams on a fresh virtual clock, run the
/// critical-path analysis, and keep the epochs at and after `warmup`.
///
/// Returns the report section, the analysis' trace (for a Chrome/JSONL
/// export of the per-rank view), and the run result itself.
pub fn straggler_report(
    job: &Job,
    w: &Workload,
    cfg: &RunConfig,
    warmup: u32,
) -> (StragglerReport, TraceSink, RunResult) {
    let result = run_analytic(job, w, cfg);
    let clock = Arc::new(VirtualClock::new(0));
    let tracer = Tracer::with_clock(clock.clone());
    trace_rank_streams(0, job, w, cfg, &result, &tracer, &clock);
    let sink = tracer.sink();
    let analysis = critpath::analyze_job(&sink, 0);

    let epochs = analysis
        .epochs
        .iter()
        .filter(|e| e.epoch >= u64::from(warmup))
        .map(|e| {
            let slice = e
                .rank_slice(e.straggler)
                .copied()
                .unwrap_or_default();
            StragglerEpoch {
                epoch: e.epoch,
                straggler: e.straggler,
                wall_nanos: e.wall_nanos(),
                compute_nanos: slice.compute_nanos,
                write_nanos: slice.write_nanos,
                meta_nanos: slice.meta_nanos,
                wait_nanos: slice.wait_nanos,
                skew_p50_nanos: e.skew_p50_nanos,
                skew_p99_nanos: e.skew_p99_nanos,
            }
        })
        .collect();

    let report = StragglerReport {
        ranks: analysis.ranks,
        warmup_epochs: warmup,
        epochs,
        observed_overlap_efficiency: analysis.observed_overlap_efficiency,
        predicted_overlap_efficiency: predicted_overlap_efficiency(job, w, cfg),
    };
    (report, sink, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::summit;
    use platform::units::MIB;

    #[test]
    fn slowed_rank_is_named_every_post_warmup_epoch() {
        let job = Job::new(summit(), 16);
        let w = Workload::checkpoint(16, 32 * MIB, 5, 5.0).with_straggler(7, 4.0);
        let (report, _, _) = straggler_report(&job, &w, &RunConfig::async_io(), 1);
        assert_eq!(report.ranks, 16);
        assert_eq!(report.epochs.len(), 4, "warmup epoch excluded");
        for e in &report.epochs {
            assert!(e.epoch >= 1);
            assert_eq!(e.straggler, 7, "epoch {}: straggler misattributed", e.epoch);
            assert!(e.skew_ratio() > 3.0, "4x compute skew must show up");
            let attributed = e.compute_nanos + e.write_nanos + e.meta_nanos + e.wait_nanos;
            let err = (attributed as f64 - e.wall_nanos as f64).abs() / e.wall_nanos as f64;
            assert!(err < 0.01, "attribution must tile the wall: {err}");
        }
    }

    #[test]
    fn unperturbed_async_efficiency_matches_eq2_within_10pct() {
        // Compute-dominated: Eq. 2 predicts full overlap; the trace-side
        // measurement must agree within the acceptance tolerance.
        let job = Job::new(summit(), 96);
        let w = Workload::checkpoint(96, 32 * MIB, 5, 30.0);
        let cfg = RunConfig::async_io();
        let (report, _, _) = straggler_report(&job, &w, &cfg, 1);
        let predicted = report.predicted_overlap_efficiency;
        assert!((predicted - 1.0).abs() < 1e-9, "compute hides all I/O here");
        let observed = report.observed_overlap_efficiency;
        assert!(
            (observed - predicted).abs() <= 0.10 * predicted.max(1e-9),
            "observed {observed} vs predicted {predicted}"
        );
    }

    #[test]
    fn sync_runs_predict_and_observe_zero_overlap() {
        let job = Job::new(summit(), 16);
        let w = Workload::checkpoint(16, 32 * MIB, 3, 5.0);
        let (report, _, _) = straggler_report(&job, &w, &RunConfig::sync(), 0);
        assert_eq!(report.predicted_overlap_efficiency, 0.0);
        assert_eq!(report.observed_overlap_efficiency, 0.0);
        assert_eq!(report.epochs.len(), 3);
    }
}
