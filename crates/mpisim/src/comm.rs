//! Job placement and collective timing on a machine model.

use apio_core::history::Direction;
use platform::pfs::{FileSystemModel, IoPattern};
use platform::SystemConfig;

/// How a collective phase reaches the file system.
///
/// Two-phase (collective-buffered) I/O is MPI-IO's classic answer to the
/// small-request problem the paper's strong-scaling figures expose: ranks
/// first exchange data inside the node so that a few *aggregators* issue
/// large contiguous requests. The aggregation shuffle costs node-memory
/// bandwidth; the payoff is a much better per-request efficiency at the
/// file system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollectiveMode {
    /// Every rank writes its own data directly (the paper's runs).
    Independent,
    /// Intra-node gather to `aggregators_per_node` ranks, which issue the
    /// file system requests.
    TwoPhase {
        /// Writers per node (≥ 1, ≤ ranks per node).
        aggregators_per_node: u32,
    },
}

/// A rank set placed on a machine: the simulated analogue of an MPI
/// communicator inside a batch allocation.
#[derive(Clone, Debug)]
pub struct Job {
    system: SystemConfig,
    ranks: u32,
    nodes: u32,
}

impl Job {
    /// Place `ranks` on `system` at its standard density (6/node on
    /// Summit, 32/node on Cori).
    pub fn new(system: SystemConfig, ranks: u32) -> Self {
        let nodes = system.nodes_for_ranks(ranks);
        assert!(
            nodes <= system.total_nodes,
            "job of {ranks} ranks needs {nodes} nodes; {} has {}",
            system.name,
            system.total_nodes
        );
        Job {
            system,
            ranks,
            nodes,
        }
    }

    /// The machine model this job runs on.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// Total MPI ranks in the job.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Nodes the job occupies.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Ranks co-located on one node (last node may be partial).
    pub fn ranks_per_node(&self) -> u32 {
        self.system.ranks_per_node.min(self.ranks)
    }

    /// Barrier cost: a dissemination barrier takes ⌈log₂ n⌉ network hops.
    pub fn barrier_time(&self) -> f64 {
        const HOP_LATENCY: f64 = 2e-6;
        if self.ranks <= 1 {
            return 0.0;
        }
        HOP_LATENCY * (self.ranks as f64).log2().ceil()
    }

    /// Wall time of one collective I/O phase moving `per_rank_bytes` per
    /// rank, under a contention capacity factor in `(0, 1]`.
    ///
    /// Includes the metadata/allocation cost and the closing barrier (the
    /// slowest rank defines the phase, then everyone synchronizes).
    pub fn collective_io_time(
        &self,
        per_rank_bytes: u64,
        direction: Direction,
        contention: f64,
    ) -> f64 {
        let pattern = match direction {
            Direction::Write => IoPattern::Write,
            Direction::Read => IoPattern::Read,
        };
        self.system
            .pfs
            .io_time(self.nodes, self.ranks, per_rank_bytes, pattern, contention)
            + self.barrier_time()
    }

    /// Wall time of a collective I/O phase under an explicit
    /// [`CollectiveMode`]. Two-phase aggregation pays an intra-node
    /// gather (one pass over the node's data at DRAM copy bandwidth) and
    /// then writes through `aggregators_per_node` writers per node with
    /// proportionally larger requests.
    pub fn collective_io_time_with(
        &self,
        per_rank_bytes: u64,
        direction: Direction,
        contention: f64,
        mode: CollectiveMode,
    ) -> f64 {
        match mode {
            CollectiveMode::Independent => {
                self.collective_io_time(per_rank_bytes, direction, contention)
            }
            CollectiveMode::TwoPhase {
                aggregators_per_node,
            } => {
                let rpn = self.ranks_per_node();
                assert!(
                    (1..=rpn).contains(&aggregators_per_node),
                    "aggregators per node must be in 1..={rpn}"
                );
                let pattern = match direction {
                    Direction::Write => IoPattern::Write,
                    Direction::Read => IoPattern::Read,
                };
                let node_bytes = per_rank_bytes * rpn as u64;
                // Phase 1: shuffle the node's data into aggregator
                // buffers — one pass at the node's copy bandwidth.
                let gather = self.system.memcpy.copy_time(node_bytes);
                // Phase 2: aggregators issue the requests. Fewer, larger
                // requests; fewer writers also means less metadata load.
                let agg_bytes = node_bytes / aggregators_per_node as u64;
                let writers = self.nodes * aggregators_per_node;
                let io = self.system.pfs.io_time(
                    self.nodes,
                    writers,
                    agg_bytes,
                    pattern,
                    contention,
                );
                gather + io + self.barrier_time()
            }
        }
    }

    /// Per-phase cost of enqueueing the asynchronous operations (task
    /// creation, dependency registration in the connector) — constant per
    /// phase regardless of data size or rank count.
    pub const ASYNC_DISPATCH_SECS: f64 = 5e-4;

    /// Transactional overhead of one asynchronous collective phase: every
    /// rank snapshots its buffer concurrently, sharing its node's DRAM
    /// copy bandwidth with the other local ranks. All nodes proceed in
    /// parallel, so the wall time is one node's time, plus the constant
    /// dispatch cost of enqueueing the background operations.
    pub fn snapshot_time(&self, per_rank_bytes: u64) -> f64 {
        Self::ASYNC_DISPATCH_SECS
            + self
                .system
                .memcpy
                .copy_time_shared(per_rank_bytes, self.ranks_per_node())
    }

    /// Transactional overhead when staging snapshots on the node-local
    /// SSD instead of DRAM (§II-C's second caching location): every rank
    /// on a node appends its buffer to the device, serialized by the
    /// device's write bandwidth.
    ///
    /// Panics if the machine has no node-local device.
    pub fn snapshot_time_nvme(&self, per_rank_bytes: u64) -> f64 {
        let nvme = self
            .system
            .nvme
            .as_ref()
            .expect("machine model has no node-local storage device");
        let node_bytes = per_rank_bytes * self.ranks_per_node() as u64;
        Self::ASYNC_DISPATCH_SECS + nvme.write_time(node_bytes)
    }

    /// Background read-back cost of NVMe staging: before the background
    /// stream can push a snapshot to the file system it must read it off
    /// the device.
    pub fn staging_readback_time(&self, per_rank_bytes: u64) -> f64 {
        let nvme = self
            .system
            .nvme
            .as_ref()
            .expect("machine model has no node-local storage device");
        let node_bytes = per_rank_bytes * self.ranks_per_node() as u64;
        nvme.read_time(node_bytes)
    }

    /// Aggregate bandwidth corresponding to a phase wall time.
    pub fn aggregate_bw(&self, per_rank_bytes: u64, phase_secs: f64) -> f64 {
        assert!(phase_secs > 0.0, "phase time must be positive");
        self.total_bytes(per_rank_bytes) as f64 / phase_secs
    }

    /// Total bytes a phase moves across all ranks.
    pub fn total_bytes(&self, per_rank_bytes: u64) -> u64 {
        per_rank_bytes * self.ranks as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::units::MIB;
    use platform::{cori_haswell, summit};

    #[test]
    fn placement_uses_machine_density() {
        let j = Job::new(summit(), 768);
        assert_eq!(j.nodes(), 128);
        assert_eq!(j.ranks_per_node(), 6);
        let j = Job::new(cori_haswell(), 1024);
        assert_eq!(j.nodes(), 32);
        assert_eq!(j.ranks_per_node(), 32);
    }

    #[test]
    fn small_job_density_is_capped_by_ranks() {
        let j = Job::new(summit(), 2);
        assert_eq!(j.ranks_per_node(), 2);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn oversubscribed_job_rejected() {
        // Summit has 4608 nodes -> max 27648 ranks at 6/node.
        Job::new(summit(), 30_000);
    }

    #[test]
    fn barrier_grows_logarithmically() {
        let j1 = Job::new(summit(), 1);
        assert_eq!(j1.barrier_time(), 0.0);
        let j2 = Job::new(summit(), 1024);
        let j3 = Job::new(summit(), 2048);
        assert!(j3.barrier_time() > j2.barrier_time());
        assert!(j3.barrier_time() < 1e-3, "barriers are microseconds");
    }

    #[test]
    fn collective_io_time_scales_with_size() {
        let j = Job::new(summit(), 96);
        let t_small = j.collective_io_time(MIB, Direction::Write, 1.0);
        let t_large = j.collective_io_time(64 * MIB, Direction::Write, 1.0);
        assert!(t_large > t_small);
    }

    #[test]
    fn contention_slows_server_bound_collectives() {
        let j = Job::new(summit(), 6144);
        let free = j.collective_io_time(32 * MIB, Direction::Write, 1.0);
        let busy = j.collective_io_time(32 * MIB, Direction::Write, 0.4);
        // Metadata cost is contention-independent, so the phase slows by
        // less than the 2.5x capacity squeeze but clearly slows.
        assert!(busy > 1.4 * free, "busy {busy} vs free {free}");
        assert!(busy < 2.5 * free);
    }

    #[test]
    fn snapshot_time_is_node_local() {
        // Same per-rank size, more nodes: snapshot wall time unchanged
        // (each node copies its own ranks' buffers in parallel).
        let j1 = Job::new(summit(), 96);
        let j2 = Job::new(summit(), 6144);
        assert!((j1.snapshot_time(32 * MIB) - j2.snapshot_time(32 * MIB)).abs() < 1e-12);
    }

    #[test]
    fn snapshot_aggregate_bw_scales_linearly_with_nodes() {
        // The core of Fig. 3's async curve.
        let per_rank = 32 * MIB;
        let bw = |ranks: u32| {
            let j = Job::new(summit(), ranks);
            j.aggregate_bw(per_rank, j.snapshot_time(per_rank))
        };
        let r = bw(6144) / bw(96);
        assert!((r - 64.0).abs() < 1.0, "expected ~64x, got {r}");
    }

    #[test]
    fn total_bytes_and_bw() {
        let j = Job::new(cori_haswell(), 64);
        assert_eq!(j.total_bytes(MIB), 64 * MIB);
        assert!((j.aggregate_bw(MIB, 2.0) - (64 * MIB) as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn two_phase_helps_small_requests() {
        // Castro-on-Cori shape: tiny per-rank requests. Aggregating 32
        // ranks into 1 writer per node turns 230 KB requests into 7.3 MB
        // requests — a large win despite the gather cost.
        let j = Job::new(cori_haswell(), 1024);
        let per_rank = 229 * 1024;
        let independent = j.collective_io_time_with(
            per_rank,
            Direction::Write,
            1.0,
            CollectiveMode::Independent,
        );
        let two_phase = j.collective_io_time_with(
            per_rank,
            Direction::Write,
            1.0,
            CollectiveMode::TwoPhase {
                aggregators_per_node: 1,
            },
        );
        assert!(
            two_phase < 0.7 * independent,
            "two-phase {two_phase} vs independent {independent}"
        );
    }

    #[test]
    fn two_phase_is_not_worth_it_for_large_requests() {
        // VPIC shape: 32 MiB per rank is already efficient; aggregation
        // only adds the gather pass.
        let j = Job::new(cori_haswell(), 1024);
        let independent = j.collective_io_time_with(
            32 * MIB,
            Direction::Write,
            1.0,
            CollectiveMode::Independent,
        );
        let two_phase = j.collective_io_time_with(
            32 * MIB,
            Direction::Write,
            1.0,
            CollectiveMode::TwoPhase {
                aggregators_per_node: 1,
            },
        );
        assert!(two_phase > independent * 0.95, "no big win to be had");
    }

    #[test]
    fn independent_mode_matches_plain_call() {
        let j = Job::new(summit(), 768);
        assert_eq!(
            j.collective_io_time(32 * MIB, Direction::Write, 1.0),
            j.collective_io_time_with(
                32 * MIB,
                Direction::Write,
                1.0,
                CollectiveMode::Independent
            )
        );
    }

    #[test]
    #[should_panic(expected = "aggregators per node")]
    fn too_many_aggregators_rejected() {
        let j = Job::new(summit(), 768);
        j.collective_io_time_with(
            MIB,
            Direction::Write,
            1.0,
            CollectiveMode::TwoPhase {
                aggregators_per_node: 7,
            },
        );
    }
}
