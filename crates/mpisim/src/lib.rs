#![warn(missing_docs)]
//! # mpisim — simulated MPI jobs and the epoch-loop runners
//!
//! The paper's workloads are bulk-synchronous: every rank alternates a
//! computation phase with a collective I/O phase. This crate provides:
//!
//! - [`comm`] — a [`comm::Job`]: a rank set placed on a machine model,
//!   with barrier and collective-phase timing.
//! - [`workload`] — the epoch-structured workload description
//!   ([`workload::Workload`]) and the measurements a run produces
//!   ([`workload::RunResult`], [`workload::PhaseMeasure`]). A phase's
//!   *visible* I/O time is the time the application thread is blocked —
//!   the full transfer for synchronous I/O, only the transactional
//!   snapshot (plus any un-overlapped remainder) for asynchronous I/O.
//!   This matches the paper's measurement: "the measured time of read or
//!   write operations includes the transactional overhead".
//! - [`runner`] — two independent executions of the same workload:
//!   [`runner::run_analytic`] (closed-form timeline arithmetic) and
//!   [`runner::run_des`] (event-driven on the [`desim`] engine, with the
//!   file system as a processor-sharing resource). Their agreement on
//!   uniform workloads is asserted in tests; the DES runner additionally
//!   captures background-write queueing across epochs.
//! - [`attribution`] — the cross-rank observability path (DESIGN.md
//!   §16): [`runner::trace_rank_streams`] re-enacts a run as one
//!   context-tagged span stream per rank, and
//!   [`attribution::straggler_report`] folds `apio_trace::critpath`'s
//!   analysis into the operator report's straggler section. The
//!   [`workload::Perturbation`] knob (seeded straggler/jitter) makes the
//!   attribution testable end-to-end.

pub mod attribution;
pub mod comm;
pub mod runner;
pub mod workload;

pub use attribution::{predicted_overlap_efficiency, straggler_report};
pub use comm::{CollectiveMode, Job};
pub use runner::{run, run_analytic, run_des, trace_epochs, trace_rank_streams};
pub use workload::{Perturbation, PhaseMeasure, RunConfig, RunResult, Workload};
