#![warn(missing_docs)]
//! # mpisim — simulated MPI jobs and the epoch-loop runners
//!
//! The paper's workloads are bulk-synchronous: every rank alternates a
//! computation phase with a collective I/O phase. This crate provides:
//!
//! - [`comm`] — a [`comm::Job`]: a rank set placed on a machine model,
//!   with barrier and collective-phase timing.
//! - [`workload`] — the epoch-structured workload description
//!   ([`workload::Workload`]) and the measurements a run produces
//!   ([`workload::RunResult`], [`workload::PhaseMeasure`]). A phase's
//!   *visible* I/O time is the time the application thread is blocked —
//!   the full transfer for synchronous I/O, only the transactional
//!   snapshot (plus any un-overlapped remainder) for asynchronous I/O.
//!   This matches the paper's measurement: "the measured time of read or
//!   write operations includes the transactional overhead".
//! - [`runner`] — two independent executions of the same workload:
//!   [`runner::run_analytic`] (closed-form timeline arithmetic) and
//!   [`runner::run_des`] (event-driven on the [`desim`] engine, with the
//!   file system as a processor-sharing resource). Their agreement on
//!   uniform workloads is asserted in tests; the DES runner additionally
//!   captures background-write queueing across epochs.

pub mod comm;
pub mod runner;
pub mod workload;

pub use comm::{CollectiveMode, Job};
pub use runner::{run, run_analytic, run_des, trace_epochs};
pub use workload::{PhaseMeasure, RunConfig, RunResult, Workload};
