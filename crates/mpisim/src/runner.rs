//! The epoch-loop executors.
//!
//! [`run_analytic`] computes the run timeline in closed form;
//! [`run_des`] executes the same semantics event-by-event on the
//! [`desim`] engine with the file system as a processor-sharing resource
//! and genuinely blocking waits (the application parks on a completion
//! callback, never reads future completion times). The two must agree on
//! uniform workloads — the cross-check tests assert it — which validates
//! both the closed form and the engine.
//!
//! ## Semantics (identical in both executors)
//!
//! **Synchronous** — every epoch is `compute; blocking collective I/O`.
//!
//! **Asynchronous write** — every epoch is `compute; [wait for a free
//! snapshot buffer]; snapshot`, with the collective writes running on a
//! single background stream that serializes queued snapshots (argolite's
//! FIFO pool). `buffer_depth` bounds in-flight snapshots; the run drains
//! outstanding writes before terminating.
//!
//! **Asynchronous read** — the first time step is a blocking read (its
//! data gates the first compute, §V-A2); each completed read triggers the
//! background prefetch of the next step; later epochs wait only for the
//! prefetch remainder plus the node-local buffer-delivery copy.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use apio_core::history::{Direction, IoMode};
use apio_trace::critpath::{SPAN_COMPUTE, SPAN_META, SPAN_WAIT, SPAN_WRITE};
use apio_trace::{Event, SpanContext, TraceClock, Tracer, VirtualClock};
use desim::{Engine, SharedResource, SimDuration, SimTime};
use platform::pfs::{FileSystemModel, IoPattern};

use crate::comm::Job;
use crate::workload::{PhaseMeasure, RunConfig, RunResult, StagingTier, Workload};

/// A parked application continuation, resumed by a completion event.
type Continuation = Box<dyn FnOnce(&mut Engine)>;

/// Transactional-overhead and background-extra costs for a staging tier.
fn staging_costs(job: &Job, per_rank_bytes: u64, tier: StagingTier) -> (f64, f64) {
    match tier {
        StagingTier::Dram => (job.snapshot_time(per_rank_bytes), 0.0),
        StagingTier::Nvme => (
            job.snapshot_time_nvme(per_rank_bytes),
            job.staging_readback_time(per_rank_bytes),
        ),
    }
}

/// Execute with the default (analytic) executor.
pub fn run(job: &Job, w: &Workload, cfg: &RunConfig) -> RunResult {
    run_analytic(job, w, cfg)
}

/// Closed-form timeline execution.
pub fn run_analytic(job: &Job, w: &Workload, cfg: &RunConfig) -> RunResult {
    assert!(w.epochs > 0, "need at least one epoch");
    match (cfg.mode, w.direction) {
        (IoMode::Sync, _) => sync_analytic(job, w, cfg),
        (IoMode::Async, Direction::Write) => async_write_analytic(job, w, cfg),
        (IoMode::Async, Direction::Read) => async_read_analytic(job, w, cfg),
    }
}

fn sync_analytic(job: &Job, w: &Workload, cfg: &RunConfig) -> RunResult {
    let io = job.collective_io_time(w.per_rank_bytes, w.direction, cfg.contention);
    let mut phases = Vec::with_capacity(w.epochs as usize);
    let mut wall = w.t_init;
    for e in 0..w.epochs {
        let comp = w.effective_compute_secs(e);
        wall += comp + io;
        phases.push(PhaseMeasure {
            t_comp: comp,
            visible_io_secs: io,
            overhead_secs: 0.0,
            background_io_secs: io,
        });
    }
    RunResult {
        phases,
        wall_secs: wall + w.t_term,
        phase_bytes: job.total_bytes(w.per_rank_bytes),
    }
}

fn async_write_analytic(job: &Job, w: &Workload, cfg: &RunConfig) -> RunResult {
    let (ov, bg_extra) = staging_costs(job, w.per_rank_bytes, cfg.staging);
    let io = bg_extra + job.collective_io_time(w.per_rank_bytes, w.direction, cfg.contention);
    let mut t = w.t_init;
    let mut bg_free = t;
    let mut in_flight: VecDeque<f64> = VecDeque::new();
    let mut phases = Vec::with_capacity(w.epochs as usize);

    for e in 0..w.epochs {
        let comp = w.effective_compute_secs(e);
        t += comp;
        while let Some(&done) = in_flight.front() {
            if done <= t {
                in_flight.pop_front();
            } else {
                break;
            }
        }
        let mut wait = 0.0;
        if in_flight.len() as u32 >= cfg.buffer_depth {
            let oldest = in_flight.pop_front().expect("nonempty");
            wait = (oldest - t).max(0.0);
            t += wait;
        }
        t += ov;
        let start = bg_free.max(t);
        let done = start + io;
        bg_free = done;
        in_flight.push_back(done);
        phases.push(PhaseMeasure {
            t_comp: comp,
            visible_io_secs: wait + ov,
            overhead_secs: ov,
            background_io_secs: done - t,
        });
    }
    t = t.max(bg_free);
    RunResult {
        phases,
        wall_secs: t + w.t_term,
        phase_bytes: job.total_bytes(w.per_rank_bytes),
    }
}

fn async_read_analytic(job: &Job, w: &Workload, cfg: &RunConfig) -> RunResult {
    let io = job.collective_io_time(w.per_rank_bytes, w.direction, cfg.contention);
    let deliver = job.snapshot_time(w.per_rank_bytes);
    let mut phases = Vec::with_capacity(w.epochs as usize);

    // Epoch 0: blocking read, then compute; prefetch chain starts when the
    // blocking read finishes.
    let mut t = w.t_init + io;
    phases.push(PhaseMeasure {
        t_comp: w.effective_compute_secs(0),
        visible_io_secs: io,
        overhead_secs: 0.0,
        background_io_secs: io,
    });
    let mut bg_free = t;
    t += w.effective_compute_secs(0);

    for e in 1..w.epochs {
        let comp = w.effective_compute_secs(e);
        let pf_done = bg_free + io;
        bg_free = pf_done;
        let wait = (pf_done - t).max(0.0);
        let visible = wait + deliver;
        phases.push(PhaseMeasure {
            t_comp: comp,
            visible_io_secs: visible,
            overhead_secs: deliver,
            background_io_secs: wait + deliver,
        });
        t += visible + comp;
    }
    RunResult {
        phases,
        wall_secs: t + w.t_term,
        phase_bytes: job.total_bytes(w.per_rank_bytes),
    }
}

/// Seconds → nanoseconds for span accounting, clamped at zero.
fn secs_to_nanos(secs: f64) -> u64 {
    (secs.max(0.0) * 1e9) as u64
}

/// Replay a finished run onto a tracer as one `"epoch"` span per phase.
///
/// The runner computes the timeline in simulated time, so there is nothing
/// to measure live; instead the phases are re-enacted on a
/// [`VirtualClock`] — each span covers `t_comp + visible_io_secs` and
/// carries an [`Event::EpochMark`] with the split. The resulting trace
/// merges cleanly with connector spans recorded on the same tracer, and
/// exports give the per-epoch timeline of the simulated job.
pub fn trace_epochs(result: &RunResult, tracer: &Tracer, clock: &VirtualClock) {
    for (i, p) in result.phases.iter().enumerate() {
        let comp_nanos = secs_to_nanos(p.t_comp);
        let io_nanos = secs_to_nanos(p.visible_io_secs);
        let mut span = tracer.span_ctx("epoch", SpanContext::new(0, 0, i as u64));
        clock.advance(comp_nanos + io_nanos);
        span.set_event(Event::EpochMark {
            epoch: i as u64,
            comp_nanos,
            io_nanos,
            bytes: result.phase_bytes,
        });
    }
}

/// Re-enact a finished run as one span stream per rank, tagged with a
/// [`SpanContext`] so `apio_trace::critpath` can merge and attribute them
/// (DESIGN.md §16).
///
/// Each rank's epoch is tiled `rank.compute → rank.wait → rank.meta →
/// rank.write`, summing exactly to the epoch wall (`max compute +
/// visible I/O`): ranks that compute faster than the epoch's straggler
/// absorb the difference in their wait span, and an epoch's visible I/O
/// splits into a buffer-park wait plus the snapshot (async) or metadata
/// plus the transfer (blocking). Causal-edge instants mark the barrier
/// around the collective and — for asynchronous epochs — the handoff of
/// the snapshot to the background stream and the settle point where it
/// became durable.
pub fn trace_rank_streams(
    job_id: u32,
    job: &Job,
    w: &Workload,
    cfg: &RunConfig,
    result: &RunResult,
    tracer: &Tracer,
    clock: &VirtualClock,
) {
    let meta_secs = job.system().pfs.metadata_time(job.ranks());
    let mut epoch_start = clock.now_nanos() + secs_to_nanos(w.t_init);
    let mut settle_high = epoch_start;
    for (e, p) in result.phases.iter().enumerate() {
        let c_max = secs_to_nanos(p.t_comp);
        let v = secs_to_nanos(p.visible_io_secs);
        let ov = secs_to_nanos(p.overhead_secs);
        // Visible-I/O split: overlapped epochs are [buffer wait][snapshot];
        // blocking epochs are [metadata][transfer].
        let (buf_wait, meta) = if ov > 0 {
            (v.saturating_sub(ov), 0)
        } else {
            (0, secs_to_nanos(meta_secs).min(v))
        };
        let write = v - buf_wait - meta;
        for rank in 0..w.ranks {
            let ctx = SpanContext::new(job_id, rank, e as u64);
            let c_r = secs_to_nanos(w.rank_compute_secs(rank, e as u32)).min(c_max);
            clock.set(epoch_start);
            {
                let _g = tracer.span_ctx(SPAN_COMPUTE, ctx);
                clock.advance(c_r);
            }
            tracer.instant_ctx("barrier.enter", ctx, Event::BarrierEnter { epoch: e as u64 });
            {
                let _g = tracer.span_ctx(SPAN_WAIT, ctx);
                clock.advance((c_max - c_r) + buf_wait);
            }
            tracer.instant_ctx("barrier.exit", ctx, Event::BarrierExit { epoch: e as u64 });
            if meta > 0 {
                let _g = tracer.span_ctx(SPAN_META, ctx);
                clock.advance(meta);
            }
            {
                let _g = tracer.span_ctx(SPAN_WRITE, ctx);
                clock.advance(write);
            }
            if cfg.mode == IoMode::Async && p.background_io_secs.is_finite() {
                tracer.instant_ctx(
                    "handoff",
                    ctx,
                    Event::WriteHandoff {
                        epoch: e as u64,
                        bytes: w.per_rank_bytes,
                    },
                );
                let settle_at = clock.now_nanos() + secs_to_nanos(p.background_io_secs).max(1);
                clock.set(settle_at);
                tracer.instant_ctx("settle", ctx, Event::Settle { epoch: e as u64, requests: 1 });
                settle_high = settle_high.max(settle_at);
            }
        }
        epoch_start += c_max + v;
    }
    // Leave the clock past everything emitted, so later spans on the same
    // tracer do not travel back in time.
    clock.set(epoch_start.max(settle_high));
}

// ----- event-driven executor -------------------------------------------

type Shared<T> = Rc<RefCell<T>>;

struct DesOut {
    phases: Vec<PhaseMeasure>,
    wall: f64,
}

/// Execute one collective phase on the engine: metadata delay, one capped
/// flow per node on the PFS resource, then the closing barrier.
/// `on_done(engine, end_time)` fires when the phase completes.
fn des_collective(
    engine: &mut Engine,
    pfs: &SharedResource,
    job: &Job,
    per_rank_bytes: u64,
    on_done: impl FnOnce(&mut Engine, SimTime) + 'static,
) {
    let nodes = job.nodes();
    let meta = job.system().pfs.metadata_time(job.ranks());
    let barrier = job.barrier_time();
    let per_node_bytes = job.total_bytes(per_rank_bytes) as f64 / nodes as f64;
    let cap = job.system().pfs.client_term(1, per_rank_bytes);
    let pfs = pfs.clone();
    let remaining = Rc::new(RefCell::new(nodes));
    let done_cb = Rc::new(RefCell::new(Some(on_done)));

    engine.schedule(SimDuration::from_secs_f64(meta), move |engine| {
        let flows = (0..nodes).map(|_| {
            let remaining = remaining.clone();
            let done_cb = done_cb.clone();
            let complete = move |engine: &mut Engine| {
                let mut r = remaining.borrow_mut();
                *r -= 1;
                if *r == 0 {
                    drop(r);
                    let cb = done_cb.borrow_mut().take().expect("single completion");
                    engine.schedule(SimDuration::from_secs_f64(barrier), move |engine| {
                        let now = engine.now();
                        cb(engine, now);
                    });
                }
            };
            (per_node_bytes, Some(cap), complete)
        });
        pfs.start_flows(engine, flows.collect::<Vec<_>>());
    });
}

/// Event-driven execution on the `desim` engine. The PFS server term is a
/// processor-sharing resource; waits are real blocking continuations.
pub fn run_des(job: &Job, w: &Workload, cfg: &RunConfig) -> RunResult {
    assert!(w.epochs > 0, "need at least one epoch");
    let pattern = match w.direction {
        Direction::Write => IoPattern::Write,
        Direction::Read => IoPattern::Read,
    };
    let server = job
        .system()
        .pfs
        .server_term(w.per_rank_bytes, pattern, cfg.contention);
    let mut engine = Engine::new();
    let pfs = SharedResource::new("pfs", server);
    let out: Shared<DesOut> = Rc::new(RefCell::new(DesOut {
        phases: Vec::with_capacity(w.epochs as usize),
        wall: 0.0,
    }));

    match (cfg.mode, w.direction) {
        (IoMode::Sync, _) => des_sync(&mut engine, pfs, job.clone(), w.clone(), out.clone()),
        (IoMode::Async, Direction::Write) => des_async_write(
            &mut engine,
            pfs,
            job.clone(),
            w.clone(),
            cfg.buffer_depth,
            cfg.staging,
            out.clone(),
        ),
        (IoMode::Async, Direction::Read) => {
            des_async_read(&mut engine, pfs, job.clone(), w.clone(), out.clone())
        }
    }
    engine.run();
    let out = Rc::try_unwrap(out).ok().expect("all events done").into_inner();
    RunResult {
        phases: out.phases,
        wall_secs: out.wall + w.t_term,
        phase_bytes: job.total_bytes(w.per_rank_bytes),
    }
}

fn des_sync(engine: &mut Engine, pfs: SharedResource, job: Job, w: Workload, out: Shared<DesOut>) {
    fn epoch(
        engine: &mut Engine,
        pfs: SharedResource,
        job: Job,
        w: Workload,
        out: Shared<DesOut>,
        i: u32,
    ) {
        if i == w.epochs {
            out.borrow_mut().wall = engine.now().as_secs_f64();
            return;
        }
        let comp = w.effective_compute_secs(i);
        engine.schedule(SimDuration::from_secs_f64(comp), move |engine| {
            let io_start = engine.now();
            let pfs2 = pfs.clone();
            let job2 = job.clone();
            let w2 = w.clone();
            des_collective(engine, &pfs, &job, w.per_rank_bytes, move |engine, end| {
                let io = (end - io_start).as_secs_f64();
                out.borrow_mut().phases.push(PhaseMeasure {
                    t_comp: comp,
                    visible_io_secs: io,
                    overhead_secs: 0.0,
                    background_io_secs: io,
                });
                epoch(engine, pfs2, job2, w2, out, i + 1);
            });
        });
    }
    engine.schedule(SimDuration::from_secs_f64(w.t_init), {
        let w = w.clone();
        move |engine| epoch(engine, pfs, job, w, out, 0)
    });
}

/// Shared state of the async-write run.
struct AwState {
    /// Snapshots not yet durable.
    in_flight: u32,
    /// Continuation of an application thread parked on a full buffer pool.
    waiter: Option<Continuation>,
    /// Background stream status and queue of pending writes (a count —
    /// every queued write is identical in this workload).
    bg_busy: bool,
    bg_queued: u32,
    /// Set when the application finished its last epoch.
    app_done: Option<f64>,
}

#[allow(clippy::too_many_arguments)]
fn des_async_write(
    engine: &mut Engine,
    pfs: SharedResource,
    job: Job,
    w: Workload,
    depth: u32,
    staging: StagingTier,
    out: Shared<DesOut>,
) {
    let st: Shared<AwState> = Rc::new(RefCell::new(AwState {
        in_flight: 0,
        waiter: None,
        bg_busy: false,
        bg_queued: 0,
        app_done: None,
    }));

    /// Start the next queued background write, if any. NVMe staging
    /// charges the device read-back to the background stream before the
    /// collective file system write.
    fn bg_start(
        engine: &mut Engine,
        pfs: SharedResource,
        job: Job,
        w: Workload,
        staging: StagingTier,
        st: Shared<AwState>,
        out: Shared<DesOut>,
    ) {
        {
            let mut s = st.borrow_mut();
            debug_assert!(s.bg_queued > 0 && s.bg_busy);
            s.bg_queued -= 1;
        }
        let bg_extra = match staging {
            StagingTier::Dram => 0.0,
            StagingTier::Nvme => job.staging_readback_time(w.per_rank_bytes),
        };
        let pfs_outer = pfs.clone();
        let job_outer = job.clone();
        let w_outer = w.clone();
        engine.schedule(SimDuration::from_secs_f64(bg_extra), move |engine| {
        let pfs = pfs_outer;
        let job = job_outer;
        let w = w_outer;
        let pfs2 = pfs.clone();
        let job2 = job.clone();
        let w2 = w.clone();
        des_collective(engine, &pfs, &job, w.per_rank_bytes, move |engine, end| {
            let end_s = end.as_secs_f64();
            let (waiter, more, finished) = {
                let mut s = st.borrow_mut();
                s.in_flight -= 1;
                let waiter = s.waiter.take();
                let more = s.bg_queued > 0;
                if !more {
                    s.bg_busy = false;
                }
                let finished =
                    s.app_done.filter(|_| s.in_flight == 0 && s.bg_queued == 0 && !more);
                (waiter, more, finished)
            };
            if let Some(cont) = waiter {
                cont(engine);
            }
            if more {
                bg_start(engine, pfs2, job2, w2, staging, st, out);
            } else if let Some(app_done) = finished {
                out.borrow_mut().wall = app_done.max(end_s);
            }
        });
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn epoch(
        engine: &mut Engine,
        pfs: SharedResource,
        job: Job,
        w: Workload,
        depth: u32,
        staging: StagingTier,
        st: Shared<AwState>,
        out: Shared<DesOut>,
        i: u32,
    ) {
        if i == w.epochs {
            let now = engine.now().as_secs_f64();
            let mut s = st.borrow_mut();
            s.app_done = Some(now);
            if s.in_flight == 0 && s.bg_queued == 0 && !s.bg_busy {
                drop(s);
                out.borrow_mut().wall = now;
            }
            return;
        }
        let comp = w.effective_compute_secs(i);
        engine.schedule(SimDuration::from_secs_f64(comp), move |engine| {
            let after_compute = engine.now().as_secs_f64();
            // Park if the buffer pool is exhausted; otherwise continue.
            let must_wait = st.borrow().in_flight >= depth;
            let proceed = move |engine: &mut Engine,
                                pfs: SharedResource,
                                job: Job,
                                w: Workload,
                                st: Shared<AwState>,
                                out: Shared<DesOut>| {
                let resumed = engine.now().as_secs_f64();
                let wait = resumed - after_compute;
                let (ov, _) = staging_costs(&job, w.per_rank_bytes, staging);
                engine.schedule(SimDuration::from_secs_f64(ov), move |engine| {
                    {
                        let mut s = st.borrow_mut();
                        s.in_flight += 1;
                        s.bg_queued += 1;
                    }
                    out.borrow_mut().phases.push(PhaseMeasure {
                        t_comp: comp,
                        visible_io_secs: wait + ov,
                        overhead_secs: ov,
                        background_io_secs: f64::NAN, // DES leaves this to
                                                      // the analytic path
                    });
                    let start_bg = {
                        let mut s = st.borrow_mut();
                        if s.bg_busy {
                            false
                        } else {
                            s.bg_busy = true;
                            true
                        }
                    };
                    if start_bg {
                        bg_start(
                            engine,
                            pfs.clone(),
                            job.clone(),
                            w.clone(),
                            staging,
                            st.clone(),
                            out.clone(),
                        );
                    }
                    epoch(engine, pfs, job, w, depth, staging, st, out, i + 1);
                });
            };
            if must_wait {
                let pfs2 = pfs.clone();
                let job2 = job.clone();
                let w2 = w.clone();
                let st2 = st.clone();
                let out2 = out.clone();
                let st_for_wait = st.clone();
                st_for_wait.borrow_mut().waiter = Some(Box::new(move |engine| {
                    proceed(engine, pfs2, job2, w2, st2, out2);
                }));
            } else {
                proceed(engine, pfs, job, w, st, out);
            }
        });
    }

    engine.schedule(SimDuration::from_secs_f64(w.t_init), {
        let w2 = w.clone();
        move |engine| epoch(engine, pfs, job, w2, depth, staging, st, out, 0)
    });
}

/// Shared state of the async-read run.
struct ArState {
    /// Completion flag per step (true = prefetched data resident).
    ready: Vec<bool>,
    /// Application continuation parked on a specific step.
    waiter: Option<(u32, Continuation)>,
}

fn des_async_read(
    engine: &mut Engine,
    pfs: SharedResource,
    job: Job,
    w: Workload,
    out: Shared<DesOut>,
) {
    let st: Shared<ArState> = Rc::new(RefCell::new(ArState {
        ready: vec![false; w.epochs as usize],
        waiter: None,
    }));

    /// Background prefetch chain: fetch `step`, then `step + 1`, ...
    fn prefetch(
        engine: &mut Engine,
        pfs: SharedResource,
        job: Job,
        w: Workload,
        st: Shared<ArState>,
        step: u32,
    ) {
        if step >= w.epochs {
            return;
        }
        let pfs2 = pfs.clone();
        let job2 = job.clone();
        let w2 = w.clone();
        des_collective(engine, &pfs, &job, w.per_rank_bytes, move |engine, _end| {
            let waiter = {
                let mut s = st.borrow_mut();
                s.ready[step as usize] = true;
                match s.waiter.take() {
                    Some((wstep, cont)) if wstep == step => Some(cont),
                    other => {
                        s.waiter = other;
                        None
                    }
                }
            };
            if let Some(cont) = waiter {
                cont(engine);
            }
            prefetch(engine, pfs2, job2, w2, st, step + 1);
        });
    }

    /// Application epochs 1..: wait for prefetch, deliver, compute.
    fn epoch(
        engine: &mut Engine,
        job: Job,
        w: Workload,
        st: Shared<ArState>,
        out: Shared<DesOut>,
        step: u32,
        io_request_time: f64,
    ) {
        if step == w.epochs {
            out.borrow_mut().wall = engine.now().as_secs_f64();
            return;
        }
        let ready = st.borrow().ready[step as usize];
        let deliver = job.snapshot_time(w.per_rank_bytes);
        let comp = w.effective_compute_secs(step);
        let finish = move |engine: &mut Engine,
                           job: Job,
                           w: Workload,
                           st: Shared<ArState>,
                           out: Shared<DesOut>| {
            let resumed = engine.now().as_secs_f64();
            let wait = resumed - io_request_time;
            engine.schedule(SimDuration::from_secs_f64(deliver), move |engine| {
                out.borrow_mut().phases.push(PhaseMeasure {
                    t_comp: comp,
                    visible_io_secs: wait + deliver,
                    overhead_secs: deliver,
                    background_io_secs: wait + deliver,
                });
                engine.schedule(SimDuration::from_secs_f64(comp), move |engine| {
                    let now = engine.now().as_secs_f64();
                    epoch(engine, job, w, st, out, step + 1, now);
                });
            });
        };
        if ready {
            finish(engine, job, w, st, out);
        } else {
            let st2 = st.clone();
            st.borrow_mut().waiter = Some((
                step,
                Box::new(move |engine| finish(engine, job, w, st2, out)),
            ));
        }
    }

    engine.schedule(SimDuration::from_secs_f64(w.t_init), {
        let w2 = w.clone();
        move |engine| {
            let io_start = engine.now();
            let pfs2 = pfs.clone();
            let job2 = job.clone();
            let w3 = w2.clone();
            des_collective(engine, &pfs, &job, w2.per_rank_bytes, move |engine, end| {
                let io = (end - io_start).as_secs_f64();
                let comp0 = w3.effective_compute_secs(0);
                out.borrow_mut().phases.push(PhaseMeasure {
                    t_comp: comp0,
                    visible_io_secs: io,
                    overhead_secs: 0.0,
                    background_io_secs: io,
                });
                // Prefetch pipeline starts now; the application computes.
                prefetch(
                    engine,
                    pfs2.clone(),
                    job2.clone(),
                    w3.clone(),
                    st.clone(),
                    1,
                );
                engine.schedule(SimDuration::from_secs_f64(comp0), move |engine| {
                    let now = engine.now().as_secs_f64();
                    epoch(engine, job2, w3, st, out, 1, now);
                });
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::units::MIB;
    use platform::{cori_haswell, summit};

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1e-9)
    }

    fn assert_runs_agree(job: &Job, w: &Workload, cfg: &RunConfig) {
        let a = run_analytic(job, w, cfg);
        let d = run_des(job, w, cfg);
        assert!(
            close(a.wall_secs, d.wall_secs, 1e-6),
            "wall: analytic {} vs des {}",
            a.wall_secs,
            d.wall_secs
        );
        assert_eq!(a.phases.len(), d.phases.len());
        for (i, (pa, pd)) in a.phases.iter().zip(&d.phases).enumerate() {
            assert!(
                close(pa.visible_io_secs, pd.visible_io_secs, 1e-6),
                "phase {i} visible: {} vs {}",
                pa.visible_io_secs,
                pd.visible_io_secs
            );
            assert!(close(pa.overhead_secs, pd.overhead_secs, 1e-6));
        }
    }

    #[test]
    fn sync_executors_agree_summit() {
        let job = Job::new(summit(), 96);
        let w = Workload::checkpoint(96, 32 * MIB, 4, 5.0);
        assert_runs_agree(&job, &w, &RunConfig::sync());
    }

    #[test]
    fn sync_executors_agree_cori_with_contention() {
        let job = Job::new(cori_haswell(), 1024);
        let w = Workload::checkpoint(1024, 32 * MIB, 3, 2.0);
        assert_runs_agree(&job, &w, &RunConfig::sync().with_contention(0.6));
    }

    #[test]
    fn async_write_executors_agree_long_compute() {
        // Ideal scenario: compute fully hides the background write.
        let job = Job::new(summit(), 768);
        let w = Workload::checkpoint(768, 32 * MIB, 5, 30.0);
        assert_runs_agree(&job, &w, &RunConfig::async_io());
    }

    #[test]
    fn async_write_executors_agree_short_compute() {
        // Buffer-limited: compute far shorter than the background write,
        // so the app must park on buffer availability.
        let job = Job::new(summit(), 6144);
        let w = Workload::checkpoint(6144, 32 * MIB, 6, 0.05);
        assert_runs_agree(&job, &w, &RunConfig::async_io());
        assert_runs_agree(&job, &w, &RunConfig::async_io().with_buffer_depth(1));
        assert_runs_agree(&job, &w, &RunConfig::async_io().with_buffer_depth(4));
    }

    #[test]
    fn async_read_executors_agree() {
        let job = Job::new(summit(), 384);
        let w = Workload::analysis(384, 32 * MIB, 5, 30.0);
        assert_runs_agree(&job, &w, &RunConfig::async_io());
        // Short compute: prefetch can't keep up; the app parks.
        let w = Workload::analysis(384, 32 * MIB, 5, 0.01);
        assert_runs_agree(&job, &w, &RunConfig::async_io());
    }

    #[test]
    fn async_beats_sync_when_compute_dominates() {
        let job = Job::new(summit(), 768);
        let w = Workload::checkpoint(768, 32 * MIB, 5, 30.0);
        let sync = run(&job, &w, &RunConfig::sync());
        let asyn = run(&job, &w, &RunConfig::async_io());
        assert!(asyn.wall_secs < sync.wall_secs);
        // Aggregate bandwidth: async is bounded by the snapshot, far above
        // the PFS-bound sync bandwidth at this scale.
        assert!(asyn.peak_bandwidth() > 2.0 * sync.peak_bandwidth());
    }

    #[test]
    fn async_loses_when_compute_is_negligible() {
        // Fig. 1c: nothing to overlap with; the snapshot is pure loss and
        // the buffer pool throttles the app to the background rate anyway.
        let job = Job::new(summit(), 768);
        let w = Workload::checkpoint(768, 32 * MIB, 5, 0.0);
        let sync = run(&job, &w, &RunConfig::sync());
        let asyn = run(&job, &w, &RunConfig::async_io());
        assert!(asyn.wall_secs >= sync.wall_secs * 0.99);
    }

    #[test]
    fn first_read_is_blocking_then_prefetch_kicks_in() {
        // Below the sync knee the gap is a few x; at scale (where sync is
        // server-bound) the prefetched steps are orders of magnitude up,
        // which is the §V-A2 observation.
        let job = Job::new(summit(), 384);
        let w = Workload::analysis(384, 32 * MIB, 4, 30.0);
        let r = run(&job, &w, &RunConfig::async_io());
        let bws = r.phase_bandwidths();
        assert!(
            bws[1] > 3.0 * bws[0],
            "prefetched reads must beat the blocking step: {bws:?}"
        );

        let job = Job::new(summit(), 6144);
        let w = Workload::analysis(6144, 32 * MIB, 4, 30.0);
        let r = run(&job, &w, &RunConfig::async_io());
        let bws = r.phase_bandwidths();
        assert!(
            bws[1] > 10.0 * bws[0],
            "at scale the gap is orders of magnitude: {bws:?}"
        );
    }

    #[test]
    fn wall_time_includes_drain() {
        // One epoch, zero compute: wall must include the background write.
        let job = Job::new(summit(), 768);
        let w = Workload::checkpoint(768, 32 * MIB, 1, 0.0);
        let r = run(&job, &w, &RunConfig::async_io());
        let io = job.collective_io_time(32 * MIB, Direction::Write, 1.0);
        assert!(r.wall_secs >= w.t_init + io + w.t_term - 1e-9);
    }

    #[test]
    fn buffer_depth_one_serializes_every_other_epoch() {
        let job = Job::new(summit(), 768);
        let w = Workload::checkpoint(768, 32 * MIB, 4, 0.0);
        let d1 = run(&job, &w, &RunConfig::async_io().with_buffer_depth(1));
        let d4 = run(&job, &w, &RunConfig::async_io().with_buffer_depth(4));
        assert!(d1.wall_secs >= d4.wall_secs - 1e-9);
        // With depth 1 every epoch after the first waits on the previous
        // write; visible I/O of later epochs includes that wait.
        assert!(d1.phases[1].visible_io_secs > d4.phases[1].visible_io_secs);
    }
    #[test]
    fn trace_epochs_emits_one_span_per_phase() {
        use std::sync::Arc;
        let job = Job::new(summit(), 96);
        let w = Workload::checkpoint(96, 32 * MIB, 3, 5.0);
        let r = run(&job, &w, &RunConfig::async_io());
        let clock = Arc::new(VirtualClock::new(0));
        let t = Tracer::with_clock(clock.clone());
        trace_epochs(&r, &t, &clock);
        let records = t.sink().records().to_vec();
        let epochs: Vec<_> = records.iter().filter(|rec| rec.name == "epoch").collect();
        assert_eq!(epochs.len(), 3);
        for (i, rec) in epochs.iter().enumerate() {
            let Some(Event::EpochMark {
                epoch,
                comp_nanos,
                io_nanos,
                bytes,
            }) = rec.event
            else {
                panic!("epoch span without EpochMark payload");
            };
            assert_eq!(epoch, i as u64);
            assert_eq!(rec.dur_nanos, comp_nanos + io_nanos);
            assert_eq!(bytes, r.phase_bytes);
            assert_eq!(comp_nanos, secs_to_nanos(r.phases[i].t_comp));
        }
        // Spans tile the virtual timeline: each starts where the previous
        // ended.
        for pair in epochs.windows(2) {
            assert_eq!(pair[1].start_nanos, pair[0].start_nanos + pair[0].dur_nanos);
        }
    }

    #[test]
    fn nvme_staging_executors_agree() {
        let job = Job::new(summit(), 768);
        let w = Workload::checkpoint(768, 32 * MIB, 5, 30.0);
        let cfg = RunConfig::async_io().with_staging(crate::workload::StagingTier::Nvme);
        assert_runs_agree(&job, &w, &cfg);
        // And in the buffer-throttled regime.
        let w = Workload::checkpoint(768, 32 * MIB, 5, 0.01);
        assert_runs_agree(&job, &w, &cfg);
    }

    #[test]
    fn nvme_staging_costs_more_overhead_than_dram() {
        // The §II-C trade-off: device staging pays device bandwidth as
        // transactional overhead, DRAM staging pays memcpy bandwidth.
        let job = Job::new(summit(), 768);
        let w = Workload::checkpoint(768, 32 * MIB, 3, 30.0);
        let dram = run(&job, &w, &RunConfig::async_io());
        let nvme = run(
            &job,
            &w,
            &RunConfig::async_io().with_staging(crate::workload::StagingTier::Nvme),
        );
        assert!(
            nvme.phases[0].overhead_secs > 2.0 * dram.phases[0].overhead_secs,
            "nvme {} vs dram {}",
            nvme.phases[0].overhead_secs,
            dram.phases[0].overhead_secs
        );
        // But still far cheaper than synchronous I/O at this scale.
        let sync = run(&job, &w, &RunConfig::sync());
        assert!(nvme.peak_bandwidth() > sync.peak_bandwidth());
    }

    #[test]
    fn nvme_staging_slows_the_background_drain() {
        // One epoch, no compute: wall time includes the read-back.
        let job = Job::new(summit(), 768);
        let w = Workload::checkpoint(768, 32 * MIB, 1, 0.0);
        let dram = run(&job, &w, &RunConfig::async_io());
        let nvme = run(
            &job,
            &w,
            &RunConfig::async_io().with_staging(crate::workload::StagingTier::Nvme),
        );
        assert!(nvme.wall_secs > dram.wall_secs);
    }
}
