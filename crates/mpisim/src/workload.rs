//! Epoch-structured workload descriptions and run measurements.

use apio_core::history::{Direction, IoMode};

/// SplitMix64 finalizer: a well-mixed 64-bit hash of `z`.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded straggler/interference perturbation of the compute phases
/// (DESIGN.md §16). The default is the identity: every rank computes the
/// workload's nominal `compute_secs`, which keeps the unperturbed
/// executors bit-identical to the pre-perturbation model.
///
/// Both executors apply the same perturbation (an epoch's effective
/// compute is the slowest rank's), so their cross-check agreement holds
/// under any knob setting — and the per-rank spread is what the
/// cross-rank tracer attributes.
#[derive(Clone, Debug)]
pub struct Perturbation {
    /// Rank whose compute runs `straggler_factor`× slower every epoch.
    pub straggler_rank: Option<u32>,
    /// Slowdown multiplier for the straggler rank (≥ 1).
    pub straggler_factor: f64,
    /// Per-(rank, epoch) uniform compute jitter in `[0, jitter_frac)` of
    /// the nominal compute time — the interference knob.
    pub jitter_frac: f64,
    /// Seed for the jitter draws (deterministic across executors).
    pub seed: u64,
}

impl Default for Perturbation {
    fn default() -> Self {
        Perturbation {
            straggler_rank: None,
            straggler_factor: 1.0,
            jitter_frac: 0.0,
            seed: 0,
        }
    }
}

impl Perturbation {
    /// Whether this perturbation leaves every compute phase unchanged.
    pub fn is_identity(&self) -> bool {
        (self.straggler_rank.is_none() || self.straggler_factor == 1.0) && self.jitter_frac == 0.0
    }

    /// Deterministic jitter draw in `[0, 1)` for one (rank, epoch) cell.
    fn unit_draw(&self, rank: u32, epoch: u32) -> f64 {
        let cell = mix64(self.seed ^ (u64::from(rank) << 32) ^ u64::from(epoch));
        // 53 mantissa bits -> uniform in [0, 1).
        (cell >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The perturbed compute time of `rank` in `epoch`, given the
    /// workload's nominal compute time.
    pub fn rank_compute_secs(&self, base: f64, rank: u32, epoch: u32) -> f64 {
        if self.is_identity() {
            return base;
        }
        let mut secs = base;
        if self.straggler_rank == Some(rank) {
            secs *= self.straggler_factor;
        }
        if self.jitter_frac > 0.0 {
            secs *= 1.0 + self.jitter_frac * self.unit_draw(rank, epoch);
        }
        secs
    }
}

/// A bulk-synchronous iterative workload: `epochs` repetitions of
/// (compute phase, collective I/O phase).
#[derive(Clone, Debug)]
pub struct Workload {
    /// Participating MPI ranks.
    pub ranks: u32,
    /// Bytes each rank moves per I/O phase.
    pub per_rank_bytes: u64,
    /// Number of epochs (compute + I/O pairs).
    pub epochs: u32,
    /// Length of each computation phase, seconds.
    pub compute_secs: f64,
    /// Whether the I/O phases write (checkpoint) or read (analysis).
    pub direction: Direction,
    /// One-time setup cost (buffer allocation, background-thread spin-up,
    /// file open) — `t_init` in Eq. 1.
    pub t_init: f64,
    /// One-time teardown cost — `t_term` in Eq. 1.
    pub t_term: f64,
    /// Seeded straggler/interference knob (identity by default).
    pub perturb: Perturbation,
}

impl Workload {
    /// A write-checkpoint workload with the default init/term costs.
    pub fn checkpoint(ranks: u32, per_rank_bytes: u64, epochs: u32, compute_secs: f64) -> Self {
        Workload {
            ranks,
            per_rank_bytes,
            epochs,
            compute_secs,
            direction: Direction::Write,
            t_init: 0.5,
            t_term: 0.2,
            perturb: Perturbation::default(),
        }
    }

    /// A read-analysis workload (BD-CATS-style).
    pub fn analysis(ranks: u32, per_rank_bytes: u64, epochs: u32, compute_secs: f64) -> Self {
        Workload {
            direction: Direction::Read,
            ..Workload::checkpoint(ranks, per_rank_bytes, epochs, compute_secs)
        }
    }

    /// Slow one rank's compute phases by `factor`× every epoch.
    pub fn with_straggler(mut self, rank: u32, factor: f64) -> Self {
        assert!(rank < self.ranks, "straggler rank must participate");
        assert!(factor >= 1.0, "straggler factor must be >= 1");
        self.perturb.straggler_rank = Some(rank);
        self.perturb.straggler_factor = factor;
        self
    }

    /// Add seeded per-(rank, epoch) compute jitter in `[0, frac)`.
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&frac), "jitter fraction in [0, 1)");
        self.perturb.jitter_frac = frac;
        self.perturb.seed = seed;
        self
    }

    /// The perturbed compute time of one rank in one epoch.
    pub fn rank_compute_secs(&self, rank: u32, epoch: u32) -> f64 {
        self.perturb.rank_compute_secs(self.compute_secs, rank, epoch)
    }

    /// The epoch's effective (bulk-synchronous) compute time: the slowest
    /// rank's, since the collective phase cannot start until every rank
    /// reaches it. Equals `compute_secs` for the identity perturbation.
    pub fn effective_compute_secs(&self, epoch: u32) -> f64 {
        if self.perturb.is_identity() {
            return self.compute_secs;
        }
        (0..self.ranks)
            .map(|r| self.rank_compute_secs(r, epoch))
            .fold(self.compute_secs, f64::max)
    }
}

/// Where asynchronous snapshots are staged (paper §II-C).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StagingTier {
    /// On-node DRAM: one memcpy of overhead, background write reads it
    /// for free.
    Dram,
    /// Node-local SSD: overhead is a device write; the background stream
    /// pays a device read-back before the file system write. Slower, but
    /// with bounded DRAM footprint and persistence.
    Nvme,
}

/// How to execute a [`Workload`].
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Synchronous or asynchronous I/O.
    pub mode: IoMode,
    /// Server-side capacity factor in `(0, 1]` (1.0 = uncontended). Drawn
    /// from a [`platform::ContentionModel`] per run by the harnesses.
    pub contention: f64,
    /// Async double-buffer pool depth: how many snapshots may be in
    /// flight before the application blocks on the oldest background
    /// write (2 = classic double buffering).
    pub buffer_depth: u32,
    /// Where async snapshots live until the background write lands.
    pub staging: StagingTier,
}

impl RunConfig {
    /// Synchronous I/O, uncontended, default buffering.
    pub fn sync() -> Self {
        RunConfig {
            mode: IoMode::Sync,
            contention: 1.0,
            buffer_depth: 2,
            staging: StagingTier::Dram,
        }
    }

    /// Asynchronous I/O, uncontended, double buffering, DRAM staging.
    pub fn async_io() -> Self {
        RunConfig {
            mode: IoMode::Async,
            contention: 1.0,
            buffer_depth: 2,
            staging: StagingTier::Dram,
        }
    }

    /// Select the snapshot staging tier.
    pub fn with_staging(mut self, tier: StagingTier) -> Self {
        self.staging = tier;
        self
    }

    /// Apply a server-side capacity factor in `(0, 1]`.
    pub fn with_contention(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "contention in (0,1]");
        self.contention = factor;
        self
    }

    /// Bound the number of in-flight snapshots (≥ 1).
    pub fn with_buffer_depth(mut self, depth: u32) -> Self {
        assert!(depth >= 1, "need at least one buffer");
        self.buffer_depth = depth;
        self
    }
}

/// Measurements of one epoch.
#[derive(Clone, Copy, Debug)]
pub struct PhaseMeasure {
    /// Computation phase wall time.
    pub t_comp: f64,
    /// Time the application thread was blocked by the I/O phase — the
    /// quantity the paper's bandwidth plots divide into (for async this
    /// is the snapshot plus any wait for a free buffer).
    pub visible_io_secs: f64,
    /// Transactional overhead portion of `visible_io_secs` (0 for sync).
    pub overhead_secs: f64,
    /// When the epoch's data actually became durable, relative to the
    /// epoch's I/O issue time (equals `visible_io_secs` for sync).
    pub background_io_secs: f64,
}

/// The outcome of one simulated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-epoch measurements, in execution order.
    pub phases: Vec<PhaseMeasure>,
    /// Total application wall time (Eq. 1's `t_app`).
    pub wall_secs: f64,
    /// Bytes moved per I/O phase across all ranks.
    pub phase_bytes: u64,
}

impl RunResult {
    /// Observed aggregate bandwidth of each I/O phase (bytes/s).
    pub fn phase_bandwidths(&self) -> Vec<f64> {
        self.phases
            .iter()
            .map(|p| self.phase_bytes as f64 / p.visible_io_secs.max(1e-12))
            .collect()
    }

    /// Peak observed aggregate bandwidth over all phases — what the
    /// paper's bar plots report.
    pub fn peak_bandwidth(&self) -> f64 {
        self.phase_bandwidths()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean observed aggregate bandwidth over all phases.
    pub fn mean_bandwidth(&self) -> f64 {
        let bws = self.phase_bandwidths();
        bws.iter().sum::<f64>() / bws.len() as f64
    }

    /// Total visible I/O time across phases.
    pub fn total_visible_io(&self) -> f64 {
        self.phases.iter().map(|p| p.visible_io_secs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let w = Workload::checkpoint(64, 1024, 5, 30.0);
        assert_eq!(w.direction, Direction::Write);
        let r = Workload::analysis(64, 1024, 5, 30.0);
        assert_eq!(r.direction, Direction::Read);
        assert_eq!(r.ranks, 64);
    }

    #[test]
    fn run_config_builders() {
        let c = RunConfig::async_io().with_contention(0.5).with_buffer_depth(4);
        assert_eq!(c.mode, IoMode::Async);
        assert_eq!(c.contention, 0.5);
        assert_eq!(c.buffer_depth, 4);
    }

    #[test]
    #[should_panic(expected = "contention")]
    fn invalid_contention_rejected() {
        RunConfig::sync().with_contention(0.0);
    }

    #[test]
    fn default_perturbation_is_the_identity() {
        let w = Workload::checkpoint(16, 1024, 4, 5.0);
        assert!(w.perturb.is_identity());
        for e in 0..4 {
            assert_eq!(w.effective_compute_secs(e), 5.0);
            for r in 0..16 {
                assert_eq!(w.rank_compute_secs(r, e), 5.0);
            }
        }
    }

    #[test]
    fn straggler_slows_exactly_one_rank() {
        let w = Workload::checkpoint(16, 1024, 4, 5.0).with_straggler(7, 4.0);
        for e in 0..4 {
            assert_eq!(w.rank_compute_secs(7, e), 20.0);
            assert_eq!(w.rank_compute_secs(6, e), 5.0);
            assert_eq!(w.effective_compute_secs(e), 20.0, "slowest rank gates the epoch");
        }
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let w = Workload::checkpoint(16, 1024, 4, 5.0).with_jitter(0.2, 42);
        let w2 = Workload::checkpoint(16, 1024, 4, 5.0).with_jitter(0.2, 42);
        let mut saw_spread = false;
        for e in 0..4 {
            for r in 0..16 {
                let c = w.rank_compute_secs(r, e);
                assert_eq!(c, w2.rank_compute_secs(r, e), "same seed, same draw");
                assert!((5.0..5.0 * 1.2).contains(&c), "jitter bounded: {c}");
                if c != w.rank_compute_secs((r + 1) % 16, e) {
                    saw_spread = true;
                }
            }
        }
        assert!(saw_spread, "jitter must actually vary across ranks");
        let w3 = Workload::checkpoint(16, 1024, 4, 5.0).with_jitter(0.2, 43);
        assert_ne!(
            w.rank_compute_secs(0, 0),
            w3.rank_compute_secs(0, 0),
            "different seed, different draw"
        );
    }

    #[test]
    #[should_panic(expected = "straggler rank")]
    fn out_of_range_straggler_rejected() {
        let _ = Workload::checkpoint(4, 1024, 1, 1.0).with_straggler(4, 2.0);
    }

    #[test]
    fn result_bandwidth_math() {
        let r = RunResult {
            phases: vec![
                PhaseMeasure {
                    t_comp: 1.0,
                    visible_io_secs: 2.0,
                    overhead_secs: 0.0,
                    background_io_secs: 2.0,
                },
                PhaseMeasure {
                    t_comp: 1.0,
                    visible_io_secs: 1.0,
                    overhead_secs: 0.0,
                    background_io_secs: 1.0,
                },
            ],
            wall_secs: 5.0,
            phase_bytes: 100,
        };
        assert_eq!(r.phase_bandwidths(), vec![50.0, 100.0]);
        assert_eq!(r.peak_bandwidth(), 100.0);
        assert_eq!(r.mean_bandwidth(), 75.0);
        assert_eq!(r.total_visible_io(), 3.0);
    }
}
