//! Epoch-structured workload descriptions and run measurements.

use apio_core::history::{Direction, IoMode};

/// A bulk-synchronous iterative workload: `epochs` repetitions of
/// (compute phase, collective I/O phase).
#[derive(Clone, Debug)]
pub struct Workload {
    /// Participating MPI ranks.
    pub ranks: u32,
    /// Bytes each rank moves per I/O phase.
    pub per_rank_bytes: u64,
    /// Number of epochs (compute + I/O pairs).
    pub epochs: u32,
    /// Length of each computation phase, seconds.
    pub compute_secs: f64,
    /// Whether the I/O phases write (checkpoint) or read (analysis).
    pub direction: Direction,
    /// One-time setup cost (buffer allocation, background-thread spin-up,
    /// file open) — `t_init` in Eq. 1.
    pub t_init: f64,
    /// One-time teardown cost — `t_term` in Eq. 1.
    pub t_term: f64,
}

impl Workload {
    /// A write-checkpoint workload with the default init/term costs.
    pub fn checkpoint(ranks: u32, per_rank_bytes: u64, epochs: u32, compute_secs: f64) -> Self {
        Workload {
            ranks,
            per_rank_bytes,
            epochs,
            compute_secs,
            direction: Direction::Write,
            t_init: 0.5,
            t_term: 0.2,
        }
    }

    /// A read-analysis workload (BD-CATS-style).
    pub fn analysis(ranks: u32, per_rank_bytes: u64, epochs: u32, compute_secs: f64) -> Self {
        Workload {
            direction: Direction::Read,
            ..Workload::checkpoint(ranks, per_rank_bytes, epochs, compute_secs)
        }
    }
}

/// Where asynchronous snapshots are staged (paper §II-C).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StagingTier {
    /// On-node DRAM: one memcpy of overhead, background write reads it
    /// for free.
    Dram,
    /// Node-local SSD: overhead is a device write; the background stream
    /// pays a device read-back before the file system write. Slower, but
    /// with bounded DRAM footprint and persistence.
    Nvme,
}

/// How to execute a [`Workload`].
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Synchronous or asynchronous I/O.
    pub mode: IoMode,
    /// Server-side capacity factor in `(0, 1]` (1.0 = uncontended). Drawn
    /// from a [`platform::ContentionModel`] per run by the harnesses.
    pub contention: f64,
    /// Async double-buffer pool depth: how many snapshots may be in
    /// flight before the application blocks on the oldest background
    /// write (2 = classic double buffering).
    pub buffer_depth: u32,
    /// Where async snapshots live until the background write lands.
    pub staging: StagingTier,
}

impl RunConfig {
    /// Synchronous I/O, uncontended, default buffering.
    pub fn sync() -> Self {
        RunConfig {
            mode: IoMode::Sync,
            contention: 1.0,
            buffer_depth: 2,
            staging: StagingTier::Dram,
        }
    }

    /// Asynchronous I/O, uncontended, double buffering, DRAM staging.
    pub fn async_io() -> Self {
        RunConfig {
            mode: IoMode::Async,
            contention: 1.0,
            buffer_depth: 2,
            staging: StagingTier::Dram,
        }
    }

    /// Select the snapshot staging tier.
    pub fn with_staging(mut self, tier: StagingTier) -> Self {
        self.staging = tier;
        self
    }

    /// Apply a server-side capacity factor in `(0, 1]`.
    pub fn with_contention(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "contention in (0,1]");
        self.contention = factor;
        self
    }

    /// Bound the number of in-flight snapshots (≥ 1).
    pub fn with_buffer_depth(mut self, depth: u32) -> Self {
        assert!(depth >= 1, "need at least one buffer");
        self.buffer_depth = depth;
        self
    }
}

/// Measurements of one epoch.
#[derive(Clone, Copy, Debug)]
pub struct PhaseMeasure {
    /// Computation phase wall time.
    pub t_comp: f64,
    /// Time the application thread was blocked by the I/O phase — the
    /// quantity the paper's bandwidth plots divide into (for async this
    /// is the snapshot plus any wait for a free buffer).
    pub visible_io_secs: f64,
    /// Transactional overhead portion of `visible_io_secs` (0 for sync).
    pub overhead_secs: f64,
    /// When the epoch's data actually became durable, relative to the
    /// epoch's I/O issue time (equals `visible_io_secs` for sync).
    pub background_io_secs: f64,
}

/// The outcome of one simulated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-epoch measurements, in execution order.
    pub phases: Vec<PhaseMeasure>,
    /// Total application wall time (Eq. 1's `t_app`).
    pub wall_secs: f64,
    /// Bytes moved per I/O phase across all ranks.
    pub phase_bytes: u64,
}

impl RunResult {
    /// Observed aggregate bandwidth of each I/O phase (bytes/s).
    pub fn phase_bandwidths(&self) -> Vec<f64> {
        self.phases
            .iter()
            .map(|p| self.phase_bytes as f64 / p.visible_io_secs.max(1e-12))
            .collect()
    }

    /// Peak observed aggregate bandwidth over all phases — what the
    /// paper's bar plots report.
    pub fn peak_bandwidth(&self) -> f64 {
        self.phase_bandwidths()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean observed aggregate bandwidth over all phases.
    pub fn mean_bandwidth(&self) -> f64 {
        let bws = self.phase_bandwidths();
        bws.iter().sum::<f64>() / bws.len() as f64
    }

    /// Total visible I/O time across phases.
    pub fn total_visible_io(&self) -> f64 {
        self.phases.iter().map(|p| p.visible_io_secs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let w = Workload::checkpoint(64, 1024, 5, 30.0);
        assert_eq!(w.direction, Direction::Write);
        let r = Workload::analysis(64, 1024, 5, 30.0);
        assert_eq!(r.direction, Direction::Read);
        assert_eq!(r.ranks, 64);
    }

    #[test]
    fn run_config_builders() {
        let c = RunConfig::async_io().with_contention(0.5).with_buffer_depth(4);
        assert_eq!(c.mode, IoMode::Async);
        assert_eq!(c.contention, 0.5);
        assert_eq!(c.buffer_depth, 4);
    }

    #[test]
    #[should_panic(expected = "contention")]
    fn invalid_contention_rejected() {
        RunConfig::sync().with_contention(0.0);
    }

    #[test]
    fn result_bandwidth_math() {
        let r = RunResult {
            phases: vec![
                PhaseMeasure {
                    t_comp: 1.0,
                    visible_io_secs: 2.0,
                    overhead_secs: 0.0,
                    background_io_secs: 2.0,
                },
                PhaseMeasure {
                    t_comp: 1.0,
                    visible_io_secs: 1.0,
                    overhead_secs: 0.0,
                    background_io_secs: 1.0,
                },
            ],
            wall_secs: 5.0,
            phase_bytes: 100,
        };
        assert_eq!(r.phase_bandwidths(), vec![50.0, 100.0]);
        assert_eq!(r.peak_bandwidth(), 100.0);
        assert_eq!(r.mean_bandwidth(), 75.0);
        assert_eq!(r.total_visible_io(), 3.0);
    }
}
