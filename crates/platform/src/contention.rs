//! Full-system-level contention.
//!
//! §V-C: node-level contention is avoided by whole-node batch allocation,
//! but the parallel file system and interconnect are shared by every job on
//! the machine, so the *server-side* bandwidth a job observes varies across
//! runs and days. The paper handles this by running every configuration at
//! least 5 times across multiple days; Fig. 8 plots the resulting spread
//! and shows asynchronous I/O hides it (the transactional copy goes to
//! unshared node-local memory).
//!
//! We model the external load `L` on the storage system as a lognormal
//! random variable and squeeze the job's server-side capacity by
//! `1 / (1 + L)`. A lognormal load is the standard heavy-tailed choice:
//! most windows are quiet, a few are badly congested.

use desim::SimRng;

/// Seeded lognormal capacity-squeeze model.
#[derive(Clone, Debug)]
pub struct ContentionModel {
    /// Location of `ln(load)`. `exp(mu)` is the median external load
    /// relative to the job's own demand.
    pub mu: f64,
    /// Scale of `ln(load)`; larger means heavier congestion tails.
    pub sigma: f64,
}

impl ContentionModel {
    /// Lognormal load with location `mu` and scale `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "negative sigma");
        ContentionModel { mu, sigma }
    }

    /// A machine with no external load (unit capacity factor, always).
    pub fn quiet() -> Self {
        ContentionModel {
            mu: f64::NEG_INFINITY,
            sigma: 0.0,
        }
    }

    /// Draw the capacity factor for one run/day: a value in `(0, 1]`.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        if self.mu == f64::NEG_INFINITY {
            return 1.0;
        }
        let load = rng.lognormal(self.mu, self.sigma);
        1.0 / (1.0 + load)
    }

    /// The capacity factor under the median external load.
    pub fn median_factor(&self) -> f64 {
        if self.mu == f64::NEG_INFINITY {
            return 1.0;
        }
        1.0 / (1.0 + self.mu.exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_is_always_one() {
        let m = ContentionModel::quiet();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), 1.0);
        }
        assert_eq!(m.median_factor(), 1.0);
    }

    #[test]
    fn samples_in_unit_interval() {
        let m = ContentionModel::new(-1.0, 0.8);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f = m.sample(&mut rng);
            assert!(f > 0.0 && f <= 1.0, "factor {f}");
        }
    }

    #[test]
    fn sample_median_tracks_analytic_median() {
        let m = ContentionModel::new(-1.39, 0.8); // median load ~0.25
        let mut rng = SimRng::seed_from_u64(3);
        let mut xs: Vec<f64> = (0..50_001).map(|_| m.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!(
            (median - m.median_factor()).abs() < 0.02,
            "median {median} vs {}",
            m.median_factor()
        );
    }

    #[test]
    fn heavier_sigma_means_wider_spread() {
        let narrow = ContentionModel::new(-1.39, 0.2);
        let wide = ContentionModel::new(-1.39, 1.2);
        let spread = |m: &ContentionModel, seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut stats = desim::OnlineStats::new();
            for _ in 0..20_000 {
                stats.push(m.sample(&mut rng));
            }
            stats.std_dev()
        };
        assert!(spread(&wide, 5) > 2.0 * spread(&narrow, 5));
    }

    #[test]
    fn deterministic_given_seed() {
        let m = ContentionModel::new(-1.0, 0.8);
        let a: Vec<f64> = {
            let mut rng = SimRng::seed_from_u64(7);
            (0..10).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = SimRng::seed_from_u64(7);
            (0..10).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
