//! CPU↔GPU transfer model.
//!
//! §III-B1: "On some systems the GPUs are connected to the CPUs using
//! PCI-E 3.0 connections which have a theoretical upper limit of
//! 15.75 GB/s. The interconnect on Summit, NVLink 2.0, has a theoretical
//! upper limit of 50 GB/s. [...] the runtime will incur additional overhead
//! for creating a transaction copy when not pinning the host memory pages.
//! [...] the memory copy cost is amortized for data sizes greater than
//! 10 MB, and with pinned host memory the peak bandwidth is close to the
//! theoretical maximum."
//!
//! The model charges a DMA setup cost per transfer and, for pageable
//! (unpinned) host memory, routes the data through a bounce buffer at
//! roughly half the link efficiency.

use crate::units::GB_S;
use desim::SimDuration;

/// Which physical link connects CPU and GPU memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GpuLinkKind {
    /// PCI Express 3.0 x16: 15.75 GB/s theoretical.
    Pcie3,
    /// NVLink 2.0 (Summit's POWER9↔V100 bricks): 50 GB/s theoretical.
    NvLink2,
}

impl GpuLinkKind {
    /// Theoretical peak bandwidth of the link (bytes/s).
    pub fn theoretical_bw(self) -> f64 {
        match self {
            GpuLinkKind::Pcie3 => 15.75 * GB_S,
            GpuLinkKind::NvLink2 => 50.0 * GB_S,
        }
    }
}

/// Transfer-cost model for one CPU↔GPU link.
#[derive(Clone, Debug)]
pub struct GpuLinkModel {
    /// The physical link.
    pub kind: GpuLinkKind,
    /// Fraction of theoretical peak achievable with pinned host memory.
    pub pinned_efficiency: f64,
    /// Fraction of theoretical peak achievable with pageable host memory
    /// (the driver stages through an internal pinned bounce buffer).
    pub pageable_efficiency: f64,
    /// Per-transfer DMA programming cost, seconds.
    pub dma_setup: f64,
}

impl GpuLinkModel {
    /// Default efficiencies and DMA setup cost for the link.
    pub fn new(kind: GpuLinkKind) -> Self {
        GpuLinkModel {
            kind,
            pinned_efficiency: 0.93,
            pageable_efficiency: 0.45,
            dma_setup: 20e-6,
        }
    }

    /// Achievable bandwidth (bytes/s) for the given host-memory mode.
    pub fn achievable_bw(&self, pinned: bool) -> f64 {
        let eff = if pinned {
            self.pinned_efficiency
        } else {
            self.pageable_efficiency
        };
        self.kind.theoretical_bw() * eff
    }

    /// Wall time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: u64, pinned: bool) -> f64 {
        self.dma_setup + bytes as f64 / self.achievable_bw(pinned)
    }

    /// [`Self::transfer_time`] as a [`SimDuration`].
    pub fn transfer_duration(&self, bytes: u64, pinned: bool) -> SimDuration {
        SimDuration::from_secs_f64(self.transfer_time(bytes, pinned))
    }

    /// Effective bandwidth including setup cost (the quantity the paper's
    /// micro-benchmark plots): `bytes / transfer_time`.
    pub fn effective_bw(&self, bytes: u64, pinned: bool) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.transfer_time(bytes, pinned)
    }

    /// True when setup cost is amortized: effective bandwidth within
    /// `tolerance` of the achievable link bandwidth.
    pub fn is_amortized(&self, bytes: u64, pinned: bool, tolerance: f64) -> bool {
        self.effective_bw(bytes, pinned) >= self.achievable_bw(pinned) * (1.0 - tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{GB_S, MIB};

    #[test]
    fn theoretical_limits_match_paper() {
        assert!((GpuLinkKind::Pcie3.theoretical_bw() - 15.75 * GB_S).abs() < 1.0);
        assert!((GpuLinkKind::NvLink2.theoretical_bw() - 50.0 * GB_S).abs() < 1.0);
    }

    #[test]
    fn pinned_close_to_theoretical() {
        // §III-B1: "with pinned host memory the peak bandwidth is close to
        // the theoretical maximum".
        let link = GpuLinkModel::new(GpuLinkKind::NvLink2);
        let bw = link.effective_bw(100 * MIB, true);
        assert!(bw > 0.9 * GpuLinkKind::NvLink2.theoretical_bw());
    }

    #[test]
    fn pageable_is_much_slower() {
        let link = GpuLinkModel::new(GpuLinkKind::Pcie3);
        let pinned = link.effective_bw(100 * MIB, true);
        let pageable = link.effective_bw(100 * MIB, false);
        assert!(pageable < pinned / 1.8);
    }

    #[test]
    fn amortized_above_10_mb() {
        // §III-B1: "the memory copy cost is amortized for data sizes greater
        // than 10 MB".
        let link = GpuLinkModel::new(GpuLinkKind::NvLink2);
        assert!(link.is_amortized(10_000_000, true, 0.1));
        assert!(!link.is_amortized(100_000, true, 0.1));
    }

    #[test]
    fn nvlink_beats_pcie() {
        let nv = GpuLinkModel::new(GpuLinkKind::NvLink2);
        let pcie = GpuLinkModel::new(GpuLinkKind::Pcie3);
        assert!(nv.transfer_time(100 * MIB, true) < pcie.transfer_time(100 * MIB, true));
    }

    #[test]
    fn zero_bytes_costs_setup_only() {
        let link = GpuLinkModel::new(GpuLinkKind::Pcie3);
        assert!((link.transfer_time(0, true) - link.dma_setup).abs() < 1e-12);
        assert_eq!(link.effective_bw(0, true), 0.0);
    }
}
