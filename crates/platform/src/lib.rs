#![warn(missing_docs)]
//! # platform — calibrated HPC system models
//!
//! Models of the two machines the paper evaluates on, built from the
//! hardware facts in §IV-A and calibrated so the *shapes* of the paper's
//! figures reproduce (saturation points, weak/strong-scaling slopes,
//! variability). All bandwidths are bytes/second, all sizes bytes, all
//! times seconds unless a `desim` type says otherwise.
//!
//! - [`memcpy`] — host DRAM copy cost (the *transactional overhead* of the
//!   async VOL): bandwidth ramps with transfer size and is constant above
//!   32 MiB, exactly the micro-benchmark observation in §III-B1.
//! - [`gpulink`] — CPU↔GPU transfers: PCIe 3.0 (15.75 GB/s theoretical) vs
//!   NVLink 2.0 (50 GB/s), pinned vs pageable host memory, DMA setup cost
//!   amortized above ~10 MB.
//! - [`nvme`] — node-local SSD (Summit's 1.6 TB NVMe, Cori's burst buffer).
//! - [`pfs`] — parallel file system models: [`pfs::GpfsModel`] (Summit's
//!   Alpine: reactive allocation, no user striping control) and
//!   [`pfs::LustreModel`] (Cori: 72-OST striping per NERSC best practice).
//! - [`contention`] — full-system-level interference as a seeded lognormal
//!   capacity squeeze; node-local resources are unaffected (batch
//!   schedulers allocate whole nodes).
//! - [`system`] — [`system::SystemConfig`] presets: [`system::summit`] and
//!   [`system::cori_haswell`].

pub mod contention;
pub mod gpulink;
pub mod memcpy;
pub mod nvme;
pub mod pfs;
pub mod system;
pub mod units;

pub use contention::ContentionModel;
pub use gpulink::{GpuLinkKind, GpuLinkModel};
pub use memcpy::MemcpyModel;
pub use nvme::NvmeModel;
pub use pfs::{FileSystemModel, GpfsModel, IoPattern, LustreModel};
pub use system::{cori_haswell, summit, SystemConfig};
