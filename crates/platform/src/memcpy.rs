//! Host DRAM copy model — the async VOL's *transactional overhead*.
//!
//! The paper's micro-benchmark (§III-B1) found memcpy bandwidth to be
//! "constant after 32 MB": small copies pay per-call overhead and miss the
//! streaming regime; large copies run at the node's sustained copy
//! bandwidth. We model effective bandwidth with a saturating curve
//!
//! ```text
//! bw(s) = peak · s / (s + s_half)
//! ```
//!
//! plus a fixed per-call latency. `s_half` is chosen so the curve is within
//! a few percent of peak at 32 MiB, matching the observation.
//!
//! The node's DRAM bus is shared: when every rank on a node snapshots its
//! write buffer concurrently, each gets `peak / ranks_per_node`. The model
//! exposes both the single-copy cost and the node-aggregate view (the
//! quantity that makes async aggregate bandwidth scale linearly with nodes
//! in Fig. 3).

use desim::SimDuration;

/// Saturating-bandwidth model of `memcpy` between two host buffers.
#[derive(Clone, Debug)]
pub struct MemcpyModel {
    /// Sustained streaming copy bandwidth of one process (bytes/s).
    pub peak_bw: f64,
    /// Transfer size at which effective bandwidth is half of peak (bytes).
    pub half_size: f64,
    /// Fixed per-call cost (allocator touch, cache warmup), seconds.
    pub latency: f64,
}

impl MemcpyModel {
    /// Saturating copy model with the given peak, half-size, and latency.
    pub fn new(peak_bw: f64, half_size: f64, latency: f64) -> Self {
        assert!(peak_bw > 0.0 && half_size >= 0.0 && latency >= 0.0);
        MemcpyModel {
            peak_bw,
            half_size,
            latency,
        }
    }

    /// Effective bandwidth for a single copy of `bytes` (bytes/s).
    pub fn effective_bw(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return self.peak_bw;
        }
        let s = bytes as f64;
        self.peak_bw * s / (s + self.half_size)
    }

    /// Wall time for one copy of `bytes`, optionally sharing the DRAM bus
    /// with `concurrent` equal copies (1 = alone).
    pub fn copy_time_shared(&self, bytes: u64, concurrent: u32) -> f64 {
        assert!(concurrent >= 1, "at least one copier");
        if bytes == 0 {
            return self.latency;
        }
        let bw = self.effective_bw(bytes) / concurrent as f64;
        self.latency + bytes as f64 / bw
    }

    /// Wall time for one copy of `bytes` with the bus to itself.
    pub fn copy_time(&self, bytes: u64) -> f64 {
        self.copy_time_shared(bytes, 1)
    }

    /// The same as [`copy_time`](Self::copy_time), as a [`SimDuration`].
    pub fn copy_duration(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.copy_time(bytes))
    }

    /// Check the paper's observation: bandwidth at `bytes` is within
    /// `tolerance` (fraction) of peak.
    pub fn is_saturated(&self, bytes: u64, tolerance: f64) -> bool {
        self.effective_bw(bytes) >= self.peak_bw * (1.0 - tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{GB_S, KIB, MIB};

    fn model() -> MemcpyModel {
        // Calibration used by the Summit preset.
        MemcpyModel::new(10.0 * GB_S, (MIB / 2) as f64, 2e-6)
    }

    #[test]
    fn bandwidth_is_monotone_in_size() {
        let m = model();
        let mut prev = 0.0;
        for exp in 10..32 {
            let bw = m.effective_bw(1u64 << exp);
            assert!(bw > prev, "bw must increase with size");
            prev = bw;
        }
    }

    #[test]
    fn constant_after_32_mib() {
        // The §III-B1 observation: within 2% of peak at and beyond 32 MiB.
        let m = model();
        assert!(m.is_saturated(32 * MIB, 0.02));
        assert!(m.is_saturated(256 * MIB, 0.02));
        assert!(!m.is_saturated(256 * KIB, 0.02));
    }

    #[test]
    fn copy_time_includes_latency() {
        let m = model();
        assert_eq!(m.copy_time(0), m.latency);
        let t = m.copy_time(32 * MIB);
        let ideal = (32 * MIB) as f64 / m.peak_bw;
        assert!(t > ideal);
        assert!(t < ideal * 1.1);
    }

    #[test]
    fn sharing_divides_bandwidth() {
        let m = model();
        let alone = m.copy_time(32 * MIB) - m.latency;
        let shared = m.copy_time_shared(32 * MIB, 6) - m.latency;
        assert!((shared / alone - 6.0).abs() < 1e-9);
    }

    #[test]
    fn duration_conversion() {
        let m = model();
        let d = m.copy_duration(32 * MIB);
        assert!((d.as_secs_f64() - m.copy_time(32 * MIB)).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_concurrency_panics() {
        model().copy_time_shared(MIB, 0);
    }
}
