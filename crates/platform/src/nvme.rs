//! Node-local SSD model.
//!
//! Summit compute nodes carry a 1.6 TB NVMe SSD; Cori offers an SSD burst
//! buffer. The async VOL can stage snapshots here instead of DRAM when the
//! working set is too large to double-buffer in memory. Reads and writes
//! have different sustained bandwidths, and every operation pays a fixed
//! submission latency.

use desim::SimDuration;

/// Bandwidth/latency model of a node-local NVMe device.
#[derive(Clone, Debug)]
pub struct NvmeModel {
    /// Sustained sequential write bandwidth (bytes/s).
    pub write_bw: f64,
    /// Sustained sequential read bandwidth (bytes/s).
    pub read_bw: f64,
    /// Per-operation submission + completion latency (seconds).
    pub latency: f64,
    /// Device capacity (bytes).
    pub capacity: u64,
}

impl NvmeModel {
    /// Device with the given sustained bandwidths, latency, and capacity.
    pub fn new(write_bw: f64, read_bw: f64, latency: f64, capacity: u64) -> Self {
        assert!(write_bw > 0.0 && read_bw > 0.0 && latency >= 0.0);
        NvmeModel {
            write_bw,
            read_bw,
            latency,
            capacity,
        }
    }

    /// Seconds to write `bytes` sequentially.
    pub fn write_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.write_bw
    }

    /// Seconds to read `bytes` sequentially.
    pub fn read_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.read_bw
    }

    /// [`Self::write_time`] as a [`SimDuration`].
    pub fn write_duration(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.write_time(bytes))
    }

    /// [`Self::read_time`] as a [`SimDuration`].
    pub fn read_duration(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.read_time(bytes))
    }

    /// Whether `bytes` fits on the device.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{GB_S, GIB, TIB};

    fn summit_nvme() -> NvmeModel {
        NvmeModel::new(2.1 * GB_S, 5.5 * GB_S, 80e-6, 1600 * (TIB / 1024))
    }

    #[test]
    fn read_faster_than_write() {
        let d = summit_nvme();
        assert!(d.read_time(GIB) < d.write_time(GIB));
    }

    #[test]
    fn latency_dominates_tiny_ops() {
        let d = summit_nvme();
        let t = d.write_time(4096);
        assert!(t < d.latency * 1.1);
        assert!(t >= d.latency);
    }

    #[test]
    fn capacity_check() {
        let d = summit_nvme();
        assert!(d.fits(GIB));
        assert!(!d.fits(u64::MAX));
    }

    #[test]
    fn durations_match_times() {
        let d = summit_nvme();
        assert!((d.write_duration(GIB).as_secs_f64() - d.write_time(GIB)).abs() < 1e-9);
        assert!((d.read_duration(GIB).as_secs_f64() - d.read_time(GIB)).abs() < 1e-9);
    }
}
