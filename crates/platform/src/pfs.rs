//! Parallel file system models: GPFS (Summit/Alpine) and Lustre (Cori).
//!
//! A collective I/O phase on `ranks` MPI ranks spread over `nodes` nodes,
//! each moving `per_rank_bytes`, costs
//!
//! ```text
//! t_io = t_meta(ranks) + total_bytes / min(client_term, server_term)
//!
//! client_term = nodes · node_bw · client_eff(per_rank_bytes)
//! server_term = job_capacity · server_eff(per_rank_bytes) · pattern · contention
//! ```
//!
//! - `client_eff(s) = s / (s + s_half_client)` captures the client-side
//!   penalty of small requests (RPC and buffering overheads dominate).
//! - `server_eff` is the same shape with a milder constant: servers also
//!   dislike small requests but aggregate across clients.
//! - `t_meta` is the metadata/allocation cost of opening the file and
//!   creating datasets. On GPFS it grows as `√ranks` — Alpine "is tuned to
//!   react to the workload" and re-allocates storage resources per job, so
//!   strong scaling (more ranks, smaller requests) *degrades* aggregate
//!   bandwidth, as the paper observes for Castro/Nyx/EQSIM on Summit. On
//!   Lustre the user pins striping up front (72 OSTs per NERSC best
//!   practice) and metadata grows only logarithmically, so sync bandwidth
//!   *rises* until the OSTs saturate, as observed for Castro on Cori.
//!
//! The two `min` arms produce the weak-scaling saturation of Fig. 3: with
//! few nodes the client term (linear in nodes) binds; past the crossover
//! the server term flat-lines the curve. The crossovers are calibrated to
//! the paper: 768 ranks / 128 nodes on Summit, 1024 ranks / 32 nodes on
//! Cori-Haswell for the VPIC-IO 32 MiB/rank workload.

use desim::SimDuration;

/// Direction of a collective transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoPattern {
    /// Data moves to the file system.
    Write,
    /// Data moves from the file system.
    Read,
}

/// Common interface over the two parallel file system models.
pub trait FileSystemModel {
    /// Human-readable model name.
    fn name(&self) -> &str;

    /// Peak capacity of the storage system (bytes/s) — the headline spec.
    fn peak_capacity(&self) -> f64;

    /// Server-side bandwidth available to one job for this request shape,
    /// already scaled by `contention` in `(0, 1]`.
    fn server_term(&self, per_rank_bytes: u64, pattern: IoPattern, contention: f64) -> f64;

    /// Client-side injection bandwidth for this request shape.
    fn client_term(&self, nodes: u32, per_rank_bytes: u64) -> f64;

    /// Metadata/open/allocation time for one collective phase (seconds).
    fn metadata_time(&self, ranks: u32) -> f64;

    /// Per-node injection cap (bytes/s) — used as the per-flow cap when
    /// driving the file system as a `desim` processor-sharing resource.
    fn node_bandwidth(&self) -> f64;

    /// Aggregate bandwidth achieved by the transfer portion of a collective
    /// phase (bytes/s), excluding metadata time.
    fn aggregate_bw(
        &self,
        nodes: u32,
        per_rank_bytes: u64,
        pattern: IoPattern,
        contention: f64,
    ) -> f64 {
        assert!(nodes > 0, "at least one node");
        self.client_term(nodes, per_rank_bytes)
            .min(self.server_term(per_rank_bytes, pattern, contention))
    }

    /// Wall time of a full collective I/O phase.
    fn io_time(
        &self,
        nodes: u32,
        ranks: u32,
        per_rank_bytes: u64,
        pattern: IoPattern,
        contention: f64,
    ) -> f64 {
        assert!(ranks >= nodes, "ranks must cover nodes");
        let total = per_rank_bytes as f64 * ranks as f64;
        let bw = self.aggregate_bw(nodes, per_rank_bytes, pattern, contention);
        self.metadata_time(ranks) + total / bw
    }

    /// The same as [`io_time`](Self::io_time) as a [`SimDuration`].
    fn io_duration(
        &self,
        nodes: u32,
        ranks: u32,
        per_rank_bytes: u64,
        pattern: IoPattern,
        contention: f64,
    ) -> SimDuration {
        SimDuration::from_secs_f64(self.io_time(nodes, ranks, per_rank_bytes, pattern, contention))
    }
}

fn eff(s: f64, half: f64) -> f64 {
    s / (s + half)
}

/// IBM Spectrum Scale (GPFS) as deployed on Summit's Alpine file system.
#[derive(Clone, Debug)]
pub struct GpfsModel {
    /// Per-node injection bandwidth (bytes/s).
    pub node_bw: f64,
    /// Single-job share of the file system for writes (bytes/s).
    pub job_capacity: f64,
    /// Full-system peak (the 2.5 TB/s headline), for reporting.
    pub peak: f64,
    /// Read-over-write bandwidth advantage.
    pub read_factor: f64,
    /// Half-efficiency request size, client side (bytes).
    pub client_half: f64,
    /// Half-efficiency request size, server side (bytes).
    pub server_half: f64,
    /// Base collective open/create cost (seconds).
    pub meta_base: f64,
    /// Reactive-allocation metadata cost coefficient (× √ranks seconds).
    pub meta_per_sqrt_rank: f64,
}

impl FileSystemModel for GpfsModel {
    fn name(&self) -> &str {
        "GPFS (Alpine)"
    }

    fn peak_capacity(&self) -> f64 {
        self.peak
    }

    fn server_term(&self, per_rank_bytes: u64, pattern: IoPattern, contention: f64) -> f64 {
        assert!(contention > 0.0 && contention <= 1.0, "contention in (0,1]");
        let dir = match pattern {
            IoPattern::Write => 1.0,
            IoPattern::Read => self.read_factor,
        };
        self.job_capacity * eff(per_rank_bytes as f64, self.server_half) * dir * contention
    }

    fn client_term(&self, nodes: u32, per_rank_bytes: u64) -> f64 {
        nodes as f64 * self.node_bw * eff(per_rank_bytes as f64, self.client_half)
    }

    fn metadata_time(&self, ranks: u32) -> f64 {
        self.meta_base + self.meta_per_sqrt_rank * (ranks as f64).sqrt()
    }

    fn node_bandwidth(&self) -> f64 {
        self.node_bw
    }
}

/// Lustre as deployed on Cori's scratch file system, with the stripe count
/// pinned to NERSC's `stripe_large` best practice (72 OSTs).
#[derive(Clone, Debug)]
pub struct LustreModel {
    /// Per-node injection bandwidth over the Aries network (bytes/s).
    pub node_bw: f64,
    /// Number of object storage targets the file is striped over.
    pub stripe_count: u32,
    /// Sustained bandwidth of one OST (bytes/s).
    pub ost_bw: f64,
    /// Full-system peak (the 700 GB/s headline), for reporting.
    pub peak: f64,
    /// Read-over-write bandwidth advantage.
    pub read_factor: f64,
    /// Half-efficiency request size, client side (bytes).
    pub client_half: f64,
    /// Half-efficiency request size, server side (bytes).
    pub server_half: f64,
    /// Base collective open/create cost (seconds).
    pub meta_base: f64,
    /// Metadata cost coefficient (× log₂ranks seconds).
    pub meta_per_log_rank: f64,
}

impl LustreModel {
    /// Server bandwidth from striping: `stripe_count × ost_bw`.
    pub fn stripe_capacity(&self) -> f64 {
        self.stripe_count as f64 * self.ost_bw
    }
}

impl FileSystemModel for LustreModel {
    fn name(&self) -> &str {
        "Lustre"
    }

    fn peak_capacity(&self) -> f64 {
        self.peak
    }

    fn server_term(&self, per_rank_bytes: u64, pattern: IoPattern, contention: f64) -> f64 {
        assert!(contention > 0.0 && contention <= 1.0, "contention in (0,1]");
        let dir = match pattern {
            IoPattern::Write => 1.0,
            IoPattern::Read => self.read_factor,
        };
        self.stripe_capacity() * eff(per_rank_bytes as f64, self.server_half) * dir * contention
    }

    fn client_term(&self, nodes: u32, per_rank_bytes: u64) -> f64 {
        nodes as f64 * self.node_bw * eff(per_rank_bytes as f64, self.client_half)
    }

    fn metadata_time(&self, ranks: u32) -> f64 {
        self.meta_base + self.meta_per_log_rank * (ranks.max(2) as f64).log2()
    }

    fn node_bandwidth(&self) -> f64 {
        self.node_bw
    }
}

/// Either file system model, so a [`crate::system::SystemConfig`] can hold
/// one without generics at every call site.
#[derive(Clone, Debug)]
pub enum Pfs {
    /// IBM Spectrum Scale (Summit's Alpine).
    Gpfs(GpfsModel),
    /// Lustre (Cori's scratch).
    Lustre(LustreModel),
}

impl Pfs {
    /// The GPFS model, when this is one.
    pub fn gpfs(&self) -> Option<&GpfsModel> {
        match self {
            Pfs::Gpfs(m) => Some(m),
            Pfs::Lustre(_) => None,
        }
    }

    /// The Lustre model, when this is one.
    pub fn lustre(&self) -> Option<&LustreModel> {
        match self {
            Pfs::Lustre(m) => Some(m),
            Pfs::Gpfs(_) => None,
        }
    }
}

impl FileSystemModel for Pfs {
    fn name(&self) -> &str {
        match self {
            Pfs::Gpfs(m) => m.name(),
            Pfs::Lustre(m) => m.name(),
        }
    }

    fn peak_capacity(&self) -> f64 {
        match self {
            Pfs::Gpfs(m) => m.peak_capacity(),
            Pfs::Lustre(m) => m.peak_capacity(),
        }
    }

    fn server_term(&self, per_rank_bytes: u64, pattern: IoPattern, contention: f64) -> f64 {
        match self {
            Pfs::Gpfs(m) => m.server_term(per_rank_bytes, pattern, contention),
            Pfs::Lustre(m) => m.server_term(per_rank_bytes, pattern, contention),
        }
    }

    fn client_term(&self, nodes: u32, per_rank_bytes: u64) -> f64 {
        match self {
            Pfs::Gpfs(m) => m.client_term(nodes, per_rank_bytes),
            Pfs::Lustre(m) => m.client_term(nodes, per_rank_bytes),
        }
    }

    fn metadata_time(&self, ranks: u32) -> f64 {
        match self {
            Pfs::Gpfs(m) => m.metadata_time(ranks),
            Pfs::Lustre(m) => m.metadata_time(ranks),
        }
    }

    fn node_bandwidth(&self) -> f64 {
        match self {
            Pfs::Gpfs(m) => m.node_bandwidth(),
            Pfs::Lustre(m) => m.node_bandwidth(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{cori_haswell, summit};
    use crate::units::{GB_S, MIB};

    #[test]
    fn gpfs_weak_scaling_saturates_near_128_nodes() {
        // Fig. 3a calibration: VPIC-IO 32 MiB/rank, 6 ranks/node. Sync
        // aggregate bandwidth saturates around 768 ranks = 128 nodes.
        let sys = summit();
        let fs = &sys.pfs;
        let bw_64 = fs.aggregate_bw(64, 32 * MIB, IoPattern::Write, 1.0);
        let bw_128 = fs.aggregate_bw(128, 32 * MIB, IoPattern::Write, 1.0);
        let bw_512 = fs.aggregate_bw(512, 32 * MIB, IoPattern::Write, 1.0);
        let bw_2048 = fs.aggregate_bw(2048, 32 * MIB, IoPattern::Write, 1.0);
        // Below the knee: near-linear growth.
        assert!(bw_128 / bw_64 > 1.7, "{bw_128} vs {bw_64}");
        // Past the knee: flat.
        assert!(bw_2048 / bw_512 < 1.05, "{bw_2048} vs {bw_512}");
    }

    #[test]
    fn lustre_weak_scaling_saturates_near_32_nodes() {
        // Fig. 3b calibration: 32 ranks/node on Cori, saturation at
        // 1024 ranks = 32 nodes.
        let sys = cori_haswell();
        let fs = &sys.pfs;
        let bw_16 = fs.aggregate_bw(16, 32 * MIB, IoPattern::Write, 1.0);
        let bw_32 = fs.aggregate_bw(32, 32 * MIB, IoPattern::Write, 1.0);
        let bw_128 = fs.aggregate_bw(128, 32 * MIB, IoPattern::Write, 1.0);
        assert!(bw_32 / bw_16 > 1.6, "{bw_32} vs {bw_16}");
        assert!(bw_128 / bw_32 < 1.05, "{bw_128} vs {bw_32}");
    }

    #[test]
    fn small_requests_hurt_lustre_more_than_large() {
        let sys = cori_haswell();
        let fs = &sys.pfs;
        let small = fs.aggregate_bw(32, 256 * 1024, IoPattern::Write, 1.0);
        let large = fs.aggregate_bw(32, 32 * MIB, IoPattern::Write, 1.0);
        assert!(small < large / 2.0);
    }

    #[test]
    fn gpfs_strong_scaling_bandwidth_decreases() {
        // Fig. 4c shape: fixed total data, more ranks => lower sync
        // aggregate bandwidth on Summit (metadata + small requests).
        let sys = summit();
        let fs = &sys.pfs;
        let total = 48u64 * 1024 * MIB; // 48 GiB plotfile
        let mut prev_bw = f64::INFINITY;
        // Start past the client-bound knee (128 nodes): the paper's smallest
        // Castro/Nyx configs on Summit are already server-bound.
        for ranks in [768u32, 1536, 3072, 6144, 12288] {
            let nodes = ranks / 6;
            let per_rank = total / ranks as u64;
            let t = fs.io_time(nodes, ranks, per_rank, IoPattern::Write, 1.0);
            let bw = total as f64 / t;
            assert!(bw < prev_bw, "ranks={ranks}: {bw} !< {prev_bw}");
            prev_bw = bw;
        }
    }

    #[test]
    fn lustre_strong_scaling_rises_then_saturates() {
        // Fig. 4d shape: Castro on Cori — sync bandwidth increases with
        // ranks until ~2048 ranks, then flattens.
        let sys = cori_haswell();
        let fs = &sys.pfs;
        let total = 24u64 * 1024 * MIB;
        let bw_at = |ranks: u32| {
            let nodes = ranks / 32;
            let per_rank = total / ranks as u64;
            let t = fs.io_time(nodes, ranks, per_rank, IoPattern::Write, 1.0);
            total as f64 / t
        };
        assert!(bw_at(1024) > bw_at(256) * 1.5);
        let late = bw_at(4096) / bw_at(2048);
        assert!(late < 1.15, "should be ~flat past 2048 ranks, ratio {late}");
    }

    #[test]
    fn reads_are_faster_than_writes_when_server_bound() {
        let sys = summit();
        let fs = &sys.pfs;
        // Server-bound regime (past the knee): the read factor shows.
        let w = fs.aggregate_bw(2048, 32 * MIB, IoPattern::Write, 1.0);
        let r = fs.aggregate_bw(2048, 32 * MIB, IoPattern::Read, 1.0);
        assert!(r > 1.2 * w);
        // Client-bound regime: direction cannot matter.
        let w = fs.aggregate_bw(4, 32 * MIB, IoPattern::Write, 1.0);
        let r = fs.aggregate_bw(4, 32 * MIB, IoPattern::Read, 1.0);
        assert_eq!(w, r);
    }

    #[test]
    fn contention_scales_server_term_only() {
        let sys = summit();
        let fs = &sys.pfs;
        // Client-bound regime: contention halving barely matters.
        let free = fs.aggregate_bw(4, 32 * MIB, IoPattern::Write, 1.0);
        let busy = fs.aggregate_bw(4, 32 * MIB, IoPattern::Write, 0.5);
        assert!((free - busy).abs() < 1e-6);
        // Server-bound regime: contention halves throughput.
        let free = fs.aggregate_bw(2048, 32 * MIB, IoPattern::Write, 1.0);
        let busy = fs.aggregate_bw(2048, 32 * MIB, IoPattern::Write, 0.5);
        assert!((busy / free - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "contention in (0,1]")]
    fn contention_must_be_positive() {
        let sys = summit();
        sys.pfs.server_term(MIB, IoPattern::Write, 0.0);
    }

    #[test]
    fn metadata_grows_faster_on_gpfs() {
        let s = summit();
        let c = cori_haswell();
        let g_ratio = s.pfs.metadata_time(8192) / s.pfs.metadata_time(128);
        let l_ratio = c.pfs.metadata_time(8192) / c.pfs.metadata_time(128);
        assert!(g_ratio > l_ratio);
    }

    #[test]
    fn stripe_capacity_is_72_osts() {
        let sys = cori_haswell();
        let fs = sys.pfs.lustre().expect("cori uses lustre");
        assert_eq!(fs.stripe_count, 72);
        assert!(fs.stripe_capacity() < fs.peak_capacity());
        assert!(fs.stripe_capacity() > 50.0 * GB_S);
    }

    #[test]
    fn io_time_is_positive_and_monotone_in_size() {
        let sys = summit();
        let fs = &sys.pfs;
        let t1 = fs.io_time(16, 96, MIB, IoPattern::Write, 1.0);
        let t2 = fs.io_time(16, 96, 64 * MIB, IoPattern::Write, 1.0);
        assert!(t1 > 0.0);
        assert!(t2 > t1);
    }
}
