//! Whole-machine configurations: Summit and Cori-Haswell presets.
//!
//! All constants trace to §IV-A of the paper or to the calibration targets
//! in DESIGN.md (the figure shapes). The presets are plain values — clone
//! one and tweak fields to model a hypothetical machine.

use crate::contention::ContentionModel;
use crate::gpulink::{GpuLinkKind, GpuLinkModel};
use crate::memcpy::MemcpyModel;
use crate::nvme::NvmeModel;
use crate::pfs::{GpfsModel, LustreModel, Pfs};
use crate::units::{GB_S, KIB, MIB, TB_S};

/// A complete machine model.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Human-readable machine name.
    pub name: &'static str,
    /// Number of compute nodes in the full machine.
    pub total_nodes: u32,
    /// MPI ranks the paper places per node (6 on Summit, 32 on Cori).
    pub ranks_per_node: u32,
    /// Host DRAM copy model (per-process view).
    pub memcpy: MemcpyModel,
    /// CPU↔GPU link, when the machine has GPUs.
    pub gpu: Option<GpuLinkModel>,
    /// Node-local SSD, when present.
    pub nvme: Option<NvmeModel>,
    /// The parallel file system.
    pub pfs: Pfs,
    /// Full-system contention on the shared storage.
    pub contention: ContentionModel,
}

impl SystemConfig {
    /// Nodes needed for `ranks` at this machine's ranks-per-node density
    /// (rounded up).
    pub fn nodes_for_ranks(&self, ranks: u32) -> u32 {
        assert!(ranks > 0, "at least one rank");
        ranks.div_ceil(self.ranks_per_node)
    }

    /// Aggregate node-local snapshot bandwidth of a job on `nodes` nodes:
    /// every node copies independently at its DRAM bandwidth, so this is
    /// linear in nodes — the reason asynchronous aggregate bandwidth keeps
    /// scaling in Fig. 3 after synchronous I/O saturates.
    pub fn snapshot_bw(&self, nodes: u32) -> f64 {
        nodes as f64 * self.memcpy.peak_bw
    }
}

/// Summit at OLCF: 4608 nodes, 2×22-core POWER9 + 6 V100 per node,
/// NVLink 2.0, 1.6 TB node-local NVMe, Alpine GPFS at 2.5 TB/s peak.
/// The paper runs 6 ranks per node (one per GPU).
pub fn summit() -> SystemConfig {
    SystemConfig {
        name: "Summit",
        total_nodes: 4608,
        ranks_per_node: 6,
        memcpy: MemcpyModel::new(10.0 * GB_S, 64.0 * KIB as f64, 2e-6),
        gpu: Some(GpuLinkModel::new(GpuLinkKind::NvLink2)),
        nvme: Some(NvmeModel::new(
            2.1 * GB_S,
            5.5 * GB_S,
            80e-6,
            1_600_000_000_000,
        )),
        pfs: Pfs::Gpfs(GpfsModel {
            node_bw: 2.7 * GB_S,
            job_capacity: 330.0 * GB_S,
            peak: 2.5 * TB_S,
            read_factor: 1.3,
            client_half: 512.0 * KIB as f64,
            server_half: 128.0 * KIB as f64,
            meta_base: 0.01,
            meta_per_sqrt_rank: 0.0005,
        }),
        contention: ContentionModel::new(-1.39, 0.8),
    }
}

/// Cori-Haswell at NERSC: 2388 Haswell nodes, Aries interconnect, Lustre
/// scratch at 700 GB/s peak, striped over 72 OSTs (NERSC `stripe_large`).
/// The paper runs 32 ranks per node.
pub fn cori_haswell() -> SystemConfig {
    SystemConfig {
        name: "Cori-Haswell",
        total_nodes: 2388,
        ranks_per_node: 32,
        memcpy: MemcpyModel::new(5.0 * GB_S, 64.0 * KIB as f64, 2e-6),
        gpu: None,
        nvme: Some(NvmeModel::new(
            // Burst-buffer share per node rather than a local device.
            1.4 * GB_S,
            1.7 * GB_S,
            120e-6,
            1_000_000_000_000,
        )),
        pfs: Pfs::Lustre(LustreModel {
            node_bw: 2.9 * GB_S,
            stripe_count: 72,
            ost_bw: 1.3 * GB_S,
            peak: 700.0 * GB_S,
            read_factor: 1.25,
            client_half: MIB as f64,
            server_half: 256.0 * KIB as f64,
            meta_base: 0.005,
            meta_per_log_rank: 0.0005,
        }),
        contention: ContentionModel::new(-1.2, 0.7),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfs::FileSystemModel;

    #[test]
    fn presets_match_paper_headlines() {
        let s = summit();
        assert_eq!(s.total_nodes, 4608);
        assert_eq!(s.ranks_per_node, 6);
        assert!((s.pfs.peak_capacity() - 2.5 * TB_S).abs() < 1.0);
        assert!(s.gpu.is_some());
        assert!(s.nvme.is_some());

        let c = cori_haswell();
        assert_eq!(c.total_nodes, 2388);
        assert_eq!(c.ranks_per_node, 32);
        assert!((c.pfs.peak_capacity() - 700.0 * GB_S).abs() < 1.0);
        assert!(c.gpu.is_none());
    }

    #[test]
    fn nodes_for_ranks_rounds_up() {
        let s = summit();
        assert_eq!(s.nodes_for_ranks(6), 1);
        assert_eq!(s.nodes_for_ranks(7), 2);
        assert_eq!(s.nodes_for_ranks(768), 128);
        let c = cori_haswell();
        assert_eq!(c.nodes_for_ranks(1024), 32);
        assert_eq!(c.nodes_for_ranks(1), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        summit().nodes_for_ranks(0);
    }

    #[test]
    fn snapshot_bw_is_linear_in_nodes() {
        let s = summit();
        let one = s.snapshot_bw(1);
        assert!((s.snapshot_bw(128) / one - 128.0).abs() < 1e-9);
    }

    #[test]
    fn summit_node_count_supports_2k_node_runs() {
        // The paper runs VPIC-IO up to 2048 nodes on Summit.
        assert!(summit().total_nodes >= 2048);
    }
}
