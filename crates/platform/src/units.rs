//! Size and bandwidth unit constants.
//!
//! Data sizes use binary units (KiB/MiB/GiB) as the I/O kernels do
//! ("each MPI process writes 8×1024×1024 particles"); bandwidths use
//! decimal GB/s as vendor specs and the paper do ("2.5 TB/s peak").

/// Bytes in a kibibyte.
pub const KIB: u64 = 1 << 10;
/// Bytes in a mebibyte.
pub const MIB: u64 = 1 << 20;
/// Bytes in a gibibyte.
pub const GIB: u64 = 1 << 30;
/// Bytes in a tebibyte.
pub const TIB: u64 = 1 << 40;

/// Bytes/second in a decimal MB/s.
pub const MB_S: f64 = 1e6;
/// Bytes/second in a decimal GB/s.
pub const GB_S: f64 = 1e9;
/// Bytes/second in a decimal TB/s.
pub const TB_S: f64 = 1e12;

/// Format a byte count human-readably (binary units).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= TIB {
        format!("{:.2} TiB", bytes as f64 / TIB as f64)
    } else if bytes >= GIB {
        format!("{:.2} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Format a bandwidth human-readably (decimal units).
pub fn fmt_bw(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= TB_S {
        format!("{:.2} TB/s", bytes_per_sec / TB_S)
    } else if bytes_per_sec >= GB_S {
        format!("{:.2} GB/s", bytes_per_sec / GB_S)
    } else if bytes_per_sec >= MB_S {
        format!("{:.2} MB/s", bytes_per_sec / MB_S)
    } else {
        format!("{bytes_per_sec:.0} B/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(KIB, 1024);
        assert_eq!(MIB, 1024 * 1024);
        assert_eq!(GIB, 1024 * MIB);
        assert_eq!(TIB, 1024 * GIB);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(32 * MIB), "32.00 MiB");
        assert_eq!(fmt_bytes(3 * GIB / 2), "1.50 GiB");
        assert_eq!(fmt_bw(2.5 * TB_S), "2.50 TB/s");
        assert_eq!(fmt_bw(700.0 * GB_S), "700.00 GB/s");
        assert_eq!(fmt_bw(1.0), "1 B/s");
    }
}
