//! Trace time sources.
//!
//! Every [`Tracer`](crate::Tracer) reads timestamps through a
//! [`TraceClock`], so the same instrumentation produces wall-clock traces
//! in production ([`WallClock`]) and bit-identical traces in tests and
//! simulator runs ([`VirtualClock`]). Timestamps are nanoseconds since the
//! clock's origin — a monotonic offset, never an absolute date.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock for trace timestamps.
pub trait TraceClock: Send + Sync {
    /// Nanoseconds since the clock's origin.
    fn now_nanos(&self) -> u64;
}

/// Wall-clock time relative to the clock's creation (the default for real
/// runs).
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl TraceClock for WallClock {
    fn now_nanos(&self) -> u64 {
        let d = self.origin.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }
}

/// A deterministic clock that only moves when told to — the substrate for
/// byte-stable exporter goldens and for replaying simulated (desim) epoch
/// timelines into a trace.
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at `start_nanos`.
    pub fn new(start_nanos: u64) -> Self {
        VirtualClock {
            nanos: AtomicU64::new(start_nanos),
        }
    }

    /// Advance the clock by `delta_nanos`.
    pub fn advance(&self, delta_nanos: u64) {
        self.nanos.fetch_add(delta_nanos, Ordering::SeqCst);
    }

    /// Jump the clock to an absolute `nanos` reading.
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl TraceClock for VirtualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_moves_only_when_told() {
        let c = VirtualClock::new(100);
        assert_eq!(c.now_nanos(), 100);
        assert_eq!(c.now_nanos(), 100);
        c.advance(50);
        assert_eq!(c.now_nanos(), 150);
        c.set(7);
        assert_eq!(c.now_nanos(), 7);
    }
}
