//! Cross-rank critical-path analysis (DESIGN.md §16).
//!
//! The emitters in `mpisim` and `kernels` publish one span stream per
//! rank, tagged with a [`SpanContext`]: every epoch of every rank is
//! tiled by `rank.compute` → `rank.wait` → `rank.meta` → `rank.write`
//! spans, with causal-edge instants (barrier entry/exit, write-handoff,
//! settle) marking where streams synchronize. All streams share one
//! virtual clock, so this module can merge them into a single timeline
//! and answer the questions aggregate tracing cannot:
//!
//! - **Attribution** — where did each rank's share of the epoch wall go
//!   ({compute, write, metadata, wait}, summing to the wall by
//!   construction of the tiling)?
//! - **Critical path** — which rank's compute→write→barrier chain bounds
//!   the epoch (the *straggler*: the rank with the most busy time, i.e.
//!   the least barrier wait)?
//! - **Skew** — p50/p99 of per-rank busy time, the straggler magnitude.
//! - **Overlap efficiency** — of the background I/O issued between a
//!   [`Event::WriteHandoff`] and its [`Event::Settle`], what fraction ran
//!   hidden under some rank's compute? Comparable to the Eq. 2b
//!   prediction `min(t_io, t_comp) / t_io`.

use crate::{Event, RecordKind, SpanContext, TraceSink};

/// Span name for a rank's compute phase on its context stream.
pub const SPAN_COMPUTE: &str = "rank.compute";
/// Span name for a rank's barrier/buffer wait on its context stream.
pub const SPAN_WAIT: &str = "rank.wait";
/// Span name for a rank's metadata work on its context stream.
pub const SPAN_META: &str = "rank.meta";
/// Span name for a rank's visible write/read I/O on its context stream.
pub const SPAN_WRITE: &str = "rank.write";

/// One rank's share of an epoch's wall time, decomposed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankSlice {
    /// Rank id.
    pub rank: u32,
    /// Nanoseconds in `rank.compute` spans.
    pub compute_nanos: u64,
    /// Nanoseconds in `rank.write` spans (visible I/O).
    pub write_nanos: u64,
    /// Nanoseconds in `rank.meta` spans (metadata open/commit).
    pub meta_nanos: u64,
    /// Nanoseconds in `rank.wait` spans (barrier + buffer-park waits).
    pub wait_nanos: u64,
}

impl RankSlice {
    /// Time the rank spent doing work (everything but waiting) — the
    /// straggler metric: the epoch's straggler has the *most* busy time.
    pub fn busy_nanos(&self) -> u64 {
        self.compute_nanos + self.write_nanos + self.meta_nanos
    }

    /// Total attributed time; equals the epoch wall when the emitter's
    /// tiling is exact.
    pub fn total_nanos(&self) -> u64 {
        self.busy_nanos() + self.wait_nanos
    }
}

/// One segment of an epoch's critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CritSegment {
    /// Rank the segment ran on.
    pub rank: u32,
    /// Span name (`rank.compute`, `rank.write`, …).
    pub name: &'static str,
    /// Segment start, nanoseconds on the merged clock.
    pub start_nanos: u64,
    /// Segment duration in nanoseconds.
    pub dur_nanos: u64,
}

/// The merged view of one epoch across all ranks.
#[derive(Clone, Debug)]
pub struct EpochAttribution {
    /// 0-based epoch index.
    pub epoch: u64,
    /// Earliest span start across the epoch's rank streams.
    pub start_nanos: u64,
    /// Latest span end across the epoch's rank streams.
    pub end_nanos: u64,
    /// Per-rank decomposition, sorted by rank.
    pub ranks: Vec<RankSlice>,
    /// The rank with the most busy time — the rank the critical path
    /// runs through (ties break to the lowest rank).
    pub straggler: u32,
    /// Median per-rank busy time.
    pub skew_p50_nanos: u64,
    /// 99th-percentile per-rank busy time (the straggler's, for small
    /// rank counts).
    pub skew_p99_nanos: u64,
    /// The straggler's segments in time order — the chain that bounds
    /// the epoch.
    pub critical_path: Vec<CritSegment>,
}

impl EpochAttribution {
    /// Epoch wall time: latest end minus earliest start across ranks.
    pub fn wall_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }

    /// The decomposition row for `rank`, if it participated.
    pub fn rank_slice(&self, rank: u32) -> Option<&RankSlice> {
        self.ranks.iter().find(|s| s.rank == rank)
    }

    /// Straggler magnitude: p99 busy over p50 busy (1.0 when balanced).
    pub fn skew_ratio(&self) -> f64 {
        if self.skew_p50_nanos == 0 {
            return if self.skew_p99_nanos == 0 { 1.0 } else { f64::INFINITY };
        }
        self.skew_p99_nanos as f64 / self.skew_p50_nanos as f64
    }
}

/// The full cross-rank analysis of one job's trace.
#[derive(Clone, Debug)]
pub struct CritPathReport {
    /// Job id the analysis covers.
    pub job: u32,
    /// Distinct ranks observed.
    pub ranks: u32,
    /// Per-epoch attribution, sorted by epoch.
    pub epochs: Vec<EpochAttribution>,
    /// Fraction of background I/O (handoff→settle intervals) that
    /// overlapped some compute span of the issuing rank. 0.0 for
    /// synchronous traces (settle coincides with the visible write) and
    /// when no causal edges are present. The final epoch's edge is
    /// excluded — it has no subsequent compute to hide under, so
    /// including it would understate steady-state overlap.
    pub observed_overlap_efficiency: f64,
}

impl CritPathReport {
    /// The attribution row for `epoch`, if present.
    pub fn epoch(&self, epoch: u64) -> Option<&EpochAttribution> {
        self.epochs.iter().find(|e| e.epoch == epoch)
    }
}

/// Analyze the lowest job id present in `sink`. See [`analyze_job`].
pub fn analyze(sink: &TraceSink) -> CritPathReport {
    let job = sink
        .records()
        .iter()
        .filter_map(|r| r.ctx.map(|c| c.job))
        .min()
        .unwrap_or(0);
    analyze_job(sink, job)
}

/// Merge `job`'s rank streams on the shared clock and compute per-epoch
/// critical paths, attribution, skew, and overlap efficiency.
pub fn analyze_job(sink: &TraceSink, job: u32) -> CritPathReport {
    // (epoch, rank) -> slice, plus the epoch time window.
    let mut epochs: Vec<EpochAttribution> = Vec::new();
    let ctx_of = |r: &crate::Record| -> Option<SpanContext> {
        r.ctx.filter(|c| c.job == job)
    };

    for rec in sink.records() {
        let Some(ctx) = ctx_of(rec) else { continue };
        if rec.kind != RecordKind::Span {
            continue;
        }
        let at = match epochs.iter_mut().find(|e| e.epoch == ctx.epoch) {
            Some(e) => e,
            None => {
                epochs.push(EpochAttribution {
                    epoch: ctx.epoch,
                    start_nanos: u64::MAX,
                    end_nanos: 0,
                    ranks: Vec::new(),
                    straggler: 0,
                    skew_p50_nanos: 0,
                    skew_p99_nanos: 0,
                    critical_path: Vec::new(),
                });
                let last = epochs.len() - 1;
                &mut epochs[last]
            }
        };
        at.start_nanos = at.start_nanos.min(rec.start_nanos);
        at.end_nanos = at.end_nanos.max(rec.start_nanos + rec.dur_nanos);
        let slice = match at.ranks.iter_mut().find(|s| s.rank == ctx.rank) {
            Some(s) => s,
            None => {
                at.ranks.push(RankSlice {
                    rank: ctx.rank,
                    ..RankSlice::default()
                });
                let last = at.ranks.len() - 1;
                &mut at.ranks[last]
            }
        };
        match rec.name {
            SPAN_COMPUTE => slice.compute_nanos += rec.dur_nanos,
            SPAN_WAIT => slice.wait_nanos += rec.dur_nanos,
            SPAN_META => slice.meta_nanos += rec.dur_nanos,
            SPAN_WRITE => slice.write_nanos += rec.dur_nanos,
            // Foreign spans on a tagged stream still widen the window but
            // are not attributed to a category.
            _ => {}
        }
    }

    epochs.sort_by_key(|e| e.epoch);
    for e in &mut epochs {
        e.ranks.sort_by_key(|s| s.rank);
        let mut busy: Vec<u64> = e.ranks.iter().map(RankSlice::busy_nanos).collect();
        busy.sort_unstable();
        e.skew_p50_nanos = percentile_sorted(&busy, 0.50);
        e.skew_p99_nanos = percentile_sorted(&busy, 0.99);
        e.straggler = e
            .ranks
            .iter()
            .max_by(|a, b| {
                a.busy_nanos()
                    .cmp(&b.busy_nanos())
                    // On ties, max_by returns the later element; reverse
                    // the rank order so the *lowest* tied rank wins.
                    .then(b.rank.cmp(&a.rank))
            })
            .map(|s| s.rank)
            .unwrap_or(0);
    }

    // Critical path: the straggler's spans for the epoch in start order.
    for e in &mut epochs {
        let mut segs: Vec<CritSegment> = sink
            .records()
            .iter()
            .filter(|r| {
                r.kind == RecordKind::Span
                    && r.ctx
                        .is_some_and(|c| c.job == job && c.epoch == e.epoch && c.rank == e.straggler)
            })
            .map(|r| CritSegment {
                rank: e.straggler,
                name: r.name,
                start_nanos: r.start_nanos,
                dur_nanos: r.dur_nanos,
            })
            .collect();
        segs.sort_by_key(|s| (s.start_nanos, s.dur_nanos));
        e.critical_path = segs;
    }

    let ranks = {
        let mut ids: Vec<u32> = Vec::new();
        for e in &epochs {
            for s in &e.ranks {
                if !ids.contains(&s.rank) {
                    ids.push(s.rank);
                }
            }
        }
        ids.len() as u32
    };

    let observed = overlap_efficiency(sink, job, epochs.last().map(|e| e.epoch));
    CritPathReport {
        job,
        ranks,
        epochs,
        observed_overlap_efficiency: observed,
    }
}

/// `values[⌈q·n⌉-1]` over an ascending-sorted slice (0 when empty).
fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx]
}

/// Fraction of handoff→settle background time that overlapped the
/// issuing rank's compute spans. Edges from `last_epoch` are excluded
/// (no subsequent compute exists to hide their tail).
fn overlap_efficiency(sink: &TraceSink, job: u32, last_epoch: Option<u64>) -> f64 {
    // Per (rank): compute intervals, and per (epoch, rank): handoff /
    // settle timestamps.
    let mut compute: Vec<(u32, u64, u64)> = Vec::new(); // (rank, start, end)
    let mut handoffs: Vec<(u64, u32, u64)> = Vec::new(); // (epoch, rank, ts)
    let mut settles: Vec<(u64, u32, u64)> = Vec::new();
    for r in sink.records() {
        let Some(c) = r.ctx.filter(|c| c.job == job) else {
            continue;
        };
        match (r.kind, r.name, r.event) {
            (RecordKind::Span, SPAN_COMPUTE, _) => {
                compute.push((c.rank, r.start_nanos, r.start_nanos + r.dur_nanos));
            }
            (RecordKind::Instant, _, Some(Event::WriteHandoff { epoch, .. })) => {
                handoffs.push((epoch, c.rank, r.start_nanos));
            }
            (RecordKind::Instant, _, Some(Event::Settle { epoch, .. })) => {
                settles.push((epoch, c.rank, r.start_nanos));
            }
            _ => {}
        }
    }
    let mut bg_total = 0u64;
    let mut hidden = 0u64;
    for &(epoch, rank, h) in &handoffs {
        if last_epoch == Some(epoch) && epoch > 0 {
            continue;
        }
        let Some(&(_, _, s)) = settles
            .iter()
            .find(|&&(e, rk, s)| e == epoch && rk == rank && s > h)
        else {
            continue;
        };
        bg_total += s - h;
        for &(rk, cs, ce) in &compute {
            if rk != rank {
                continue;
            }
            let lo = cs.max(h);
            let hi = ce.min(s);
            hidden += hi.saturating_sub(lo);
        }
    }
    if bg_total == 0 {
        0.0
    } else {
        hidden as f64 / bg_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, SpanContext, Tracer, VirtualClock};
    use std::sync::Arc;

    /// Emit a synthetic 2-rank, 2-epoch trace: rank 1 computes 3x longer;
    /// rank 0 absorbs the skew in its wait span. Epochs tile exactly.
    fn two_rank_trace() -> TraceSink {
        let clock = Arc::new(VirtualClock::new(0));
        let t = Tracer::with_clock(clock.clone());
        let compute = [1_000u64, 3_000]; // per rank
        let write = 500u64;
        let meta = 100u64;
        let wall = 3_000 + meta + write; // straggler compute + meta + write
        for epoch in 0..2u64 {
            let e0 = epoch * wall;
            for rank in 0..2u32 {
                let ctx = SpanContext::new(0, rank, epoch);
                clock.set(e0);
                {
                    let _g = t.span_ctx(SPAN_COMPUTE, ctx);
                    clock.advance(compute[rank as usize]);
                }
                {
                    let _g = t.span_ctx(SPAN_WAIT, ctx);
                    clock.advance(3_000 - compute[rank as usize]);
                    t.instant_ctx("barrier.enter", ctx, Event::BarrierEnter { epoch });
                }
                {
                    let _g = t.span_ctx(SPAN_META, ctx);
                    clock.advance(meta);
                }
                t.instant_ctx(
                    "handoff",
                    ctx,
                    Event::WriteHandoff { epoch, bytes: 64 },
                );
                {
                    let _g = t.span_ctx(SPAN_WRITE, ctx);
                    clock.advance(write);
                }
                t.instant_ctx("barrier.exit", ctx, Event::BarrierExit { epoch });
            }
        }
        t.sink()
    }

    #[test]
    fn attribution_tiles_the_epoch_and_names_the_straggler() {
        let report = analyze(&two_rank_trace());
        assert_eq!(report.ranks, 2);
        assert_eq!(report.epochs.len(), 2);
        for e in &report.epochs {
            assert_eq!(e.straggler, 1, "rank 1 computes 3x longer");
            assert_eq!(e.wall_nanos(), 3_600);
            for s in &e.ranks {
                assert_eq!(
                    s.total_nanos(),
                    e.wall_nanos(),
                    "rank {} attribution must tile the wall",
                    s.rank
                );
            }
            let r0 = e.rank_slice(0).unwrap();
            assert_eq!(r0.wait_nanos, 2_000, "rank 0 absorbs the skew");
            let r1 = e.rank_slice(1).unwrap();
            assert_eq!(r1.wait_nanos, 0);
            assert_eq!(e.skew_p99_nanos, r1.busy_nanos());
            assert!(e.skew_ratio() > 2.0);
        }
    }

    #[test]
    fn critical_path_is_the_stragglers_chain() {
        let report = analyze(&two_rank_trace());
        let e = report.epoch(0).unwrap();
        let names: Vec<&str> = e.critical_path.iter().map(|s| s.name).collect();
        assert_eq!(names, [SPAN_COMPUTE, SPAN_WAIT, SPAN_META, SPAN_WRITE]);
        assert!(e.critical_path.iter().all(|s| s.rank == 1));
        let chain: u64 = e.critical_path.iter().map(|s| s.dur_nanos).sum();
        assert_eq!(chain, e.wall_nanos(), "the chain bounds the epoch");
    }

    #[test]
    fn sync_trace_has_zero_overlap_efficiency() {
        // No Settle edges at all -> no background I/O -> 0.0.
        let report = analyze(&two_rank_trace());
        assert_eq!(report.observed_overlap_efficiency, 0.0);
    }

    #[test]
    fn overlap_efficiency_measures_hidden_background_io() {
        let clock = Arc::new(VirtualClock::new(0));
        let t = Tracer::with_clock(clock.clone());
        // Epoch 0: handoff at t=1000, settle at t=1800; the next compute
        // span [1000, 1600] hides 600 of the 800 ns background interval.
        let c0 = SpanContext::new(0, 0, 0);
        clock.set(0);
        {
            let _g = t.span_ctx(SPAN_COMPUTE, c0);
            clock.advance(1_000);
        }
        t.instant_ctx("handoff", c0, Event::WriteHandoff { epoch: 0, bytes: 1 });
        let c1 = SpanContext::new(0, 0, 1);
        {
            let _g = t.span_ctx(SPAN_COMPUTE, c1);
            clock.advance(600);
        }
        clock.set(1_800);
        t.instant_ctx("settle", c0, Event::Settle { epoch: 0, requests: 1 });
        // A second epoch exists, so epoch 0 is not the excluded tail.
        let report = analyze(&t.sink());
        assert!((report.observed_overlap_efficiency - 0.75).abs() < 1e-9);
    }

    #[test]
    fn final_epoch_edges_are_excluded_from_efficiency() {
        let clock = Arc::new(VirtualClock::new(0));
        let t = Tracer::with_clock(clock.clone());
        for epoch in 0..2u64 {
            let ctx = SpanContext::new(0, 0, epoch);
            clock.set(epoch * 1_000);
            {
                let _g = t.span_ctx(SPAN_COMPUTE, ctx);
                clock.advance(400);
            }
            t.instant_ctx("handoff", ctx, Event::WriteHandoff { epoch, bytes: 1 });
            clock.advance(300);
            t.instant_ctx("settle", ctx, Event::Settle { epoch, requests: 1 });
        }
        let report = analyze(&t.sink());
        // Only epoch 0's edge counts; its interval [400, 700] overlaps
        // epoch 1's compute not at all and epoch 0's compute not at all
        // (compute ended at 400) -> efficiency 0, but crucially the
        // last-epoch edge did not contribute to the denominator.
        assert_eq!(report.observed_overlap_efficiency, 0.0);
    }

    #[test]
    fn empty_sink_yields_an_empty_report() {
        let report = analyze(&TraceSink::default());
        assert_eq!(report.ranks, 0);
        assert!(report.epochs.is_empty());
        assert_eq!(report.observed_overlap_efficiency, 0.0);
    }
}
