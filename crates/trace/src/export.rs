//! Trace exporters.
//!
//! Two formats, both deterministic functions of the record list (records
//! are emitted in `seq` order, timestamps come from the tracer's clock —
//! under a [`VirtualClock`](crate::VirtualClock) the output is
//! byte-stable, which the golden tests pin):
//!
//! - [`chrome_json`] — the Chrome `trace_event` array format. Load the
//!   file in `chrome://tracing` or <https://ui.perfetto.dev>: spans are
//!   complete (`ph:"X"`) events nested by timestamp per thread track,
//!   instants are thread-scoped (`ph:"i"`). Records tagged with a
//!   [`SpanContext`](crate::SpanContext) land on their own rows — `pid =
//!   job + 2`, `tid = rank` — so a multi-rank trace reads as one process
//!   group per job with one track per rank; untagged records keep the
//!   historical `pid 1` / tracer-thread `tid` row.
//! - [`jsonl`] — one compact JSON object per record per line, for log
//!   pipelines and ad-hoc `grep`/`jq` analysis. Context-tagged records
//!   carry a `"ctx":{"job":…,"rank":…,"epoch":…}` member.

use crate::{Event, Record, RecordKind};

/// Format nanoseconds as Chrome's microsecond `ts`/`dur` fields without
/// going through floating point (deterministic output).
fn micros(ns: u64) -> String {
    if ns.is_multiple_of(1000) {
        format!("{}", ns / 1000)
    } else {
        format!("{}.{:03}", ns / 1000, ns % 1000)
    }
}

/// JSON-escape a name (span names are static identifiers, but the
/// exporter must never emit malformed JSON even for odd ones).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The event payload as JSON object members (no surrounding braces).
fn event_members(e: &Event) -> String {
    match e {
        Event::VolCall { op, dataset, bytes } => format!(
            "\"type\":\"VolCall\",\"op\":\"{}\",\"dataset\":{dataset},\"bytes\":{bytes}",
            esc(op)
        ),
        Event::Snapshot { bytes, staged } => {
            format!("\"type\":\"Snapshot\",\"bytes\":{bytes},\"staged\":{staged}")
        }
        Event::WalAppend { seq, bytes } => {
            format!("\"type\":\"WalAppend\",\"seq\":{seq},\"bytes\":{bytes}")
        }
        Event::WalReplay { seq, bytes } => {
            format!("\"type\":\"WalReplay\",\"seq\":{seq},\"bytes\":{bytes}")
        }
        Event::WalTruncated { offset } => {
            format!("\"type\":\"WalTruncated\",\"offset\":{offset}")
        }
        Event::RetryAttempt {
            attempt,
            delay_nanos,
        } => format!("\"type\":\"RetryAttempt\",\"attempt\":{attempt},\"delay_nanos\":{delay_nanos}"),
        Event::BreakerTransition { from, to } => format!(
            "\"type\":\"BreakerTransition\",\"from\":\"{}\",\"to\":\"{}\"",
            esc(from),
            esc(to)
        ),
        Event::PlanBuilt {
            dataset,
            segments,
            batches,
        } => format!(
            "\"type\":\"PlanBuilt\",\"dataset\":{dataset},\"segments\":{segments},\"batches\":{batches}"
        ),
        Event::BackendBatch { segments, bytes } => {
            format!("\"type\":\"BackendBatch\",\"segments\":{segments},\"bytes\":{bytes}")
        }
        Event::Degrade { dataset, bytes } => {
            format!("\"type\":\"Degrade\",\"dataset\":{dataset},\"bytes\":{bytes}")
        }
        Event::EpochMark {
            epoch,
            comp_nanos,
            io_nanos,
            bytes,
        } => format!(
            "\"type\":\"EpochMark\",\"epoch\":{epoch},\"comp_nanos\":{comp_nanos},\"io_nanos\":{io_nanos},\"bytes\":{bytes}"
        ),
        Event::BarrierEnter { epoch } => {
            format!("\"type\":\"BarrierEnter\",\"epoch\":{epoch}")
        }
        Event::BarrierExit { epoch } => {
            format!("\"type\":\"BarrierExit\",\"epoch\":{epoch}")
        }
        Event::WriteHandoff { epoch, bytes } => {
            format!("\"type\":\"WriteHandoff\",\"epoch\":{epoch},\"bytes\":{bytes}")
        }
        Event::Settle { epoch, requests } => {
            format!("\"type\":\"Settle\",\"epoch\":{epoch},\"requests\":{requests}")
        }
    }
}

/// Chrome `pid` for a record: context-free records keep the historical
/// `pid 1`; rank-tagged records map their job to `pid = job + 2`, so job
/// 0 lands on `pid 2` and never collides with the untagged row.
fn chrome_pid(r: &Record) -> u64 {
    match r.ctx {
        Some(c) => u64::from(c.job) + 2,
        None => 1,
    }
}

/// Chrome `tid` for a record: rank-tagged records use the rank itself
/// (one viewer row per rank), untagged records keep the tracer's thread
/// id.
fn chrome_tid(r: &Record) -> u64 {
    match r.ctx {
        Some(c) => u64::from(c.rank),
        None => r.tid,
    }
}

/// Export records as a Chrome `trace_event` JSON document.
pub fn chrome_json(records: &[Record]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    for (i, r) in records.iter().enumerate() {
        let mut args = match &r.event {
            Some(e) => format!("{{\"seq\":{},{}}}", r.seq, event_members(e)),
            None => format!("{{\"seq\":{}}}", r.seq),
        };
        if let Some(c) = r.ctx {
            args.pop(); // reopen the object to append the context members
            args.push_str(&format!(
                ",\"job\":{},\"rank\":{},\"epoch\":{}}}",
                c.job, c.rank, c.epoch
            ));
        }
        let line = match r.kind {
            RecordKind::Span => format!(
                "{{\"name\":\"{}\",\"cat\":\"apio\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
                esc(r.name),
                micros(r.start_nanos),
                micros(r.dur_nanos),
                chrome_pid(r),
                chrome_tid(r),
                args
            ),
            RecordKind::Instant => format!(
                "{{\"name\":\"{}\",\"cat\":\"apio\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
                esc(r.name),
                micros(r.start_nanos),
                chrome_pid(r),
                chrome_tid(r),
                args
            ),
        };
        out.push_str(&line);
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Export records as compact JSONL: one object per record per line.
pub fn jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        let kind = match r.kind {
            RecordKind::Span => "span",
            RecordKind::Instant => "instant",
        };
        out.push_str(&format!(
            "{{\"seq\":{},\"kind\":\"{kind}\",\"name\":\"{}\",\"id\":{},\"parent\":{},\"tid\":{},\"ts_ns\":{},\"dur_ns\":{}",
            r.seq,
            esc(r.name),
            r.id,
            r.parent,
            r.tid,
            r.start_nanos,
            r.dur_nanos
        ));
        if let Some(c) = r.ctx {
            out.push_str(&format!(
                ",\"ctx\":{{\"job\":{},\"rank\":{},\"epoch\":{}}}",
                c.job, c.rank, c.epoch
            ));
        }
        if let Some(e) = &r.event {
            out.push_str(&format!(",\"event\":{{{}}}", event_members(e)));
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::SpanContext;

    fn sample() -> Vec<Record> {
        vec![
            Record {
                seq: 0,
                kind: RecordKind::Instant,
                name: "mark",
                id: 0,
                parent: 1,
                tid: 1,
                start_nanos: 1_500,
                dur_nanos: 0,
                event: Some(Event::RetryAttempt {
                    attempt: 2,
                    delay_nanos: 512,
                }),
                ctx: None,
            },
            Record {
                seq: 1,
                kind: RecordKind::Span,
                name: "vol.write",
                id: 1,
                parent: 0,
                tid: 1,
                start_nanos: 1_000,
                dur_nanos: 2_345,
                event: Some(Event::VolCall {
                    op: "write",
                    dataset: 3,
                    bytes: 64,
                }),
                ctx: None,
            },
            Record {
                seq: 2,
                kind: RecordKind::Span,
                name: "rank.compute",
                id: 2,
                parent: 0,
                tid: 1,
                start_nanos: 4_000,
                dur_nanos: 1_000,
                event: None,
                ctx: Some(SpanContext::new(0, 7, 3)),
            },
        ]
    }

    #[test]
    fn chrome_json_shape() {
        let s = chrome_json(&sample());
        assert!(s.starts_with("{\"displayTimeUnit\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"ts\":1.500"));
        assert!(s.contains("\"dur\":2.345"));
        assert!(s.contains("\"type\":\"VolCall\""));
        assert!(s.trim_end().ends_with("]}"));
    }

    #[test]
    fn chrome_rows_split_by_context() {
        let s = chrome_json(&sample());
        // Untagged records keep pid 1 / their tracer tid.
        assert!(s.contains("\"name\":\"vol.write\",\"cat\":\"apio\",\"ph\":\"X\",\"ts\":1,\"dur\":2.345,\"pid\":1,\"tid\":1"));
        // Rank-tagged records map job 0 -> pid 2 and rank 7 -> tid 7, and
        // the args carry the context members.
        assert!(s.contains("\"pid\":2,\"tid\":7"));
        assert!(s.contains("\"job\":0,\"rank\":7,\"epoch\":3"));
    }

    #[test]
    fn jsonl_one_line_per_record() {
        let s = jsonl(&sample());
        assert_eq!(s.lines().count(), 3);
        assert!(s.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(s.contains("\"kind\":\"instant\""));
        assert!(s.contains("\"dur_ns\":2345"));
        assert!(s.contains("\"ctx\":{\"job\":0,\"rank\":7,\"epoch\":3}"));
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn micros_formatting_is_exact() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1_000), "1");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(999), "0.999");
    }
}
