//! The flight recorder: an always-on, fixed-capacity black box.
//!
//! Production async-I/O stacks cannot afford an unbounded trace on every
//! run, but when a run dies the first question is always "what were the
//! last things the pipeline did?". A flight-mode tracer
//! ([`Tracer::flight`]) answers it: the record shards become
//! fixed-capacity rings that retain the **last N records per shard** and
//! overwrite the oldest beyond that, so recording cost and memory stay
//! constant no matter how long the run — the spans, events, and metrics
//! machinery is exactly the full tracer's, only the retention differs.
//!
//! Dumps go through the existing exporters, never through raw record
//! access: [`FlightDump::jsonl`] and [`FlightDump::chrome_json`] wrap
//! [`export`](crate::export), and the workspace lint (`xtask` rule
//! `trace-discipline`) forbids calling the raw accessor
//! `Tracer::flight_records` outside this crate. [`install_panic_dump`]
//! arms a chaining panic hook that writes the ring as JSONL before the
//! previous hook runs, so a crashing process leaves its black box behind.
//!
//! The rings are lock-sharded (threads map to shards by trace tid), the
//! same structure the full tracer uses: pushes are O(1), allocation-free
//! once a ring is full, and a shard lock is only ever contended by
//! threads hashing to the same shard. Overhead against a disabled tracer
//! is measured in `benches/micro.rs` (budget ≤ 2% on the strided VPIC
//! write; see DESIGN.md §11).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::export;
use crate::{Record, TraceSink, Tracer};

/// One record-buffer shard: unbounded for the full tracer, a
/// fixed-capacity overwrite ring for flight mode.
pub(crate) struct Shard {
    buf: Vec<Record>,
    /// Ring capacity; `None` means append-only (full tracing).
    cap: Option<usize>,
    /// Oldest slot — the next to be overwritten once the ring is full.
    head: usize,
    /// Records overwritten so far (flight mode only).
    dropped: u64,
}

impl Shard {
    /// An append-only shard (full tracing).
    pub(crate) fn unbounded() -> Self {
        Shard {
            buf: Vec::new(),
            cap: None,
            head: 0,
            dropped: 0,
        }
    }

    /// A ring shard retaining the last `cap` records (flight mode).
    pub(crate) fn ring(cap: usize) -> Self {
        let cap = cap.max(1);
        Shard {
            buf: Vec::with_capacity(cap),
            cap: Some(cap),
            head: 0,
            dropped: 0,
        }
    }

    /// Append a record; in ring mode, overwrite the oldest when full.
    pub(crate) fn push(&mut self, rec: Record) {
        match self.cap {
            None => self.buf.push(rec),
            Some(cap) => {
                if self.buf.len() < cap {
                    self.buf.push(rec);
                } else {
                    self.buf[self.head] = rec;
                    self.head = (self.head + 1) % cap;
                    self.dropped += 1;
                }
            }
        }
    }

    /// The retained records, in ring order (callers sort by `seq`).
    pub(crate) fn records(&self) -> &[Record] {
        &self.buf
    }

    /// Records overwritten so far.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A point-in-time dump of a tracer's retained records, exposed only
/// through the exporter API and structural queries.
///
/// Obtained from [`Tracer::flight_dump`]; works on full tracers too
/// (where `capacity` is 0 and nothing is ever dropped), so one dump path
/// serves both post-hoc and black-box tracing.
pub struct FlightDump {
    sink: TraceSink,
    /// Total ring capacity across shards; 0 for an unbounded tracer.
    capacity: usize,
    /// Records overwritten (lost to the ring) before this dump.
    dropped: u64,
}

impl FlightDump {
    pub(crate) fn new(sink: TraceSink, capacity: usize, dropped: u64) -> Self {
        FlightDump {
            sink,
            capacity,
            dropped,
        }
    }

    /// The retained records as a queryable sink (emission order).
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Number of records retained in this dump.
    pub fn len(&self) -> usize {
        self.sink.records().len()
    }

    /// Whether the dump holds no records.
    pub fn is_empty(&self) -> bool {
        self.sink.records().is_empty()
    }

    /// Total ring capacity across shards (0 = unbounded tracer).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records overwritten by the ring before this dump was taken.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The dump as compact JSONL (one record per line) — the format the
    /// panic hook writes.
    pub fn jsonl(&self) -> String {
        export::jsonl(self.sink.records())
    }

    /// The dump as a Chrome `trace_event` document (loadable in
    /// `chrome://tracing` / Perfetto).
    pub fn chrome_json(&self) -> String {
        export::chrome_json(self.sink.records())
    }

    /// Write the JSONL dump to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.jsonl())
    }
}

/// How many panic dumps have been written by hooks installed in this
/// process (tests and operators can await/count them).
static PANIC_DUMPS: AtomicU64 = AtomicU64::new(0);

/// Number of panic dumps written so far in this process.
pub fn panic_dump_count() -> u64 {
    PANIC_DUMPS.load(Ordering::Relaxed)
}

/// Arm a panic hook that dumps `tracer`'s retained records to `path` as
/// JSONL before delegating to the previously installed hook.
///
/// Hooks chain: installing for several tracers dumps each in reverse
/// installation order, then runs the original hook (so default panic
/// output is preserved). The dump goes through the exporter API and
/// swallows I/O errors — a panic path must never double-panic. An empty
/// trace writes nothing.
pub fn install_panic_dump(tracer: &Tracer, path: impl Into<PathBuf>) {
    let tracer = tracer.clone();
    let path = path.into();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let dump = tracer.flight_dump();
        if !dump.is_empty() && dump.write_jsonl(&path).is_ok() {
            PANIC_DUMPS.fetch_add(1, Ordering::Relaxed);
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, VirtualClock};
    use std::sync::Arc;

    #[test]
    fn ring_shard_retains_the_last_records() {
        let mut s = Shard::ring(3);
        for i in 0..5u64 {
            s.push(Record {
                seq: i,
                kind: crate::RecordKind::Instant,
                name: "e",
                id: 0,
                parent: 0,
                tid: 1,
                start_nanos: i,
                dur_nanos: 0,
                event: None,
                ctx: None,
            });
        }
        assert_eq!(s.dropped(), 2);
        let mut seqs: Vec<u64> = s.records().iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, [2, 3, 4], "oldest two overwritten");
    }

    #[test]
    fn unbounded_shard_never_drops() {
        let mut s = Shard::unbounded();
        for i in 0..100u64 {
            s.push(Record {
                seq: i,
                kind: crate::RecordKind::Instant,
                name: "e",
                id: 0,
                parent: 0,
                tid: 1,
                start_nanos: i,
                dur_nanos: 0,
                event: None,
                ctx: None,
            });
        }
        assert_eq!(s.records().len(), 100);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn flight_tracer_keeps_the_tail_and_counts_drops() {
        let clock = Arc::new(VirtualClock::new(0));
        let t = Tracer::flight_with_clock(4, clock.clone());
        assert!(t.is_enabled());
        assert!(t.is_flight());
        // One thread → one shard → capacity 4 effective.
        for i in 0..10u64 {
            t.instant(
                "mark",
                Event::EpochMark {
                    epoch: i,
                    comp_nanos: 0,
                    io_nanos: 1,
                    bytes: 1,
                },
            );
            clock.advance(1);
        }
        let dump = t.flight_dump();
        assert_eq!(dump.len(), 4);
        assert_eq!(dump.dropped(), 6);
        assert_eq!(t.dropped_records(), 6);
        let epochs: Vec<u64> = dump
            .sink()
            .events_where(|e| matches!(e, Event::EpochMark { .. }))
            .iter()
            .map(|r| match r.event {
                Some(Event::EpochMark { epoch, .. }) => epoch,
                _ => u64::MAX,
            })
            .collect();
        assert_eq!(epochs, [6, 7, 8, 9], "the last four epochs survive, in seq order");
        // The dump speaks the exporter formats.
        assert_eq!(dump.jsonl().lines().count(), 4);
        assert!(dump.jsonl().contains("\"type\":\"EpochMark\""));
        assert!(dump.chrome_json().starts_with("{\"displayTimeUnit\""));
    }

    #[test]
    fn flight_mode_still_feeds_metrics() {
        let clock = Arc::new(VirtualClock::new(0));
        let t = Tracer::flight_with_clock(2, clock.clone());
        for _ in 0..10 {
            let _g = t.span("op");
            clock.advance(1_000);
        }
        // The ring kept 2 spans, the histogram saw all 10.
        assert_eq!(t.flight_dump().len(), 2);
        assert_eq!(t.metrics().unwrap().histogram("op").count(), 10);
    }

    #[test]
    fn full_tracer_dump_has_zero_capacity_and_drops() {
        let t = Tracer::new();
        t.instant(
            "e",
            Event::Degrade {
                dataset: 1,
                bytes: 2,
            },
        );
        let dump = t.flight_dump();
        assert_eq!(dump.capacity(), 0);
        assert_eq!(dump.dropped(), 0);
        assert_eq!(dump.len(), 1);
        assert!(!t.is_flight());
    }
}
