#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![warn(missing_docs)]
//! # apio-trace — structured tracing + metrics for the I/O pipeline
//!
//! The paper's Fig. 2 feedback loop consumes a *history of observed
//! transfers*; aggregate counters cannot say where an epoch's time went
//! (snapshot → stage → retry → backend batch → ack). This crate provides
//! that decomposition as a zero-dependency library the whole workspace
//! shares:
//!
//! - [`Tracer`] — cheap RAII spans ([`SpanGuard`]) and instant events over
//!   a pluggable [`TraceClock`] ([`WallClock`] by default,
//!   [`VirtualClock`] for deterministic tests and simulator timelines),
//!   buffered into lock-sharded in-memory sinks.
//! - [`Event`] — typed payloads for every stage of the pipeline: VOL
//!   calls, snapshot copies, WAL appends/replays, retry attempts, breaker
//!   transitions, I/O plans, backend batches, degraded writes, epoch
//!   marks.
//! - [`Metrics`] — a registry of monotonic counters and fixed-bucket log2
//!   histograms (p50/p95/p99), all atomics, allocation-free on the hot
//!   path. Span durations feed per-name histograms automatically.
//! - [`export`] — Chrome `trace_event` JSON (loadable in
//!   `chrome://tracing` / Perfetto) and compact JSONL.
//! - [`TraceSink`] — an in-memory snapshot with structural queries
//!   (parent chains, event filters) for trace-assertion tests.
//! - [`flight`] — the always-on flight recorder ([`Tracer::flight`]):
//!   fixed-capacity ring shards retaining the last N records, dumpable on
//!   demand and from a panic hook through the exporters (DESIGN.md §11).
//! - [`series`] — streaming per-epoch telemetry: windowed I/O-rate /
//!   retry / breaker / queue-depth series with EWMA smoothing and a
//!   Page–Hinkley drift detector on the aggregate I/O rate — the runtime
//!   half of the paper's Fig. 2 feedback loop.
//! - [`SpanContext`] + [`critpath`] — cross-rank causal tracing
//!   (DESIGN.md §16): records tagged `{job, rank, epoch}` form per-rank
//!   span streams with causal edges (barrier entry/exit, write-handoff,
//!   settle), and the [`critpath`] engine merges them on the virtual
//!   clock into per-epoch critical paths and per-rank
//!   {compute, write, metadata, wait} attribution.
//!
//! A **disabled** tracer ([`Tracer::disabled`], the default everywhere it
//! is embedded) reduces every call to one branch on an `Option` — the
//! overhead budget is "unmeasurable against a microsecond I/O op"
//! (measured in `benches/micro.rs`; see DESIGN.md §10).
//!
//! Span creation must go through the guard API: [`Tracer::span`] /
//! [`Tracer::span_with`] return a [`SpanGuard`] that closes the span on
//! drop, so a panic or early return can never leave a span open. The
//! manual [`Tracer::begin_span`] / [`Tracer::end_span`] pair exists for
//! spans whose lifetime cannot follow a scope; the workspace lint
//! (`xtask` rule `trace-discipline`) forbids it outside this crate.

pub mod clock;
pub mod critpath;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod series;

pub use clock::{TraceClock, VirtualClock, WallClock};
pub use critpath::{CritPathReport, CritSegment, EpochAttribution, RankSlice};
pub use flight::{install_panic_dump, FlightDump};
pub use metrics::{Counter, Histogram, HistogramSnapshot, Metrics};
pub use series::{DriftAlarm, DriftDirection, EpochPoint, SeriesAggregator, SeriesConfig};

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Typed payload attached to a span or instant event — one variant per
/// stage of the async-I/O pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A VOL entry point (`op` is `"write"`, `"read"`, `"execute"`, …).
    VolCall {
        /// Operation name.
        op: &'static str,
        /// Target dataset id.
        dataset: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A transactional snapshot copy (DRAM `to_vec` or device staging).
    Snapshot {
        /// Snapshot bytes.
        bytes: u64,
        /// Whether the snapshot went to a staging device (WAL) rather
        /// than DRAM.
        staged: bool,
    },
    /// A write-ahead-log append.
    WalAppend {
        /// Log sequence number of the record.
        seq: u64,
        /// Payload bytes appended.
        bytes: u64,
    },
    /// A WAL record replayed into the container during recovery.
    WalReplay {
        /// Log sequence number (scan order) of the replayed record.
        seq: u64,
        /// Payload bytes replayed.
        bytes: u64,
    },
    /// Torn-tail truncation during a WAL scan: bytes beyond `offset` were
    /// discarded as dead space.
    WalTruncated {
        /// End of the last valid record; the new append cursor.
        offset: u64,
    },
    /// One retry attempt inside a backoff loop, just before its sleep.
    RetryAttempt {
        /// 1-based attempt index that just failed.
        attempt: u32,
        /// Backoff sleep chosen before the next attempt.
        delay_nanos: u64,
    },
    /// A circuit-breaker state change.
    BreakerTransition {
        /// State left (`"closed"`, `"open"`, `"half-open"`).
        from: &'static str,
        /// State entered.
        to: &'static str,
    },
    /// An I/O plan was built for a selection.
    PlanBuilt {
        /// Target dataset id.
        dataset: u64,
        /// Coalesced segments in the plan.
        segments: u64,
        /// Vectored batches the segments will be issued as.
        batches: u64,
    },
    /// One vectored batch issued to a storage backend.
    BackendBatch {
        /// Segments in the batch.
        segments: u64,
        /// Total payload bytes.
        bytes: u64,
    },
    /// A write served synchronously because the breaker degraded the
    /// async path.
    Degrade {
        /// Target dataset id.
        dataset: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// One application epoch (compute + I/O phase), the paper's unit of
    /// analysis.
    EpochMark {
        /// 0-based epoch index.
        epoch: u64,
        /// Compute-phase nanoseconds.
        comp_nanos: u64,
        /// Visible (blocking) I/O nanoseconds.
        io_nanos: u64,
        /// Bytes moved this epoch.
        bytes: u64,
    },
    /// Causal edge: a rank arrived at an epoch's closing barrier and
    /// started waiting for the others.
    BarrierEnter {
        /// 0-based epoch index of the barrier.
        epoch: u64,
    },
    /// Causal edge: the barrier released — every rank of the epoch is
    /// synchronized from this timestamp on.
    BarrierExit {
        /// 0-based epoch index of the barrier.
        epoch: u64,
    },
    /// Causal edge: the application thread handed a snapshot to the
    /// background I/O stream (async) or entered a blocking collective
    /// write (sync). The matching [`Event::Settle`] closes the edge.
    WriteHandoff {
        /// 0-based epoch index of the write.
        epoch: u64,
        /// Payload bytes handed off.
        bytes: u64,
    },
    /// Causal edge: background settlement — the data handed off at the
    /// matching [`Event::WriteHandoff`] became durable (requests settled,
    /// ring drained, or the simulated background stream went idle).
    Settle {
        /// 0-based epoch index settled (0 when unknown, e.g. connector
        /// drains that span epochs).
        epoch: u64,
        /// Requests (or simulated collectives) settled by this edge.
        requests: u64,
    },
}

/// Cross-rank identity of a span stream: which job, rank, and epoch a
/// record belongs to. Tagged records let the exporters place every rank
/// on its own row and let [`critpath`] merge per-rank streams that were
/// emitted from a single thread (simulator replays) or many threads
/// (real kernel runs) into one causal timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// Job (application instance) id; distinct jobs land on distinct
    /// Chrome `pid` rows.
    pub job: u32,
    /// MPI-style rank within the job; distinct ranks land on distinct
    /// Chrome `tid` rows.
    pub rank: u32,
    /// 0-based epoch the record belongs to.
    pub epoch: u64,
}

impl SpanContext {
    /// Context for `rank` of `job` during `epoch`.
    pub fn new(job: u32, rank: u32, epoch: u64) -> Self {
        SpanContext { job, rank, epoch }
    }
}

/// Whether a record is a duration span or a point event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A closed span with a duration.
    Span,
    /// An instant event.
    Instant,
}

/// One finished trace record (a closed span or an instant event).
#[derive(Clone, Debug)]
pub struct Record {
    /// Global emission order (spans take theirs when they *close*).
    pub seq: u64,
    /// Span or instant.
    pub kind: RecordKind,
    /// Record name (span taxonomy — see DESIGN.md §10).
    pub name: &'static str,
    /// Span id (0 for instants).
    pub id: u64,
    /// Id of the enclosing span on the emitting thread (0 = root).
    pub parent: u64,
    /// Trace thread id (stable small integers per tracer).
    pub tid: u64,
    /// Start timestamp, nanoseconds on the tracer's clock.
    pub start_nanos: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_nanos: u64,
    /// Typed payload, if any.
    pub event: Option<Event>,
    /// Cross-rank identity ({job, rank, epoch}), if the record was
    /// emitted through the `*_ctx` APIs.
    pub ctx: Option<SpanContext>,
}

/// Record-buffer shards; threads map to shards by trace tid.
const SHARDS: usize = 8;

struct Inner {
    /// Distinguishes tracers on the thread-local span stack.
    tracer_id: u64,
    clock: Arc<dyn TraceClock>,
    next_span: AtomicU64,
    next_seq: AtomicU64,
    next_tid: AtomicU64,
    shards: Vec<Mutex<flight::Shard>>,
    /// Per-shard ring capacity; `None` = unbounded (full tracing).
    flight_cap: Option<usize>,
    metrics: Metrics,
}

static TRACER_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread stack of open spans: (tracer_id, span_id).
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread cache of assigned trace tids: (tracer_id, tid).
    static TIDS: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread cache of span-duration histogram handles, keyed by
    /// (tracer_id, name address). Span names are `&'static str`, so the
    /// pointer identifies the name without a byte compare, and the handle
    /// shares the registry's atomics — this turns the per-span-close
    /// registry lookup (RwLock + string scan) into a short linear scan,
    /// which is what keeps always-on flight recording inside its ≤ 2%
    /// budget. Bounded FIFO so pathological name churn can't grow it.
    static HISTO_CACHE: RefCell<Vec<(u64, usize, metrics::Histogram)>> =
        const { RefCell::new(Vec::new()) };
}

/// Read a possibly poisoned mutex; shard pushes are single whole-record
/// writes so a panicking holder cannot leave them inconsistent. The panic
/// hook relies on this: a dump taken mid-panic still sees every record.
fn lock_shard(m: &Mutex<flight::Shard>) -> std::sync::MutexGuard<'_, flight::Shard> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Inner {
    fn tid(&self) -> u64 {
        TIDS.with(|t| {
            let mut t = t.borrow_mut();
            if let Some(&(_, tid)) = t.iter().find(|(tr, _)| *tr == self.tracer_id) {
                return tid;
            }
            let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
            t.push((self.tracer_id, tid));
            tid
        })
    }

    fn parent(&self) -> u64 {
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(tr, _)| *tr == self.tracer_id)
                .map(|&(_, id)| id)
                .unwrap_or(0)
        })
    }

    fn push_record(&self, rec: Record) {
        let shard = (rec.tid as usize) % SHARDS;
        lock_shard(&self.shards[shard]).push(rec);
    }
}

/// An open span returned by [`Tracer::begin_span`]; closed by
/// [`Tracer::end_span`]. Carries everything the closing side needs, so no
/// open-span table is consulted.
#[must_use = "an unclosed span token leaks an entry on the span stack"]
pub struct SpanToken {
    id: u64,
    parent: u64,
    tid: u64,
    name: &'static str,
    start_nanos: u64,
    event: Option<Event>,
    ctx: Option<SpanContext>,
}

/// RAII span: created by [`Tracer::span`] / [`Tracer::span_with`], closes
/// the span (recording its duration) when dropped.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    open: Option<(Tracer, SpanToken)>,
}

impl SpanGuard {
    /// Attach (or replace) the span's event payload before it closes.
    pub fn set_event(&mut self, event: Event) {
        if let Some((_, token)) = self.open.as_mut() {
            token.event = Some(event);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((tracer, token)) = self.open.take() {
            tracer.end_span(token);
        }
    }
}

/// The tracing front end. Cheap to clone (an `Option<Arc>`); a
/// [`disabled`](Tracer::disabled) tracer reduces every call to one branch.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// A tracer that records nothing (the default everywhere a tracer is
    /// embedded).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer on wall-clock time.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// An enabled tracer reading timestamps from `clock`.
    pub fn with_clock(clock: Arc<dyn TraceClock>) -> Self {
        Self::build(clock, None)
    }

    /// An always-on flight recorder on wall-clock time: each record shard
    /// becomes a fixed ring retaining its last `capacity_per_shard`
    /// records (see [`flight`]). Span, event, and metrics behaviour is
    /// identical to [`Tracer::new`]; only retention differs.
    pub fn flight(capacity_per_shard: usize) -> Self {
        Self::build(Arc::new(WallClock::new()), Some(capacity_per_shard))
    }

    /// A flight recorder reading timestamps from `clock`.
    pub fn flight_with_clock(capacity_per_shard: usize, clock: Arc<dyn TraceClock>) -> Self {
        Self::build(clock, Some(capacity_per_shard))
    }

    fn build(clock: Arc<dyn TraceClock>, flight_cap: Option<usize>) -> Self {
        let cap = flight_cap.map(|c| c.max(1));
        Tracer {
            inner: Some(Arc::new(Inner {
                tracer_id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
                clock,
                next_span: AtomicU64::new(1),
                next_seq: AtomicU64::new(0),
                next_tid: AtomicU64::new(1),
                shards: (0..SHARDS)
                    .map(|_| {
                        Mutex::new(match cap {
                            Some(c) => flight::Shard::ring(c),
                            None => flight::Shard::unbounded(),
                        })
                    })
                    .collect(),
                flight_cap: cap,
                metrics: Metrics::new(),
            })),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this tracer is a fixed-capacity flight recorder.
    pub fn is_flight(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.flight_cap.is_some())
    }

    /// Records overwritten by the flight rings so far (0 for full or
    /// disabled tracers).
    pub fn dropped_records(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.shards.iter().map(|s| lock_shard(s).dropped()).sum())
            .unwrap_or(0)
    }

    /// The tracer's metrics registry (`None` when disabled). Span
    /// durations are recorded into a histogram per span name
    /// automatically.
    pub fn metrics(&self) -> Option<Metrics> {
        self.inner.as_ref().map(|i| i.metrics.clone())
    }

    /// Open a span; it closes (and records) when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_inner(name, None, None)
    }

    /// Open a span carrying an event payload.
    pub fn span_with(&self, name: &'static str, event: Event) -> SpanGuard {
        self.span_inner(name, Some(event), None)
    }

    /// Open a span tagged with a cross-rank [`SpanContext`]. Epoch-path
    /// spans in `mpisim` and `kernels` must use this (or
    /// [`span_ctx_with`](Self::span_ctx_with)) — the `rank-context` lint
    /// enforces it — so every record can be attributed to a rank.
    pub fn span_ctx(&self, name: &'static str, ctx: SpanContext) -> SpanGuard {
        self.span_inner(name, None, Some(ctx))
    }

    /// Open a context-tagged span carrying an event payload.
    pub fn span_ctx_with(&self, name: &'static str, ctx: SpanContext, event: Event) -> SpanGuard {
        self.span_inner(name, Some(event), Some(ctx))
    }

    fn span_inner(
        &self,
        name: &'static str,
        event: Option<Event>,
        ctx: Option<SpanContext>,
    ) -> SpanGuard {
        if self.inner.is_none() {
            return SpanGuard { open: None };
        }
        let mut token = self.begin_span(name, event);
        token.ctx = ctx;
        SpanGuard {
            open: Some((self.clone(), token)),
        }
    }

    /// Manually open a span. Prefer [`span`](Self::span): the guard closes
    /// on every exit path, the token does not. Outside `apio-trace` the
    /// `trace-discipline` lint rejects this pair.
    pub fn begin_span(&self, name: &'static str, event: Option<Event>) -> SpanToken {
        let Some(inner) = self.inner.as_ref() else {
            return SpanToken {
                id: 0,
                parent: 0,
                tid: 0,
                name,
                start_nanos: 0,
                event,
                ctx: None,
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = inner.parent();
        SPAN_STACK.with(|s| s.borrow_mut().push((inner.tracer_id, id)));
        SpanToken {
            id,
            parent,
            tid: inner.tid(),
            name,
            start_nanos: inner.clock.now_nanos(),
            event,
            ctx: None,
        }
    }

    /// Close a span opened with [`begin_span`](Self::begin_span).
    pub fn end_span(&self, token: SpanToken) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        if token.id == 0 {
            return; // token from a disabled tracer
        }
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s
                .iter()
                .rposition(|&(tr, id)| tr == inner.tracer_id && id == token.id)
            {
                s.remove(pos);
            }
        });
        let end = inner.clock.now_nanos();
        let dur = end.saturating_sub(token.start_nanos);
        let name_key = token.name.as_ptr() as usize;
        HISTO_CACHE.with(|c| {
            let mut c = c.borrow_mut();
            match c
                .iter()
                .find(|(tr, n, _)| *tr == inner.tracer_id && *n == name_key)
            {
                Some((_, _, h)) => h.record(dur),
                None => {
                    let h = inner.metrics.histogram(token.name);
                    h.record(dur);
                    if c.len() >= 64 {
                        c.remove(0);
                    }
                    c.push((inner.tracer_id, name_key, h));
                }
            }
        });
        inner.push_record(Record {
            seq: inner.next_seq.fetch_add(1, Ordering::Relaxed),
            kind: RecordKind::Span,
            name: token.name,
            id: token.id,
            parent: token.parent,
            tid: token.tid,
            start_nanos: token.start_nanos,
            dur_nanos: dur,
            event: token.event,
            ctx: token.ctx,
        });
    }

    /// Emit an instant event, parented under the innermost open span on
    /// this thread.
    pub fn instant(&self, name: &'static str, event: Event) {
        self.instant_inner(name, event, None);
    }

    /// Emit an instant event tagged with a cross-rank [`SpanContext`] —
    /// the causal-edge form (barrier entry/exit, write-handoff, settle).
    pub fn instant_ctx(&self, name: &'static str, ctx: SpanContext, event: Event) {
        self.instant_inner(name, event, Some(ctx));
    }

    fn instant_inner(&self, name: &'static str, event: Event, ctx: Option<SpanContext>) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let now = inner.clock.now_nanos();
        inner.push_record(Record {
            seq: inner.next_seq.fetch_add(1, Ordering::Relaxed),
            kind: RecordKind::Instant,
            name,
            id: 0,
            parent: inner.parent(),
            tid: inner.tid(),
            start_nanos: now,
            dur_nanos: 0,
            event: Some(event),
            ctx,
        });
    }

    /// Snapshot every retained record, in emission (`seq`) order. On a
    /// flight recorder this is the ring contents — the last N per shard.
    pub fn sink(&self) -> TraceSink {
        TraceSink {
            records: self.collect_records(),
        }
    }

    /// Raw access to the retained records, in emission order.
    ///
    /// Outside `apio-trace` the `trace-discipline` lint rejects this:
    /// flight-recorder dumps must go through [`Tracer::flight_dump`] and
    /// the exporter API so every dump is a well-formed export, not an
    /// ad-hoc record walk.
    pub fn flight_records(&self) -> Vec<Record> {
        self.collect_records()
    }

    /// Dump the retained records (ring contents on a flight recorder,
    /// everything on a full tracer) for export — see [`FlightDump`].
    pub fn flight_dump(&self) -> FlightDump {
        let (capacity, dropped) = match self.inner.as_ref() {
            Some(inner) => (
                inner.flight_cap.map(|c| c * SHARDS).unwrap_or(0),
                inner
                    .shards
                    .iter()
                    .map(|s| lock_shard(s).dropped())
                    .sum(),
            ),
            None => (0, 0),
        };
        FlightDump::new(self.sink(), capacity, dropped)
    }

    fn collect_records(&self) -> Vec<Record> {
        let mut records = Vec::new();
        if let Some(inner) = self.inner.as_ref() {
            for shard in &inner.shards {
                records.extend(lock_shard(shard).records().iter().cloned());
            }
        }
        records.sort_by_key(|r| r.seq);
        records
    }
}

/// An in-memory snapshot of a trace with structural queries — the test
/// substrate for trace-assertion suites.
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    records: Vec<Record>,
}

impl TraceSink {
    /// A sink over an explicit record list (e.g. for exporter tests).
    pub fn from_records(records: Vec<Record>) -> Self {
        TraceSink { records }
    }

    /// All records in emission order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// All closed spans named `name`, in emission order.
    pub fn spans(&self, name: &str) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| r.kind == RecordKind::Span && r.name == name)
            .collect()
    }

    /// Records whose event matches `pred`, in emission order.
    pub fn events_where(&self, pred: impl Fn(&Event) -> bool) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| r.event.as_ref().is_some_and(&pred))
            .collect()
    }

    /// The span record with id `id`.
    pub fn by_id(&self, id: u64) -> Option<&Record> {
        self.records
            .iter()
            .find(|r| r.kind == RecordKind::Span && r.id == id)
    }

    /// Whether `rec` sits (transitively) inside a span named `name` on
    /// its thread.
    pub fn within_span_named(&self, rec: &Record, name: &str) -> bool {
        let mut parent = rec.parent;
        let mut hops = 0;
        while parent != 0 && hops < 64 {
            match self.by_id(parent) {
                Some(p) if p.name == name => return true,
                Some(p) => parent = p.parent,
                None => return false,
            }
            hops += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn virt() -> (Tracer, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new(0));
        (Tracer::with_clock(clock.clone()), clock)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        {
            let _g = t.span("noop");
            t.instant(
                "e",
                Event::Snapshot {
                    bytes: 1,
                    staged: false,
                },
            );
        }
        assert!(t.sink().records().is_empty());
        assert!(t.metrics().is_none());
    }

    #[test]
    fn guard_records_duration_and_nesting() {
        let (t, clock) = virt();
        {
            let _outer = t.span("outer");
            clock.advance(100);
            {
                let _inner = t.span_with(
                    "inner",
                    Event::Snapshot {
                        bytes: 42,
                        staged: true,
                    },
                );
                clock.advance(50);
                t.instant(
                    "mark",
                    Event::RetryAttempt {
                        attempt: 1,
                        delay_nanos: 5,
                    },
                );
            }
            clock.advance(25);
        }
        let sink = t.sink();
        let outer = sink.spans("outer")[0];
        let inner = sink.spans("inner")[0];
        assert_eq!(outer.start_nanos, 0);
        assert_eq!(outer.dur_nanos, 175);
        assert_eq!(inner.start_nanos, 100);
        assert_eq!(inner.dur_nanos, 50);
        assert_eq!(inner.parent, outer.id);
        let mark = &sink.events_where(|e| matches!(e, Event::RetryAttempt { .. }))[0];
        assert_eq!(mark.parent, inner.id);
        assert!(sink.within_span_named(mark, "outer"));
        assert!(sink.within_span_named(mark, "inner"));
        assert!(!sink.within_span_named(mark, "absent"));
        // The inner span closed first, so it carries the earlier seq.
        assert!(inner.seq < outer.seq);
    }

    #[test]
    fn span_durations_feed_metrics() {
        let (t, clock) = virt();
        for _ in 0..10 {
            let _g = t.span("op");
            clock.advance(1_000);
        }
        let m = t.metrics().unwrap();
        let h = m.histogram("op");
        assert_eq!(h.count(), 10);
        assert!(h.p50() >= 1_000 && h.p50() < 2_048);
    }

    #[test]
    fn spans_cross_threads_without_mixing_stacks() {
        let (t, clock) = virt();
        clock.advance(10);
        let app = t.span("app");
        let t2 = t.clone();
        std::thread::spawn(move || {
            let _bg = t2.span("background");
            t2.instant(
                "retry",
                Event::RetryAttempt {
                    attempt: 1,
                    delay_nanos: 0,
                },
            );
        })
        .join()
        .unwrap();
        drop(app);
        let sink = t.sink();
        let bg = sink.spans("background")[0];
        assert_eq!(bg.parent, 0, "worker thread has its own stack");
        let retry = sink.events_where(|e| matches!(e, Event::RetryAttempt { .. }))[0];
        assert!(sink.within_span_named(retry, "background"));
        assert!(!sink.within_span_named(retry, "app"));
        assert_ne!(bg.tid, sink.spans("app")[0].tid);
    }

    #[test]
    fn two_tracers_on_one_thread_do_not_cross_parent() {
        let (a, _) = virt();
        let (b, _) = virt();
        let _ga = a.span("a_outer");
        {
            let _gb = b.span("b_span");
            b.instant(
                "b_mark",
                Event::Degrade {
                    dataset: 1,
                    bytes: 2,
                },
            );
        }
        let sb = b.sink();
        let mark = sb.events_where(|e| matches!(e, Event::Degrade { .. }))[0];
        assert!(sb.within_span_named(mark, "b_span"));
        assert!(!sb.within_span_named(mark, "a_outer"));
        assert_eq!(sb.spans("b_span")[0].parent, 0);
    }

    #[test]
    fn ctx_spans_and_instants_carry_their_context() {
        let (t, clock) = virt();
        let ctx = SpanContext::new(3, 7, 11);
        {
            let _g = t.span_ctx("rank.compute", ctx);
            clock.advance(500);
            t.instant_ctx("handoff", ctx, Event::WriteHandoff { epoch: 11, bytes: 64 });
        }
        {
            let _g = t.span_ctx_with(
                "rank.write",
                ctx,
                Event::BarrierEnter { epoch: 11 },
            );
            clock.advance(100);
        }
        // Untagged records stay untagged.
        {
            let _g = t.span("plain");
        }
        let sink = t.sink();
        assert_eq!(sink.spans("rank.compute")[0].ctx, Some(ctx));
        assert_eq!(sink.spans("rank.write")[0].ctx, Some(ctx));
        assert_eq!(sink.spans("plain")[0].ctx, None);
        let edge = sink.events_where(|e| matches!(e, Event::WriteHandoff { .. }))[0];
        assert_eq!(edge.ctx, Some(ctx));
        assert_eq!(edge.kind, RecordKind::Instant);
        // The instant fired inside the compute span on the same thread.
        assert!(sink.within_span_named(edge, "rank.compute"));
    }

    #[test]
    fn manual_begin_end_matches_guard_semantics() {
        let (t, clock) = virt();
        let token = t.begin_span("manual", None);
        clock.advance(30);
        t.instant(
            "in_manual",
            Event::WalTruncated { offset: 9 },
        );
        t.end_span(token);
        let sink = t.sink();
        assert_eq!(sink.spans("manual")[0].dur_nanos, 30);
        let e = sink.events_where(|e| matches!(e, Event::WalTruncated { .. }))[0];
        assert!(sink.within_span_named(e, "manual"));
    }
}
