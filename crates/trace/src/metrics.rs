//! Metrics: monotonic counters and fixed-bucket log2 histograms.
//!
//! Registration (first use of a name) takes a lock and allocates; after
//! that, every handle is a clone of an `Arc` around plain atomics, so the
//! hot path — `Counter::add`, `Histogram::record` — never allocates and
//! never blocks. Histograms bucket by `floor(log2(v)) + 1` into 64 fixed
//! buckets, which is the classic latency-histogram shape: exact enough for
//! p50/p95/p99 while costing one `fetch_add` per observation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of log2 buckets; values `>= 2^62` share the top bucket.
const BUCKETS: usize = 64;

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh standalone counter (registry-less use).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket log2 histogram handle. Cloning shares the cells.
///
/// Percentile accessors return the *upper bound* of the bucket containing
/// the requested rank — an overestimate by at most 2x, which is the usual
/// contract for log2 latency histograms.
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a value: 0 holds exactly 0, bucket `i` holds
/// `[2^(i-1), 2^i)`, the top bucket holds everything else.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (what percentiles report).
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A fresh standalone histogram (registry-less use).
    pub fn new() -> Self {
        Histogram {
            cells: Arc::new(HistCells {
                buckets: [0u64; BUCKETS].map(AtomicU64::new),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation. Lock-free; never allocates.
    pub fn record(&self, v: u64) {
        self.cells.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (for means).
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Value at quantile `q` in `0.0..=1.0` (bucket upper bound); 0 when
    /// empty.
    pub fn percentile(&self, q: f64) -> u64 {
        // Load the buckets once and derive the rank target from that same
        // pass: the separate count cell can momentarily disagree with the
        // buckets while a drain ([`snapshot_and_reset`](Self::snapshot_and_reset))
        // or `record` is in flight, and a target beyond the walked total
        // would fall through to the top bucket bound (`u64::MAX`) — a
        // wild misread for a benign race.
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.cells.buckets[i].load(Ordering::Relaxed);
        }
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// An owned point-in-time copy of the cells; the live histogram keeps
    /// accumulating.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.cells.buckets[i].load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.cells.sum.load(Ordering::Relaxed),
        }
    }

    /// Atomically drain the cells into an owned snapshot — the windowing
    /// primitive for the series aggregator.
    ///
    /// Each cell is `swap(0)`ed individually, so every observation lands
    /// in exactly one snapshot across repeated calls: nothing is lost to
    /// an in-flight `record`, it just lands in this window or the next.
    /// (A racing observation may momentarily split its bucket and sum
    /// across two windows; merging the windows — [`HistogramSnapshot::merge`]
    /// — reassembles it exactly.) The snapshot's `count` is derived from
    /// its buckets so each window is internally consistent.
    pub fn snapshot_and_reset(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.cells.buckets[i].swap(0, Ordering::Relaxed);
        }
        let sum = self.cells.sum.swap(0, Ordering::Relaxed);
        // Keep the live count cell in step with the drained buckets.
        let drained: u64 = buckets.iter().sum();
        self.cells.count.fetch_sub(
            drained.min(self.cells.count.load(Ordering::Relaxed)),
            Ordering::Relaxed,
        );
        HistogramSnapshot { buckets, sum }
    }
}

/// An owned, mergeable copy of a histogram's buckets — what
/// [`Histogram::snapshot`] / [`Histogram::snapshot_and_reset`] return.
///
/// Merging windowed snapshots recovers the cumulative distribution, so a
/// consumer can report both per-window and since-start percentiles from
/// the same drain stream.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations (the identity for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0u64; BUCKETS],
            sum: 0,
        }
    }

    /// Fold `other`'s observations into this snapshot. Merging an empty
    /// snapshot is the identity — p50/p95/p99, count, and sum are
    /// unchanged. Saturating, so pathological inputs (e.g. a snapshot
    /// merged into itself in a loop) degrade to pinned buckets instead of
    /// a panic or wraparound that would corrupt every percentile.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Observations in the snapshot (sum over buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether the snapshot holds no observations.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all observations (for means).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Value at quantile `q` in `0.0..=1.0` (bucket upper bound); 0 when
    /// empty. Same contract as [`Histogram::percentile`].
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

struct MetricsInner {
    counters: RwLock<Vec<(String, Counter)>>,
    histograms: RwLock<Vec<(String, Histogram)>>,
}

/// A named registry of [`Counter`]s and [`Histogram`]s.
///
/// `counter`/`histogram` are get-or-register: the first call for a name
/// takes the write lock and allocates the entry; later calls take the read
/// lock and clone the handle. Keep handles where the hot path can reuse
/// them instead of re-looking-up by name.
#[derive(Clone)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Read a possibly poisoned lock: metrics are plain atomics, so a panic in
/// an unrelated holder cannot leave them inconsistent.
macro_rules! lock {
    ($l:expr) => {
        match $l {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    };
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics {
            inner: Arc::new(MetricsInner {
                counters: RwLock::new(Vec::new()),
                histograms: RwLock::new(Vec::new()),
            }),
        }
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = lock!(self.inner.counters.read())
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.clone())
        {
            return c;
        }
        let mut w = lock!(self.inner.counters.write());
        if let Some((_, c)) = w.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::new();
        w.push((name.to_owned(), c.clone()));
        c
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = lock!(self.inner.histograms.read())
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.clone())
        {
            return h;
        }
        let mut w = lock!(self.inner.histograms.write());
        if let Some((_, h)) = w.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::new();
        w.push((name.to_owned(), h.clone()));
        h
    }

    /// Current value of counter `name` (0 if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        lock!(self.inner.counters.read())
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.get())
            .unwrap_or(0)
    }

    /// All counter names and values, in registration order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock!(self.inner.counters.read())
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect()
    }

    /// All histogram names and handles, in registration order.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        lock!(self.inner.histograms.read())
            .iter()
            .map(|(n, h)| (n.clone(), h.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_by_name() {
        let m = Metrics::new();
        m.counter("ops").add(3);
        m.counter("ops").inc();
        assert_eq!(m.counter_value("ops"), 4);
        assert_eq!(m.counter_value("missing"), 0);
        assert_eq!(m.counters(), vec![("ops".to_owned(), 4)]);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(63), u64::MAX);
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let h = Histogram::new();
        // 90 fast ops (~1us), 9 slow (~1ms), 1 very slow (~1s).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..9 {
            h.record(1_000_000);
        }
        h.record(1_000_000_000);
        assert_eq!(h.count(), 100);
        let p50 = h.p50();
        assert!((1_000..4_000).contains(&p50), "p50 ~1us, got {p50}");
        let p95 = h.p95();
        assert!((1_000_000..4_000_000).contains(&p95), "p95 ~1ms, got {p95}");
        let p99 = h.p99();
        assert!(
            (1_000_000..4_000_000).contains(&p99),
            "rank 99 of 100 is still in the 1ms group, got {p99}"
        );
        let max = h.percentile(1.0);
        assert!(max >= 1_000_000_000, "max ~1s, got {max}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn snapshot_and_reset_windows_without_losing_observations() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(1_000);
        }
        let w1 = h.snapshot_and_reset();
        assert_eq!(w1.count(), 10);
        assert_eq!(w1.sum(), 10_000);
        assert_eq!(h.count(), 0, "live histogram drained");
        assert_eq!(h.p50(), 0);

        for _ in 0..5 {
            h.record(1_000_000);
        }
        let w2 = h.snapshot_and_reset();
        assert_eq!(w2.count(), 5);
        assert!((1_000_000..4_000_000).contains(&w2.p50()));

        // Merging the windows recovers the cumulative distribution.
        let mut total = HistogramSnapshot::empty();
        total.merge(&w1);
        total.merge(&w2);
        assert_eq!(total.count(), 15);
        assert_eq!(total.sum(), 10_000 + 5_000_000);
        assert!((1_000..4_000).contains(&total.p50()), "p50 in the fast group");
        let p99 = total.p99();
        assert!(p99 >= 1_000_000, "p99 in the slow group, got {p99}");
        assert!((total.mean() - (5_010_000.0 / 15.0)).abs() < 1.0);
    }

    #[test]
    fn plain_snapshot_leaves_the_histogram_untouched() {
        let h = Histogram::new();
        h.record(7);
        h.record(9);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum(), 16);
        assert_eq!(h.count(), 2, "snapshot() must not drain");
        assert!(HistogramSnapshot::empty().is_empty());
        assert_eq!(HistogramSnapshot::empty().percentile(0.99), 0);
        assert_eq!(HistogramSnapshot::empty().mean(), 0.0);
    }

    #[test]
    fn merging_an_empty_snapshot_preserves_percentiles() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let mut s = h.snapshot();
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        let (count, sum, mean) = (s.count(), s.sum(), s.mean());
        s.merge(&HistogramSnapshot::empty());
        assert_eq!(s.p50(), p50, "empty merge perturbed p50");
        assert_eq!(s.p95(), p95, "empty merge perturbed p95");
        assert_eq!(s.p99(), p99, "empty merge perturbed p99");
        assert_eq!(s.count(), count);
        assert_eq!(s.sum(), sum);
        assert_eq!(s.mean(), mean);
        // And the other direction: empty ∪ populated == populated.
        let mut e = HistogramSnapshot::empty();
        e.merge(&s);
        assert_eq!((e.p50(), e.p95(), e.p99()), (p50, p95, p99));
        assert_eq!((e.count(), e.sum()), (count, sum));
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = HistogramSnapshot::empty();
        a.buckets[1] = u64::MAX - 1;
        a.sum = u64::MAX - 1;
        let mut b = HistogramSnapshot::empty();
        b.buckets[1] = 5;
        b.sum = 5;
        a.merge(&b);
        assert_eq!(a.buckets[1], u64::MAX);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.p50(), 1, "percentiles still answer after saturation");
    }

    #[test]
    fn percentile_stays_in_range_while_draining_concurrently() {
        // A racing drain swaps buckets to zero before decrementing the
        // count cell, so a percentile read using the stale count could
        // walk past every loaded bucket and report u64::MAX. The
        // single-pass walk derives its rank target from the loaded
        // buckets themselves, so the answer is always the bound of a
        // bucket that actually held observations.
        let h = Histogram::new();
        let stop = Arc::new(AtomicU64::new(0));
        let recorder = {
            let h = h.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    h.record(1_000);
                }
            })
        };
        let drainer = {
            let h = h.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    let _ = h.snapshot_and_reset();
                }
            })
        };
        for _ in 0..50_000 {
            let p = h.p99();
            assert!(
                p == 0 || (1_000..2_048).contains(&p),
                "p99 misread under drain race: {p}"
            );
        }
        stop.store(1, Ordering::Relaxed);
        recorder.join().unwrap();
        drainer.join().unwrap();
    }

    #[test]
    fn concurrent_drain_and_record_partition_observations() {
        let h = Histogram::new();
        let recorder = {
            let h = h.clone();
            std::thread::spawn(move || {
                for _ in 0..10_000u64 {
                    h.record(3);
                }
            })
        };
        let mut total = HistogramSnapshot::empty();
        while !recorder.is_finished() {
            total.merge(&h.snapshot_and_reset());
        }
        recorder.join().unwrap();
        total.merge(&h.snapshot_and_reset());
        assert_eq!(total.count(), 10_000, "every observation lands in exactly one window");
        assert_eq!(total.sum(), 30_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = Metrics::new();
        let mut joins = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            joins.push(std::thread::spawn(move || {
                let h = m.histogram("lat");
                let c = m.counter("ops");
                for i in 0..1000u64 {
                    h.record(i);
                    c.inc();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(m.counter_value("ops"), 8000);
        assert_eq!(m.histogram("lat").count(), 8000);
    }
}
