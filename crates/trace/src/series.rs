//! Streaming per-epoch telemetry: windowed series + rate-drift detection.
//!
//! The paper's Fig. 2 loop fits a rate model against a *history of
//! observed transfers* — but a fitted model goes stale the moment the
//! storage system changes regime (a burst buffer drains, a PFS degrades,
//! contention arrives). This module is the runtime half of that loop: a
//! [`SeriesAggregator`] folds the live trace into one point per epoch
//! (aggregate I/O rate, retry count, breaker state, staged-queue depth,
//! windowed latency percentiles via [`Histogram::snapshot_and_reset`]),
//! smooths the rate with an EWMA, and runs a two-sided **Page–Hinkley
//! test** on the log-rate. A fired [`DriftAlarm`] means the observed
//! `f_io_rate` (Eq. 3/4) has shifted persistently — the signal
//! `apio_core::adaptive::AdaptiveRuntime` uses to invalidate and refit
//! its `ModeAdvisor`.
//!
//! ## Detector
//!
//! The Page–Hinkley statistic accumulates deviations of each sample from
//! the running mean beyond a tolerance `delta`, clamped at zero (the
//! standard `m_t - min(m_t)` formulation, kept in its equivalent
//! reset-to-zero CUSUM form):
//!
//! ```text
//! up_t   = max(0, up_{t-1}   + (x_t - mean_t - delta))   // rate rose
//! down_t = max(0, down_{t-1} + (mean_t - x_t - delta))   // rate fell
//! ```
//!
//! An alarm fires when either side exceeds `lambda`. Samples are
//! `ln(rate)`, so `delta` and `lambda` are *relative* changes —
//! `lambda = 1.0` demands roughly an e-fold sustained shift, immune to
//! the absolute scale of the backend. Epochs with no I/O are skipped
//! (they carry no rate evidence). After an alarm the detector resets and
//! relearns its mean from the new regime.

use std::collections::VecDeque;

use crate::metrics::{Histogram, HistogramSnapshot};
use crate::{Event, Record, RecordKind};

/// Which way the aggregate I/O rate moved when an alarm fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftDirection {
    /// The rate rose persistently (e.g. contention cleared).
    Up,
    /// The rate fell persistently (e.g. device degraded).
    Down,
}

impl DriftDirection {
    /// Lower-case tag for reports (`"up"` / `"down"`).
    pub fn tag(self) -> &'static str {
        match self {
            DriftDirection::Up => "up",
            DriftDirection::Down => "down",
        }
    }
}

/// A fired drift alarm: the observed I/O rate shifted persistently away
/// from its recent mean.
#[derive(Clone, Debug)]
pub struct DriftAlarm {
    /// 0-based epoch index the alarm fired in.
    pub epoch: u64,
    /// The epoch's observed aggregate rate, bytes/second.
    pub observed_rate: f64,
    /// EWMA-smoothed rate at the alarm.
    pub ewma_rate: f64,
    /// Which way the rate moved.
    pub direction: DriftDirection,
    /// The Page–Hinkley statistic that crossed the threshold (log-rate
    /// units).
    pub statistic: f64,
    /// The threshold (`lambda`) it crossed.
    pub threshold: f64,
}

/// Detector and window parameters (see module docs; DESIGN.md §11).
#[derive(Clone, Copy, Debug)]
pub struct SeriesConfig {
    /// EWMA smoothing factor in `(0, 1]`; higher tracks faster.
    pub ewma_alpha: f64,
    /// Epoch points retained for reports (older points are discarded).
    pub window: usize,
    /// Page–Hinkley tolerance on `ln(rate)` — per-epoch jitter smaller
    /// than this never accumulates.
    pub ph_delta: f64,
    /// Page–Hinkley alarm threshold on the accumulated statistic.
    pub ph_lambda: f64,
    /// I/O-bearing epochs observed before the detector may fire (the
    /// running mean needs evidence first).
    pub warmup_epochs: u64,
}

impl Default for SeriesConfig {
    fn default() -> Self {
        SeriesConfig {
            ewma_alpha: 0.3,
            window: 256,
            ph_delta: 0.05,
            ph_lambda: 1.0,
            warmup_epochs: 5,
        }
    }
}

/// Two-sided Page–Hinkley change detector (reset-to-zero CUSUM form).
#[derive(Clone, Debug)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    warmup: u64,
    n: u64,
    mean: f64,
    up: f64,
    down: f64,
}

impl PageHinkley {
    /// A detector with tolerance `delta`, threshold `lambda`, and a
    /// minimum of `warmup` samples before it may fire.
    pub fn new(delta: f64, lambda: f64, warmup: u64) -> Self {
        PageHinkley {
            delta,
            lambda,
            warmup,
            n: 0,
            mean: 0.0,
            up: 0.0,
            down: 0.0,
        }
    }

    /// Feed one sample; returns the fired direction and statistic if the
    /// accumulated deviation crossed the threshold.
    pub fn observe(&mut self, x: f64) -> Option<(DriftDirection, f64)> {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.up = (self.up + x - self.mean - self.delta).max(0.0);
        self.down = (self.down + self.mean - x - self.delta).max(0.0);
        if self.n <= self.warmup {
            return None;
        }
        if self.up > self.lambda {
            return Some((DriftDirection::Up, self.up));
        }
        if self.down > self.lambda {
            return Some((DriftDirection::Down, self.down));
        }
        None
    }

    /// Forget everything — called after an alarm so the detector relearns
    /// the new regime's mean.
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.up = 0.0;
        self.down = 0.0;
    }

    /// Samples observed since the last reset.
    pub fn samples(&self) -> u64 {
        self.n
    }
}

/// One completed epoch's aggregated telemetry.
#[derive(Clone, Debug)]
pub struct EpochPoint {
    /// 0-based epoch index.
    pub epoch: u64,
    /// Bytes moved through storage this epoch.
    pub io_bytes: u64,
    /// Nanoseconds spent moving them.
    pub io_nanos: u64,
    /// Aggregate I/O rate, bytes/second (0.0 when the epoch had no I/O).
    pub rate: f64,
    /// EWMA-smoothed rate.
    pub ewma_rate: f64,
    /// Retry attempts observed this epoch.
    pub retries: u64,
    /// Circuit-breaker transitions observed this epoch.
    pub breaker_transitions: u64,
    /// Breaker state at epoch end (`"closed"`, `"open"`, `"half-open"`).
    pub breaker_state: &'static str,
    /// Maximum staged-queue depth observed this epoch.
    pub queue_depth: u64,
    /// Windowed latency percentiles from the attached histogram (0 when
    /// none is attached or it saw nothing this epoch).
    pub lat_p50: u64,
    /// 95th percentile of the windowed latency.
    pub lat_p95: u64,
    /// 99th percentile of the windowed latency.
    pub lat_p99: u64,
}

/// Running accumulator for the epoch in progress.
#[derive(Clone, Copy, Debug, Default)]
struct Accum {
    io_bytes: u64,
    io_nanos: u64,
    retries: u64,
    breaker_transitions: u64,
    queue_depth: u64,
}

/// Folds live telemetry into per-epoch points and watches the aggregate
/// I/O rate for drift. Feed it directly ([`record_io`](Self::record_io)
/// and friends) or from a trace record stream
/// ([`observe_record`](Self::observe_record)); close each epoch with
/// [`end_epoch`](Self::end_epoch).
#[derive(Clone)]
pub struct SeriesAggregator {
    cfg: SeriesConfig,
    epoch: u64,
    cur: Accum,
    breaker_state: &'static str,
    ewma: Option<f64>,
    detector: PageHinkley,
    points: VecDeque<EpochPoint>,
    alarms: Vec<DriftAlarm>,
    latency: Option<Histogram>,
    cumulative_latency: HistogramSnapshot,
}

impl Default for SeriesAggregator {
    fn default() -> Self {
        SeriesAggregator::new(SeriesConfig::default())
    }
}

impl SeriesAggregator {
    /// A fresh aggregator with the given window/detector parameters.
    pub fn new(cfg: SeriesConfig) -> Self {
        SeriesAggregator {
            detector: PageHinkley::new(cfg.ph_delta, cfg.ph_lambda, cfg.warmup_epochs),
            cfg,
            epoch: 0,
            cur: Accum::default(),
            breaker_state: "closed",
            ewma: None,
            points: VecDeque::new(),
            alarms: Vec::new(),
            latency: None,
            cumulative_latency: HistogramSnapshot::empty(),
        }
    }

    /// Attach a latency histogram (e.g. the tracer's `vol.write` span
    /// histogram): each [`end_epoch`](Self::end_epoch) drains it with
    /// [`Histogram::snapshot_and_reset`] into the epoch's percentiles and
    /// merges the window into the cumulative distribution.
    pub fn attach_latency(&mut self, h: Histogram) {
        self.latency = Some(h);
    }

    /// One storage transfer: `bytes` moved in `nanos` nanoseconds.
    pub fn record_io(&mut self, bytes: u64, nanos: u64) {
        self.cur.io_bytes += bytes;
        self.cur.io_nanos += nanos;
    }

    /// One retry attempt.
    pub fn record_retry(&mut self) {
        self.cur.retries += 1;
    }

    /// A circuit-breaker transition into `to`.
    pub fn record_breaker(&mut self, to: &'static str) {
        self.cur.breaker_transitions += 1;
        self.breaker_state = to;
    }

    /// The staged queue reached `depth` in-flight operations.
    pub fn record_queue_depth(&mut self, depth: u64) {
        self.cur.queue_depth = self.cur.queue_depth.max(depth);
    }

    /// Fold one trace record into the current epoch. Maps the typed
    /// events: `BackendBatch` spans feed the I/O rate, `RetryAttempt` /
    /// `BreakerTransition` feed their series, and an `EpochMark` closes
    /// the epoch (feeding its I/O totals first) — so replaying a record
    /// stream reproduces the live aggregation.
    pub fn observe_record(&mut self, rec: &Record) -> Option<DriftAlarm> {
        match rec.event {
            Some(Event::BackendBatch { bytes, .. }) if rec.kind == RecordKind::Span => {
                self.record_io(bytes, rec.dur_nanos);
                None
            }
            Some(Event::RetryAttempt { .. }) => {
                self.record_retry();
                None
            }
            Some(Event::BreakerTransition { to, .. }) => {
                self.record_breaker(to);
                None
            }
            Some(Event::EpochMark { io_nanos, bytes, .. }) => {
                self.record_io(bytes, io_nanos);
                self.end_epoch()
            }
            _ => None,
        }
    }

    /// Close the epoch in progress: compute its rate, update the EWMA,
    /// feed the drift detector, window the attached latency histogram,
    /// and append the [`EpochPoint`]. Returns the alarm if one fired.
    pub fn end_epoch(&mut self) -> Option<DriftAlarm> {
        let cur = std::mem::take(&mut self.cur);
        let rate = if cur.io_nanos > 0 {
            cur.io_bytes as f64 * 1e9 / cur.io_nanos as f64
        } else {
            0.0
        };
        let ewma = match (self.ewma, rate > 0.0) {
            (Some(prev), true) => {
                self.cfg.ewma_alpha * rate + (1.0 - self.cfg.ewma_alpha) * prev
            }
            (Some(prev), false) => prev,
            (None, true) => rate,
            (None, false) => 0.0,
        };
        if rate > 0.0 {
            self.ewma = Some(ewma);
        }

        // Epochs without I/O carry no rate evidence: skip the detector.
        let fired = if rate > 0.0 {
            self.detector.observe(rate.ln())
        } else {
            None
        };
        let alarm = fired.map(|(direction, statistic)| DriftAlarm {
            epoch: self.epoch,
            observed_rate: rate,
            ewma_rate: ewma,
            direction,
            statistic,
            threshold: self.cfg.ph_lambda,
        });
        if let Some(a) = &alarm {
            self.alarms.push(a.clone());
            self.detector.reset();
        }

        let (p50, p95, p99) = match &self.latency {
            Some(h) => {
                let w = h.snapshot_and_reset();
                let ps = (w.p50(), w.p95(), w.p99());
                self.cumulative_latency.merge(&w);
                ps
            }
            None => (0, 0, 0),
        };

        self.points.push_back(EpochPoint {
            epoch: self.epoch,
            io_bytes: cur.io_bytes,
            io_nanos: cur.io_nanos,
            rate,
            ewma_rate: ewma,
            retries: cur.retries,
            breaker_transitions: cur.breaker_transitions,
            breaker_state: self.breaker_state,
            queue_depth: cur.queue_depth,
            lat_p50: p50,
            lat_p95: p95,
            lat_p99: p99,
        });
        while self.points.len() > self.cfg.window.max(1) {
            self.points.pop_front();
        }
        self.epoch += 1;
        alarm
    }

    /// Epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// The retained window of epoch points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &EpochPoint> {
        self.points.iter()
    }

    /// The most recent completed epoch point.
    pub fn last(&self) -> Option<&EpochPoint> {
        self.points.back()
    }

    /// Every alarm fired so far, in epoch order.
    pub fn alarms(&self) -> &[DriftAlarm] {
        &self.alarms
    }

    /// Current EWMA-smoothed rate, if any I/O has been seen.
    pub fn ewma_rate(&self) -> Option<f64> {
        self.ewma
    }

    /// Breaker state as of the latest observation.
    pub fn breaker_state(&self) -> &'static str {
        self.breaker_state
    }

    /// Cumulative latency distribution (every drained window merged).
    pub fn cumulative_latency(&self) -> &HistogramSnapshot {
        &self.cumulative_latency
    }

    /// The configuration the aggregator runs with.
    pub fn config(&self) -> &SeriesConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed `n` epochs of `rate` bytes/s (1 MiB per epoch).
    fn feed(agg: &mut SeriesAggregator, n: usize, rate: f64) -> Option<DriftAlarm> {
        let mut last = None;
        for _ in 0..n {
            let bytes = 1u64 << 20;
            let nanos = (bytes as f64 * 1e9 / rate) as u64;
            agg.record_io(bytes, nanos);
            if let Some(a) = agg.end_epoch() {
                last = Some(a);
            }
        }
        last
    }

    #[test]
    fn constant_rate_never_alarms() {
        let mut agg = SeriesAggregator::default();
        assert!(feed(&mut agg, 1000, 1e9).is_none());
        assert!(agg.alarms().is_empty());
        let last = agg.last().unwrap();
        assert!((last.rate - 1e9).abs() / 1e9 < 1e-6);
        assert!((last.ewma_rate - 1e9).abs() / 1e9 < 1e-6);
    }

    #[test]
    fn rate_step_down_fires_a_down_alarm_quickly() {
        let mut agg = SeriesAggregator::default();
        feed(&mut agg, 10, 1e9);
        let alarm = feed(&mut agg, 3, 1e7).expect("100x drop must fire");
        assert_eq!(alarm.direction, DriftDirection::Down);
        assert!(alarm.epoch >= 10 && alarm.epoch < 13, "fired at {}", alarm.epoch);
        assert!(alarm.statistic > alarm.threshold);
        assert!(alarm.observed_rate < 2e7);
    }

    #[test]
    fn rate_step_up_fires_an_up_alarm() {
        let mut agg = SeriesAggregator::default();
        feed(&mut agg, 10, 1e8);
        let alarm = feed(&mut agg, 3, 1e10).expect("100x rise must fire");
        assert_eq!(alarm.direction, DriftDirection::Up);
    }

    #[test]
    fn detector_resets_and_relearns_after_an_alarm() {
        let mut agg = SeriesAggregator::default();
        feed(&mut agg, 10, 1e9);
        assert!(feed(&mut agg, 5, 1e7).is_some());
        // Staying in the new regime fires nothing further.
        assert!(feed(&mut agg, 50, 1e7).is_none());
        assert_eq!(agg.alarms().len(), 1);
    }

    #[test]
    fn warmup_suppresses_early_alarms() {
        let cfg = SeriesConfig {
            warmup_epochs: 8,
            ..SeriesConfig::default()
        };
        let mut agg = SeriesAggregator::new(cfg);
        // A wild swing inside the warmup window must not fire.
        feed(&mut agg, 4, 1e9);
        assert!(feed(&mut agg, 4, 1e6).is_none());
    }

    #[test]
    fn idle_epochs_carry_no_rate_evidence() {
        let mut agg = SeriesAggregator::default();
        feed(&mut agg, 10, 1e9);
        for _ in 0..100 {
            assert!(agg.end_epoch().is_none(), "idle epochs never alarm");
        }
        let last = agg.last().unwrap();
        assert_eq!(last.rate, 0.0);
        assert!((last.ewma_rate - 1e9).abs() / 1e9 < 1e-6, "EWMA holds");
        // I/O resuming at the same rate is still not drift.
        assert!(feed(&mut agg, 5, 1e9).is_none());
    }

    #[test]
    fn window_discards_old_points_but_keeps_counting() {
        let cfg = SeriesConfig {
            window: 4,
            ..SeriesConfig::default()
        };
        let mut agg = SeriesAggregator::new(cfg);
        feed(&mut agg, 10, 1e9);
        assert_eq!(agg.points().count(), 4);
        assert_eq!(agg.epochs(), 10);
        assert_eq!(agg.last().unwrap().epoch, 9);
        assert_eq!(agg.points().next().unwrap().epoch, 6);
    }

    #[test]
    fn series_tracks_retries_breaker_and_queue_depth() {
        let mut agg = SeriesAggregator::default();
        agg.record_io(1024, 1024);
        agg.record_retry();
        agg.record_retry();
        agg.record_breaker("open");
        agg.record_queue_depth(3);
        agg.record_queue_depth(7);
        agg.record_queue_depth(2);
        agg.end_epoch();
        let p = agg.last().unwrap();
        assert_eq!(p.retries, 2);
        assert_eq!(p.breaker_transitions, 1);
        assert_eq!(p.breaker_state, "open");
        assert_eq!(p.queue_depth, 7);
        // Per-epoch accumulators reset; breaker state persists.
        agg.end_epoch();
        let p = agg.last().unwrap();
        assert_eq!(p.retries, 0);
        assert_eq!(p.queue_depth, 0);
        assert_eq!(p.breaker_state, "open");
        assert_eq!(agg.breaker_state(), "open");
    }

    #[test]
    fn attached_histogram_windows_percentiles_per_epoch() {
        let h = Histogram::new();
        let mut agg = SeriesAggregator::default();
        agg.attach_latency(h.clone());

        for _ in 0..10 {
            h.record(1_000);
        }
        agg.record_io(1, 1);
        agg.end_epoch();
        let fast = agg.last().unwrap();
        assert!((1_000..4_000).contains(&fast.lat_p50));

        for _ in 0..10 {
            h.record(1_000_000);
        }
        agg.record_io(1, 1);
        agg.end_epoch();
        let slow = agg.last().unwrap();
        assert!(
            slow.lat_p50 >= 1_000_000,
            "window sees only this epoch's observations, got {}",
            slow.lat_p50
        );

        // The cumulative distribution merged both windows.
        let cum = agg.cumulative_latency();
        assert_eq!(cum.count(), 20);
        assert!((1_000..4_000).contains(&cum.percentile(0.25)));
        assert!(cum.p99() >= 1_000_000);
    }

    #[test]
    fn observe_record_maps_events_and_epoch_marks() {
        let mut agg = SeriesAggregator::default();
        let span = |event| Record {
            seq: 0,
            kind: RecordKind::Span,
            name: "backend.batch",
            id: 1,
            parent: 0,
            tid: 1,
            start_nanos: 0,
            dur_nanos: 1_000_000,
            event: Some(event),
            ctx: None,
        };
        let instant = |event| Record {
            seq: 0,
            kind: RecordKind::Instant,
            name: "e",
            id: 0,
            parent: 0,
            tid: 1,
            start_nanos: 0,
            dur_nanos: 0,
            event: Some(event),
            ctx: None,
        };
        agg.observe_record(&span(Event::BackendBatch {
            segments: 4,
            bytes: 1 << 20,
        }));
        agg.observe_record(&instant(Event::RetryAttempt {
            attempt: 1,
            delay_nanos: 10,
        }));
        agg.observe_record(&instant(Event::BreakerTransition {
            from: "closed",
            to: "open",
        }));
        agg.observe_record(&instant(Event::EpochMark {
            epoch: 0,
            comp_nanos: 5,
            io_nanos: 1_000_000,
            bytes: 1 << 20,
        }));
        assert_eq!(agg.epochs(), 1);
        let p = agg.last().unwrap();
        assert_eq!(p.io_bytes, 2 << 20, "batch bytes + epoch-mark bytes");
        assert_eq!(p.retries, 1);
        assert_eq!(p.breaker_state, "open");
        let expect = (2u64 << 20) as f64 * 1e9 / 2_000_000.0;
        assert!((p.rate - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn page_hinkley_is_scale_free_on_log_rates() {
        // The same relative step at two absolute scales fires identically.
        for base in [1e6f64, 1e12] {
            let mut d = PageHinkley::new(0.05, 1.0, 5);
            for _ in 0..10 {
                assert!(d.observe((base).ln()).is_none());
            }
            let fired = d.observe((base / 50.0).ln());
            assert!(
                matches!(fired, Some((DriftDirection::Down, _))),
                "50x drop at base {base} must fire"
            );
        }
    }
}
