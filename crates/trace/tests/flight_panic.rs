//! Panic-dump smoke: a flight tracer armed with [`install_panic_dump`]
//! leaves its black box behind when the process panics.

use std::panic;
use std::sync::Arc;

use apio_trace::{install_panic_dump, Event, Tracer, VirtualClock};

#[test]
fn panic_hook_writes_the_flight_ring_as_jsonl() {
    let path = std::env::temp_dir().join(format!("apio_flight_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let clock = Arc::new(VirtualClock::new(0));
    let tracer = Tracer::flight_with_clock(8, clock.clone());
    install_panic_dump(&tracer, &path);

    // Record more than the ring holds so the dump proves tail retention.
    for epoch in 0..20u64 {
        let guard = tracer.span("epoch.io");
        clock.advance(1_000);
        drop(guard);
        tracer.instant(
            "epoch.mark",
            Event::EpochMark {
                epoch,
                comp_nanos: 500,
                io_nanos: 1_000,
                bytes: 4096,
            },
        );
    }

    let before = apio_trace::flight::panic_dump_count();
    let result = panic::catch_unwind(|| panic!("intentional: flight-dump smoke"));
    assert!(result.is_err(), "the panic must propagate to catch_unwind");
    let _ = panic::take_hook();

    assert_eq!(
        apio_trace::flight::panic_dump_count(),
        before + 1,
        "exactly one dump written by this panic"
    );
    let dump = std::fs::read_to_string(&path).expect("panic hook wrote the dump file");
    let lines: Vec<&str> = dump.lines().collect();
    assert!(
        !lines.is_empty() && lines.len() <= 16,
        "dump is bounded by the ring ({} lines)",
        lines.len()
    );
    assert!(
        dump.contains("\"type\":\"EpochMark\""),
        "typed events survive into the dump"
    );
    assert!(
        dump.contains("\"epoch\":19"),
        "the ring retains the most recent epochs"
    );
    assert!(
        !dump.contains("\"epoch\":0,"),
        "the oldest epochs were overwritten"
    );
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "each line is a JSON object: {line}"
        );
    }

    let _ = std::fs::remove_file(&path);
}
