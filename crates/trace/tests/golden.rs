//! Exporter golden tests (ISSUE 4): under a seeded [`VirtualClock`] on a
//! single thread, both exporters are deterministic functions of the
//! traced scenario — byte for byte. The goldens pin the exact output so
//! an accidental format change (field order, float formatting, escaping)
//! fails loudly instead of silently breaking downstream tooling.

use std::sync::Arc;

use apio_trace::export::{chrome_json, jsonl};
use apio_trace::{Event, SpanContext, TraceSink, Tracer, VirtualClock};

/// The pinned scenario: a submit span wrapping a snapshot span and a
/// retry instant, with every duration chosen to exercise both the whole-
/// and fractional-microsecond formatting paths.
fn pinned_trace() -> TraceSink {
    let clock = Arc::new(VirtualClock::new(1_000));
    let t = Tracer::with_clock(clock.clone());
    let mut write = t.span_with(
        "vol.write",
        Event::VolCall {
            op: "write",
            dataset: 3,
            bytes: 4096,
        },
    );
    clock.advance(250);
    {
        let mut snap = t.span("vol.snapshot");
        clock.advance(2_000);
        snap.set_event(Event::Snapshot {
            bytes: 4096,
            staged: true,
        });
    }
    t.instant(
        "retry",
        Event::RetryAttempt {
            attempt: 1,
            delay_nanos: 500,
        },
    );
    clock.advance(750);
    write.set_event(Event::VolCall {
        op: "write",
        dataset: 3,
        bytes: 4096,
    });
    drop(write);
    t.sink()
}

const CHROME_GOLDEN: &str = concat!(
    "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n",
    "{\"name\":\"vol.snapshot\",\"cat\":\"apio\",\"ph\":\"X\",\"ts\":1.250,\"dur\":2,\"pid\":1,\"tid\":1,",
    "\"args\":{\"seq\":0,\"type\":\"Snapshot\",\"bytes\":4096,\"staged\":true}},\n",
    "{\"name\":\"retry\",\"cat\":\"apio\",\"ph\":\"i\",\"s\":\"t\",\"ts\":3.250,\"pid\":1,\"tid\":1,",
    "\"args\":{\"seq\":1,\"type\":\"RetryAttempt\",\"attempt\":1,\"delay_nanos\":500}},\n",
    "{\"name\":\"vol.write\",\"cat\":\"apio\",\"ph\":\"X\",\"ts\":1,\"dur\":3,\"pid\":1,\"tid\":1,",
    "\"args\":{\"seq\":2,\"type\":\"VolCall\",\"op\":\"write\",\"dataset\":3,\"bytes\":4096}}\n",
    "]}\n",
);

const JSONL_GOLDEN: &str = concat!(
    "{\"seq\":0,\"kind\":\"span\",\"name\":\"vol.snapshot\",\"id\":2,\"parent\":1,\"tid\":1,",
    "\"ts_ns\":1250,\"dur_ns\":2000,\"event\":{\"type\":\"Snapshot\",\"bytes\":4096,\"staged\":true}}\n",
    "{\"seq\":1,\"kind\":\"instant\",\"name\":\"retry\",\"id\":0,\"parent\":1,\"tid\":1,",
    "\"ts_ns\":3250,\"dur_ns\":0,\"event\":{\"type\":\"RetryAttempt\",\"attempt\":1,\"delay_nanos\":500}}\n",
    "{\"seq\":2,\"kind\":\"span\",\"name\":\"vol.write\",\"id\":1,\"parent\":0,\"tid\":1,",
    "\"ts_ns\":1000,\"dur_ns\":3000,\"event\":{\"type\":\"VolCall\",\"op\":\"write\",\"dataset\":3,\"bytes\":4096}}\n",
);

/// The pinned multi-rank scenario (ISSUE 10): two ranks of job 0 re-enact
/// epoch 0 on one thread by rewinding the virtual clock per rank, with a
/// write-handoff edge and a barrier-entry edge per rank. The golden pins
/// the `pid = job + 2` / `tid = rank` viewer mapping and the context
/// members in both exporters.
fn pinned_rank_trace() -> TraceSink {
    let clock = Arc::new(VirtualClock::new(0));
    let t = Tracer::with_clock(clock.clone());
    for rank in 0..2u32 {
        let ctx = SpanContext::new(0, rank, 0);
        clock.set(1_000);
        {
            let _compute = t.span_ctx("rank.compute", ctx);
            clock.advance(2_000 + u64::from(rank) * 500);
        }
        t.instant_ctx(
            "handoff",
            ctx,
            Event::WriteHandoff {
                epoch: 0,
                bytes: 4096,
            },
        );
        {
            let _write = t.span_ctx("rank.write", ctx);
            clock.advance(1_000);
        }
        t.instant_ctx("barrier.enter", ctx, Event::BarrierEnter { epoch: 0 });
    }
    t.sink()
}

const CHROME_RANK_GOLDEN: &str = concat!(
    "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n",
    "{\"name\":\"rank.compute\",\"cat\":\"apio\",\"ph\":\"X\",\"ts\":1,\"dur\":2,\"pid\":2,\"tid\":0,",
    "\"args\":{\"seq\":0,\"job\":0,\"rank\":0,\"epoch\":0}},\n",
    "{\"name\":\"handoff\",\"cat\":\"apio\",\"ph\":\"i\",\"s\":\"t\",\"ts\":3,\"pid\":2,\"tid\":0,",
    "\"args\":{\"seq\":1,\"type\":\"WriteHandoff\",\"epoch\":0,\"bytes\":4096,\"job\":0,\"rank\":0,\"epoch\":0}},\n",
    "{\"name\":\"rank.write\",\"cat\":\"apio\",\"ph\":\"X\",\"ts\":3,\"dur\":1,\"pid\":2,\"tid\":0,",
    "\"args\":{\"seq\":2,\"job\":0,\"rank\":0,\"epoch\":0}},\n",
    "{\"name\":\"barrier.enter\",\"cat\":\"apio\",\"ph\":\"i\",\"s\":\"t\",\"ts\":4,\"pid\":2,\"tid\":0,",
    "\"args\":{\"seq\":3,\"type\":\"BarrierEnter\",\"epoch\":0,\"job\":0,\"rank\":0,\"epoch\":0}},\n",
    "{\"name\":\"rank.compute\",\"cat\":\"apio\",\"ph\":\"X\",\"ts\":1,\"dur\":2.500,\"pid\":2,\"tid\":1,",
    "\"args\":{\"seq\":4,\"job\":0,\"rank\":1,\"epoch\":0}},\n",
    "{\"name\":\"handoff\",\"cat\":\"apio\",\"ph\":\"i\",\"s\":\"t\",\"ts\":3.500,\"pid\":2,\"tid\":1,",
    "\"args\":{\"seq\":5,\"type\":\"WriteHandoff\",\"epoch\":0,\"bytes\":4096,\"job\":0,\"rank\":1,\"epoch\":0}},\n",
    "{\"name\":\"rank.write\",\"cat\":\"apio\",\"ph\":\"X\",\"ts\":3.500,\"dur\":1,\"pid\":2,\"tid\":1,",
    "\"args\":{\"seq\":6,\"job\":0,\"rank\":1,\"epoch\":0}},\n",
    "{\"name\":\"barrier.enter\",\"cat\":\"apio\",\"ph\":\"i\",\"s\":\"t\",\"ts\":4.500,\"pid\":2,\"tid\":1,",
    "\"args\":{\"seq\":7,\"type\":\"BarrierEnter\",\"epoch\":0,\"job\":0,\"rank\":1,\"epoch\":0}}\n",
    "]}\n",
);

const JSONL_RANK_GOLDEN: &str = concat!(
    "{\"seq\":0,\"kind\":\"span\",\"name\":\"rank.compute\",\"id\":1,\"parent\":0,\"tid\":1,",
    "\"ts_ns\":1000,\"dur_ns\":2000,\"ctx\":{\"job\":0,\"rank\":0,\"epoch\":0}}\n",
    "{\"seq\":1,\"kind\":\"instant\",\"name\":\"handoff\",\"id\":0,\"parent\":0,\"tid\":1,",
    "\"ts_ns\":3000,\"dur_ns\":0,\"ctx\":{\"job\":0,\"rank\":0,\"epoch\":0},",
    "\"event\":{\"type\":\"WriteHandoff\",\"epoch\":0,\"bytes\":4096}}\n",
    "{\"seq\":2,\"kind\":\"span\",\"name\":\"rank.write\",\"id\":2,\"parent\":0,\"tid\":1,",
    "\"ts_ns\":3000,\"dur_ns\":1000,\"ctx\":{\"job\":0,\"rank\":0,\"epoch\":0}}\n",
    "{\"seq\":3,\"kind\":\"instant\",\"name\":\"barrier.enter\",\"id\":0,\"parent\":0,\"tid\":1,",
    "\"ts_ns\":4000,\"dur_ns\":0,\"ctx\":{\"job\":0,\"rank\":0,\"epoch\":0},",
    "\"event\":{\"type\":\"BarrierEnter\",\"epoch\":0}}\n",
    "{\"seq\":4,\"kind\":\"span\",\"name\":\"rank.compute\",\"id\":3,\"parent\":0,\"tid\":1,",
    "\"ts_ns\":1000,\"dur_ns\":2500,\"ctx\":{\"job\":0,\"rank\":1,\"epoch\":0}}\n",
    "{\"seq\":5,\"kind\":\"instant\",\"name\":\"handoff\",\"id\":0,\"parent\":0,\"tid\":1,",
    "\"ts_ns\":3500,\"dur_ns\":0,\"ctx\":{\"job\":0,\"rank\":1,\"epoch\":0},",
    "\"event\":{\"type\":\"WriteHandoff\",\"epoch\":0,\"bytes\":4096}}\n",
    "{\"seq\":6,\"kind\":\"span\",\"name\":\"rank.write\",\"id\":4,\"parent\":0,\"tid\":1,",
    "\"ts_ns\":3500,\"dur_ns\":1000,\"ctx\":{\"job\":0,\"rank\":1,\"epoch\":0}}\n",
    "{\"seq\":7,\"kind\":\"instant\",\"name\":\"barrier.enter\",\"id\":0,\"parent\":0,\"tid\":1,",
    "\"ts_ns\":4500,\"dur_ns\":0,\"ctx\":{\"job\":0,\"rank\":1,\"epoch\":0},",
    "\"event\":{\"type\":\"BarrierEnter\",\"epoch\":0}}\n",
);

#[test]
fn chrome_json_matches_the_golden_byte_for_byte() {
    assert_eq!(chrome_json(pinned_trace().records()), CHROME_GOLDEN);
}

#[test]
fn rank_tagged_chrome_json_matches_the_golden_byte_for_byte() {
    assert_eq!(chrome_json(pinned_rank_trace().records()), CHROME_RANK_GOLDEN);
}

#[test]
fn rank_tagged_jsonl_matches_the_golden_byte_for_byte() {
    assert_eq!(jsonl(pinned_rank_trace().records()), JSONL_RANK_GOLDEN);
}

#[test]
fn rank_streams_land_on_distinct_viewer_rows() {
    let json = chrome_json(pinned_rank_trace().records());
    // Every rank-tagged event sits on its own pid/tid row: job 0 -> pid 2,
    // rank r -> tid r. No event falls back to the untagged pid-1 row.
    assert!(json.contains("\"pid\":2,\"tid\":0"));
    assert!(json.contains("\"pid\":2,\"tid\":1"));
    assert!(!json.contains("\"pid\":1"));
}

#[test]
fn jsonl_matches_the_golden_byte_for_byte() {
    assert_eq!(jsonl(pinned_trace().records()), JSONL_GOLDEN);
}

#[test]
fn exports_are_stable_across_independent_runs() {
    let a = pinned_trace();
    let b = pinned_trace();
    assert_eq!(chrome_json(a.records()), chrome_json(b.records()));
    assert_eq!(jsonl(a.records()), jsonl(b.records()));
}

#[test]
fn chrome_events_carry_the_required_fields() {
    let json = chrome_json(pinned_trace().records());
    for line in json.lines().filter(|l| l.starts_with('{') && l.contains("\"name\"")) {
        assert!(line.contains("\"ph\":\"X\"") || line.contains("\"ph\":\"i\""), "{line}");
        assert!(line.contains("\"ts\":"), "{line}");
        assert!(line.contains("\"pid\":1"), "{line}");
        assert!(line.contains("\"tid\":"), "{line}");
        if line.contains("\"ph\":\"X\"") {
            assert!(line.contains("\"dur\":"), "complete events need a duration: {line}");
        } else {
            assert!(line.contains("\"s\":\"t\""), "instants are thread-scoped: {line}");
        }
    }
}
