//! Exporter golden tests (ISSUE 4): under a seeded [`VirtualClock`] on a
//! single thread, both exporters are deterministic functions of the
//! traced scenario — byte for byte. The goldens pin the exact output so
//! an accidental format change (field order, float formatting, escaping)
//! fails loudly instead of silently breaking downstream tooling.

use std::sync::Arc;

use apio_trace::export::{chrome_json, jsonl};
use apio_trace::{Event, TraceSink, Tracer, VirtualClock};

/// The pinned scenario: a submit span wrapping a snapshot span and a
/// retry instant, with every duration chosen to exercise both the whole-
/// and fractional-microsecond formatting paths.
fn pinned_trace() -> TraceSink {
    let clock = Arc::new(VirtualClock::new(1_000));
    let t = Tracer::with_clock(clock.clone());
    let mut write = t.span_with(
        "vol.write",
        Event::VolCall {
            op: "write",
            dataset: 3,
            bytes: 4096,
        },
    );
    clock.advance(250);
    {
        let mut snap = t.span("vol.snapshot");
        clock.advance(2_000);
        snap.set_event(Event::Snapshot {
            bytes: 4096,
            staged: true,
        });
    }
    t.instant(
        "retry",
        Event::RetryAttempt {
            attempt: 1,
            delay_nanos: 500,
        },
    );
    clock.advance(750);
    write.set_event(Event::VolCall {
        op: "write",
        dataset: 3,
        bytes: 4096,
    });
    drop(write);
    t.sink()
}

const CHROME_GOLDEN: &str = concat!(
    "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n",
    "{\"name\":\"vol.snapshot\",\"cat\":\"apio\",\"ph\":\"X\",\"ts\":1.250,\"dur\":2,\"pid\":1,\"tid\":1,",
    "\"args\":{\"seq\":0,\"type\":\"Snapshot\",\"bytes\":4096,\"staged\":true}},\n",
    "{\"name\":\"retry\",\"cat\":\"apio\",\"ph\":\"i\",\"s\":\"t\",\"ts\":3.250,\"pid\":1,\"tid\":1,",
    "\"args\":{\"seq\":1,\"type\":\"RetryAttempt\",\"attempt\":1,\"delay_nanos\":500}},\n",
    "{\"name\":\"vol.write\",\"cat\":\"apio\",\"ph\":\"X\",\"ts\":1,\"dur\":3,\"pid\":1,\"tid\":1,",
    "\"args\":{\"seq\":2,\"type\":\"VolCall\",\"op\":\"write\",\"dataset\":3,\"bytes\":4096}}\n",
    "]}\n",
);

const JSONL_GOLDEN: &str = concat!(
    "{\"seq\":0,\"kind\":\"span\",\"name\":\"vol.snapshot\",\"id\":2,\"parent\":1,\"tid\":1,",
    "\"ts_ns\":1250,\"dur_ns\":2000,\"event\":{\"type\":\"Snapshot\",\"bytes\":4096,\"staged\":true}}\n",
    "{\"seq\":1,\"kind\":\"instant\",\"name\":\"retry\",\"id\":0,\"parent\":1,\"tid\":1,",
    "\"ts_ns\":3250,\"dur_ns\":0,\"event\":{\"type\":\"RetryAttempt\",\"attempt\":1,\"delay_nanos\":500}}\n",
    "{\"seq\":2,\"kind\":\"span\",\"name\":\"vol.write\",\"id\":1,\"parent\":0,\"tid\":1,",
    "\"ts_ns\":1000,\"dur_ns\":3000,\"event\":{\"type\":\"VolCall\",\"op\":\"write\",\"dataset\":3,\"bytes\":4096}}\n",
);

#[test]
fn chrome_json_matches_the_golden_byte_for_byte() {
    assert_eq!(chrome_json(pinned_trace().records()), CHROME_GOLDEN);
}

#[test]
fn jsonl_matches_the_golden_byte_for_byte() {
    assert_eq!(jsonl(pinned_trace().records()), JSONL_GOLDEN);
}

#[test]
fn exports_are_stable_across_independent_runs() {
    let a = pinned_trace();
    let b = pinned_trace();
    assert_eq!(chrome_json(a.records()), chrome_json(b.records()));
    assert_eq!(jsonl(a.records()), jsonl(b.records()));
}

#[test]
fn chrome_events_carry_the_required_fields() {
    let json = chrome_json(pinned_trace().records());
    for line in json.lines().filter(|l| l.starts_with('{') && l.contains("\"name\"")) {
        assert!(line.contains("\"ph\":\"X\"") || line.contains("\"ph\":\"i\""), "{line}");
        assert!(line.contains("\"ts\":"), "{line}");
        assert!(line.contains("\"pid\":1"), "{line}");
        assert!(line.contains("\"tid\":"), "{line}");
        if line.contains("\"ph\":\"X\"") {
            assert!(line.contains("\"dur\":"), "complete events need a duration: {line}");
        } else {
            assert!(line.contains("\"s\":\"t\""), "instants are thread-scoped: {line}");
        }
    }
}
