//! `bench-diff`: compare a bench-harness JSON output against a committed
//! baseline and fail on regressions beyond a threshold.
//!
//! The bench harness writes `BENCH_*.json` documents with one entry per
//! benchmark: `{"name": "...", "secs_per_iter": 1.2e-4, ...}`. CI
//! commits a blessed copy as `BENCH_baseline.json`; this gate parses
//! both documents with a dependency-free field scanner (the workspace is
//! deliberately dependency-free, so no serde), pairs entries by name,
//! and flags any benchmark whose `current/baseline` time ratio exceeds
//! the threshold. Benchmarks present in the baseline but missing from
//! the current run also fail — silently dropping a regressed benchmark
//! must not turn the gate green.

/// One benchmark's timing, as parsed from a results document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Benchmark name (unique within a document).
    pub name: String,
    /// Wall seconds per iteration.
    pub secs_per_iter: f64,
}

/// Scan a bench JSON document for `"name": "..."` / `"secs_per_iter": N`
/// pairs. Tolerant of formatting and extra fields; errors when the
/// document yields no entries or a name arrives without a timing.
pub fn parse_results(text: &str) -> Result<Vec<BenchEntry>, String> {
    let mut entries = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"name\"") {
        rest = &rest[pos + "\"name\"".len()..];
        let name = match quoted_value(rest) {
            Some(n) => n,
            None => return Err("\"name\" without a quoted value".into()),
        };
        // The matching timing sits before the next entry's "name".
        let scope_end = rest.find("\"name\"").unwrap_or(rest.len());
        let scope = &rest[..scope_end];
        let secs = match scope.find("\"secs_per_iter\"") {
            Some(p) => number_after(&scope[p + "\"secs_per_iter\"".len()..])?,
            None => {
                return Err(format!("entry \"{name}\" has no \"secs_per_iter\" field"));
            }
        };
        if !(secs.is_finite() && secs > 0.0) {
            return Err(format!("entry \"{name}\" has non-positive time {secs}"));
        }
        entries.push(BenchEntry {
            name,
            secs_per_iter: secs,
        });
    }
    if entries.is_empty() {
        return Err("no benchmark entries found".into());
    }
    Ok(entries)
}

/// The string literal following `: ` after a field key.
fn quoted_value(s: &str) -> Option<String> {
    let open = s.find('"')?;
    let rest = &s[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// The JSON number following a field key (after the colon).
fn number_after(s: &str) -> Result<f64, String> {
    let s = s.trim_start_matches([':', ' ', '\t', '\n', '\r']);
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-')))
        .unwrap_or(s.len());
    s[..end]
        .parse::<f64>()
        .map_err(|_| format!("bad number '{}'", &s[..end.min(24)]))
}

/// One benchmark that moved past the threshold (or improved).
#[derive(Clone, Debug)]
pub struct Delta {
    /// Benchmark name.
    pub name: String,
    /// Baseline seconds per iteration.
    pub baseline: f64,
    /// Current seconds per iteration.
    pub current: f64,
    /// `current / baseline` (> 1 is slower).
    pub ratio: f64,
}

/// Outcome of comparing a current bench document against a baseline.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Failure threshold on `current/baseline`.
    pub threshold: f64,
    /// Benchmarks present in both documents.
    pub compared: usize,
    /// Benchmarks slower than `threshold ×` baseline — failures.
    pub regressions: Vec<Delta>,
    /// Benchmarks faster than `1/threshold ×` baseline — informational.
    pub improvements: Vec<Delta>,
    /// In the baseline but not the current run — failures.
    pub missing: Vec<String>,
    /// In the current run but not the baseline — informational.
    pub added: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Human-readable summary, one line per finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.regressions {
            out.push_str(&format!(
                "REGRESSION {}: {:.3e}s -> {:.3e}s ({:.2}x, threshold {:.2}x)\n",
                d.name, d.baseline, d.current, d.ratio, self.threshold
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("MISSING {name}: in baseline, not in current run\n"));
        }
        for d in &self.improvements {
            out.push_str(&format!(
                "improvement {}: {:.3e}s -> {:.3e}s ({:.2}x)\n",
                d.name, d.baseline, d.current, d.ratio
            ));
        }
        for name in &self.added {
            out.push_str(&format!("added {name}: not in baseline\n"));
        }
        out.push_str(&format!(
            "bench-diff: {} compared, {} regression(s), {} missing, {} improvement(s), {} added -> {}\n",
            self.compared,
            self.regressions.len(),
            self.missing.len(),
            self.improvements.len(),
            self.added.len(),
            if self.ok() { "OK" } else { "FAIL" }
        ));
        out
    }

    /// Machine-readable summary.
    pub fn render_json(&self) -> String {
        let deltas = |v: &[Delta]| {
            v.iter()
                .map(|d| {
                    format!(
                        "{{\"name\":\"{}\",\"baseline\":{},\"current\":{},\"ratio\":{}}}",
                        crate::json_escape(&d.name),
                        d.baseline,
                        d.current,
                        d.ratio
                    )
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        let names = |v: &[String]| {
            v.iter()
                .map(|n| format!("\"{}\"", crate::json_escape(n)))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"gate\":\"bench-diff\",\"ok\":{},\"threshold\":{},\"compared\":{},\"regressions\":[{}],\"missing\":[{}],\"improvements\":[{}],\"added\":[{}]}}",
            self.ok(),
            self.threshold,
            self.compared,
            deltas(&self.regressions),
            names(&self.missing),
            deltas(&self.improvements),
            names(&self.added),
        )
    }
}

/// Compare `current` against `baseline`; a benchmark regresses when its
/// time ratio exceeds `threshold` (e.g. 1.25 = 25% slower).
pub fn diff(current: &[BenchEntry], baseline: &[BenchEntry], threshold: f64) -> DiffReport {
    let mut report = DiffReport {
        threshold,
        compared: 0,
        regressions: Vec::new(),
        improvements: Vec::new(),
        missing: Vec::new(),
        added: Vec::new(),
    };
    for base in baseline {
        match current.iter().find(|c| c.name == base.name) {
            None => report.missing.push(base.name.clone()),
            Some(cur) => {
                report.compared += 1;
                let ratio = cur.secs_per_iter / base.secs_per_iter;
                let delta = Delta {
                    name: base.name.clone(),
                    baseline: base.secs_per_iter,
                    current: cur.secs_per_iter,
                    ratio,
                };
                if ratio > threshold {
                    report.regressions.push(delta);
                } else if ratio < 1.0 / threshold {
                    report.improvements.push(delta);
                }
            }
        }
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            report.added.push(cur.name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{"bench": "connector", "results": [
        {"name": "a/64", "secs_per_iter": 1.0e-4, "iters": 256, "bytes": 65536},
        {"name": "b/64", "secs_per_iter": 2.0e-4, "iters": 128}
    ]}"#;

    #[test]
    fn parses_names_and_times() {
        let entries = parse_results(DOC).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "a/64");
        assert!((entries[0].secs_per_iter - 1.0e-4).abs() < 1e-12);
        assert_eq!(entries[1].name, "b/64");
    }

    #[test]
    fn rejects_empty_and_malformed_documents() {
        assert!(parse_results("{}").is_err());
        assert!(parse_results(r#"{"name": "x"}"#).is_err());
        assert!(parse_results(r#"{"name": "x", "secs_per_iter": -1.0}"#).is_err());
    }

    #[test]
    fn identical_documents_pass() {
        let e = parse_results(DOC).unwrap();
        let report = diff(&e, &e, 1.25);
        assert!(report.ok());
        assert_eq!(report.compared, 2);
        assert!(report.render_text().contains("-> OK"));
        assert!(report.render_json().contains("\"ok\":true"));
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let base = parse_results(DOC).unwrap();
        let mut cur = base.clone();
        cur[0].secs_per_iter *= 2.0; // 2x slower
        let report = diff(&cur, &base, 1.25);
        assert!(!report.ok());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].name, "a/64");
        assert!((report.regressions[0].ratio - 2.0).abs() < 1e-9);
        assert!(report.render_text().contains("REGRESSION a/64"));
        assert!(report.render_json().contains("\"ok\":false"));
    }

    #[test]
    fn slowdown_within_threshold_passes() {
        let base = parse_results(DOC).unwrap();
        let mut cur = base.clone();
        cur[0].secs_per_iter *= 1.2; // within 1.25x
        assert!(diff(&cur, &base, 1.25).ok());
    }

    #[test]
    fn missing_benchmark_fails_added_is_informational() {
        let base = parse_results(DOC).unwrap();
        let cur = vec![
            base[0].clone(),
            BenchEntry {
                name: "new/128".into(),
                secs_per_iter: 1e-4,
            },
        ];
        let report = diff(&cur, &base, 1.25);
        assert!(!report.ok());
        assert_eq!(report.missing, ["b/64"]);
        assert_eq!(report.added, ["new/128"]);
        assert!(report.render_text().contains("MISSING b/64"));
    }

    #[test]
    fn improvements_are_reported_not_failed() {
        let base = parse_results(DOC).unwrap();
        let mut cur = base.clone();
        cur[1].secs_per_iter /= 10.0;
        let report = diff(&cur, &base, 1.25);
        assert!(report.ok());
        assert_eq!(report.improvements.len(), 1);
        assert!(report.render_text().contains("improvement b/64"));
    }
}
