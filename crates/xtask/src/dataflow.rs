//! Intra-procedural dataflow passes over the token stream.
//!
//! Each pass here consumes the output of [`crate::lexer::lex`] and
//! produces [`Finding`]s — candidate violations that `rules.rs` then
//! scopes to the right crates and filters through `#[cfg(test)]` and
//! waiver handling. The passes are deliberately *intra-procedural and
//! syntactic*: they track guard bindings, closure extents, and operand
//! identifier chains, but never types. False negatives are acceptable
//! (the gate is one layer of several); false positives are not, so each
//! pass carries explicit exemptions for the sanctioned idioms in this
//! workspace (condvar guard hand-off, block-scoped guards).

use crate::lexer::{match_delim, Delim, Token, TokenKind};

/// One candidate violation: a line plus the explanation. The caller
/// attaches rule name, file, and waiver handling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Method names whose empty-argument call binds a lock guard.
const ACQUIRERS: [&str; 5] = ["lock", "read", "write", "meta_read", "meta_write"];

/// Method names that are scheduling boundaries: they submit background
/// work, park the caller, or rendezvous with another task. A guard held
/// across one of these serializes the async pipeline (and can deadlock
/// once the metadata plane shards).
const BOUNDARIES: [&str; 12] = [
    "submit",
    "wait",
    "wait_timeout",
    "wait_until",
    "wait_for",
    "wait_all",
    "quiesce",
    "block_on",
    "recv",
    "recv_timeout",
    "try_recv",
    "join",
];

#[derive(Debug)]
struct Guard {
    name: String,
    /// Brace depth at which the binding lives; closing below kills it.
    depth: usize,
    /// Line of the binding, for the diagnostic.
    bound_line: usize,
}

/// `guard-across-boundary`: a `let g = x.lock();`-style guard binding
/// that is still live when a [`BOUNDARIES`] call executes in the same
/// scope. Exemptions:
///
/// - the guard is an argument of the boundary call itself (condvar
///   hand-off: `cv.wait(&mut st)` is *how* the guard is released);
/// - the acquirer ran inside a nested block on the binding's RHS
///   (`let v = { let g = m.lock(); g.val };` — the guard died at the
///   block's end, the binding holds a value, not a guard);
/// - `drop(g)` or shadowing kills the guard before the boundary.
pub fn guard_across_boundary(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut k = 0;

    while k < tokens.len() {
        let t = &tokens[k];
        match t.kind {
            TokenKind::Open(Delim::Brace) => depth += 1,
            TokenKind::Close(Delim::Brace) => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            _ => {}
        }

        // drop(g) kills the guard early.
        if t.is_ident("drop")
            && tokens.get(k + 1).is_some_and(|t| t.kind == TokenKind::Open(Delim::Paren))
        {
            if let Some(arg) = tokens.get(k + 2) {
                if arg.kind == TokenKind::Ident {
                    guards.retain(|g| g.name != arg.text);
                }
            }
        }

        // A `let` binding: possibly a new guard, always a shadow-kill.
        if t.is_ident("let") {
            if let Some((name, name_line, rhs)) = let_binding(tokens, k) {
                guards.retain(|g| g.name != name);
                if rhs_acquires_guard(tokens, rhs) {
                    guards.push(Guard {
                        name,
                        depth,
                        bound_line: name_line,
                    });
                }
            }
        }

        // A boundary call with live guards.
        if t.kind == TokenKind::Ident
            && BOUNDARIES.contains(&t.text.as_str())
            && tokens.get(k + 1).is_some_and(|n| n.kind == TokenKind::Open(Delim::Paren))
        {
            let method_like = k > 0 && tokens[k - 1].is_punct(".");
            let free_boundary = t.text == "block_on";
            if (method_like || free_boundary) && !guards.is_empty() {
                let close = match_delim(tokens, k + 1).unwrap_or(tokens.len() - 1);
                let args = &tokens[k + 2..close];
                for g in &guards {
                    // Condvar hand-off: the guard is *given to* the wait.
                    let handed_off = args.iter().any(|a| a.is_ident(&g.name));
                    if !handed_off {
                        out.push(Finding {
                            line: t.line,
                            message: format!(
                                "lock guard `{}` (bound on line {}) is live across the scheduling boundary `{}(`; drop or scope the guard before blocking so background tasks can make progress",
                                g.name, g.bound_line, t.text
                            ),
                        });
                    }
                }
            }
        }

        k += 1;
    }
    out
}

/// If `tokens[at]` is `let`, return the bound identifier, its line, and
/// the RHS token range (after `=`, up to the statement-ending `;`).
/// `None` for destructuring patterns or `let … else`.
fn let_binding(tokens: &[Token], at: usize) -> Option<(String, usize, std::ops::Range<usize>)> {
    let mut j = at + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name_tok = tokens.get(j)?;
    if name_tok.kind != TokenKind::Ident || name_tok.text == "_" {
        return None;
    }
    let name = name_tok.text.clone();
    let name_line = name_tok.line;
    j += 1;
    // Optional `: Type` annotation — skip to `=` at zero nesting.
    let mut nest = 0i64;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Open(_) => nest += 1,
            TokenKind::Close(_) => nest -= 1,
            TokenKind::Punct if nest == 0 && t.text == "=" => break,
            TokenKind::Punct if nest == 0 && t.text == ";" => return None,
            _ => {}
        }
        // `<` generics in the type are Punct; fine to walk over.
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    let rhs_start = j + 1;
    // Statement end: `;` at zero nesting relative to here.
    let mut nest = 0i64;
    let mut end = rhs_start;
    while end < tokens.len() {
        let t = &tokens[end];
        match t.kind {
            TokenKind::Open(_) => nest += 1,
            TokenKind::Close(_) => {
                nest -= 1;
                if nest < 0 {
                    break;
                }
            }
            TokenKind::Punct if nest == 0 && t.text == ";" => break,
            _ => {}
        }
        end += 1;
    }
    Some((name, name_line, rhs_start..end))
}

/// Whether a binding RHS acquires a guard *at its own nesting level*:
/// `.lock()` / `.read()` / … with empty parens, not inside a nested
/// block (where the guard already died) and not followed by further
/// projection (`.lock().len()` binds the projection, not the guard —
/// still a transient hold, but not a *live binding*).
fn rhs_acquires_guard(tokens: &[Token], rhs: std::ops::Range<usize>) -> bool {
    let mut nest = 0i64;
    let mut k = rhs.start;
    while k < rhs.end {
        let t = &tokens[k];
        match t.kind {
            TokenKind::Open(_) => nest += 1,
            TokenKind::Close(_) => nest -= 1,
            TokenKind::Ident
                if ACQUIRERS.contains(&t.text.as_str())
                    && k > rhs.start
                    && tokens[k - 1].is_punct(".") =>
            {
                // Empty-paren call at RHS nesting level 0.
                let empty_call = tokens.get(k + 1).is_some_and(|o| o.kind == TokenKind::Open(Delim::Paren))
                    && tokens.get(k + 2).is_some_and(|c| c.kind == TokenKind::Close(Delim::Paren));
                if nest == 0 && empty_call {
                    // Projection after the call (`.lock().field`) means
                    // the guard is a temporary, not this binding.
                    let projected = tokens
                        .get(k + 3)
                        .is_some_and(|n| n.is_punct(".") || n.is_punct("?"));
                    if !projected {
                        return true;
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    false
}

/// Method names that hand a closure to the argolite scheduler.
const SUBMITTERS: [&str; 3] = ["spawn", "spawn_dependent", "add_task"];

/// Path fragments that block the calling OS thread.
const BLOCKING: [(&str, &str); 3] = [("std", "fs"), ("std", "net"), ("thread", "sleep")];

/// `blocking-in-task`: `std::fs` / `std::net` / `thread::sleep` inside
/// a closure passed to a task-submission call. Tasks multiplex onto a
/// bounded worker pool; one blocked worker stalls every queued task
/// behind it.
pub fn blocking_in_task(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for k in 0..tokens.len() {
        let t = &tokens[k];
        if t.kind != TokenKind::Ident || !SUBMITTERS.contains(&t.text.as_str()) {
            continue;
        }
        if !(k > 0 && tokens[k - 1].is_punct(".")) {
            continue;
        }
        let Some(open) = tokens
            .get(k + 1)
            .filter(|n| n.kind == TokenKind::Open(Delim::Paren))
            .map(|_| k + 1)
        else {
            continue;
        };
        let close = match_delim(tokens, open).unwrap_or(tokens.len() - 1);
        let args = &tokens[open + 1..close];
        // Only closures matter; a submission taking a prebuilt value is
        // someone else's problem. (`||` is one maximal-munch token, so a
        // zero-arg closure shows up as `||`, not two `|`s.)
        if !args.iter().any(|a| a.is_punct("|") || a.is_punct("||")) {
            continue;
        }
        for w in 0..args.len().saturating_sub(2) {
            let (a, b, c) = (&args[w], &args[w + 1], &args[w + 2]);
            if b.is_punct("::") {
                for (head, tail) in BLOCKING {
                    if a.is_ident(head) && c.is_ident(tail) {
                        out.push(Finding {
                            line: c.line,
                            message: format!(
                                "blocking call `{head}::{tail}` inside a closure passed to `{}(`; a blocked worker stalls the whole task queue — do the blocking work before submission or route it through the runtime's I/O path",
                                t.text
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Identifier fragments that mark a value as living in device/byte
/// address space, where release-mode wrap silently corrupts data.
const OFFSETY: [&str; 3] = ["offset", "addr", "eof"];

fn is_offsety(text: &str) -> bool {
    let lower = text.to_lowercase();
    OFFSETY.iter().any(|f| lower.contains(f))
}

/// Collect the identifier chain ending at `k` (walking `a.b.c` back
/// from `c`).
fn chain_back(tokens: &[Token], k: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = k as i64;
    while let Some(t) = tokens.get(j as usize) {
        if t.kind == TokenKind::Ident {
            idents.push(t.text.clone());
        } else {
            break;
        }
        if j >= 1 && tokens[(j - 1) as usize].is_punct(".") {
            j -= 2;
        } else {
            break;
        }
    }
    idents
}

/// Collect the identifier chain starting at `k` (walking `a.b.c`
/// forward from `a`).
fn chain_fwd(tokens: &[Token], k: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = k;
    while let Some(t) = tokens.get(j) {
        if t.kind == TokenKind::Ident {
            idents.push(t.text.clone());
        } else {
            break;
        }
        if tokens.get(j + 1).is_some_and(|n| n.is_punct(".")) {
            j += 2;
        } else {
            break;
        }
    }
    idents
}

fn operand_before(tokens: &[Token], op: usize) -> bool {
    op > 0
        && matches!(
            tokens[op - 1].kind,
            TokenKind::Ident
                | TokenKind::Num
                | TokenKind::Close(Delim::Paren)
                | TokenKind::Close(Delim::Bracket)
        )
}

fn operand_after(tokens: &[Token], op: usize) -> bool {
    matches!(
        tokens.get(op + 1).map(|t| &t.kind),
        Some(TokenKind::Ident)
            | Some(TokenKind::Num)
            | Some(TokenKind::Open(Delim::Paren))
            | Some(TokenKind::Punct) // `&x`, `*x` operands
    )
}

/// `checked-offset-arith`: raw `+` / `*` / `+=` / `*=` where an operand
/// identifier chain mentions `offset` / `addr` / `eof`, or a `let`
/// binding *named* like an address computed with raw arithmetic. Wrap
/// on these is not a math bug, it is silent data corruption at a wrong
/// device address — the arithmetic must be `checked_*`/`saturating_*`.
pub fn unchecked_offset_arith(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for k in 0..tokens.len() {
        let t = &tokens[k];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "+" | "*" => {
                // Binary only: an operand on both sides.
                if !(operand_before(tokens, k) && operand_after(tokens, k)) {
                    continue;
                }
                let mut idents = Vec::new();
                if tokens[k - 1].kind == TokenKind::Ident {
                    idents.extend(chain_back(tokens, k - 1));
                }
                if tokens.get(k + 1).is_some_and(|t| t.kind == TokenKind::Ident) {
                    idents.extend(chain_fwd(tokens, k + 1));
                }
                if idents.iter().any(|i| is_offsety(i)) {
                    out.push(arith_finding(t, "+"));
                }
            }
            "+=" | "*=" => {
                if k == 0 {
                    continue;
                }
                let mut idents = Vec::new();
                if tokens[k - 1].kind == TokenKind::Ident {
                    idents.extend(chain_back(tokens, k - 1));
                }
                if tokens.get(k + 1).is_some_and(|t| t.kind == TokenKind::Ident) {
                    idents.extend(chain_fwd(tokens, k + 1));
                }
                if idents.iter().any(|i| is_offsety(i)) {
                    out.push(arith_finding(t, &t.text.clone()));
                }
            }
            _ => {}
        }
    }

    // `let addr = base + off * elem;` — the *binding name* marks the
    // value as an address even when no operand does.
    let mut k = 0;
    while k < tokens.len() {
        if tokens[k].is_ident("let") {
            if let Some((name, _, rhs)) = let_binding(tokens, k) {
                if is_offsety(&name) {
                    let mut nest = 0i64;
                    for j in rhs.clone() {
                        let t = &tokens[j];
                        match t.kind {
                            TokenKind::Open(_) => nest += 1,
                            TokenKind::Close(_) => nest -= 1,
                            TokenKind::Punct
                                if nest == 0
                                    && (t.text == "+" || t.text == "*")
                                    && operand_before(tokens, j)
                                    && operand_after(tokens, j) =>
                            {
                                out.push(Finding {
                                    line: t.line,
                                    message: format!(
                                        "raw `{}` computing address binding `{name}`; use `checked_add`/`checked_mul` (or `saturating_*` for watermarks) so release-mode wrap cannot alias a wrong device address",
                                        t.text
                                    ),
                                });
                                break;
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        k += 1;
    }

    out.sort_by_key(|f| f.line);
    out.dedup();
    out
}

fn arith_finding(t: &Token, op: &str) -> Finding {
    Finding {
        line: t.line,
        message: format!(
            "raw `{op}` on an offset/address expression; use `checked_add`/`checked_mul` (or `saturating_*` for watermarks) so release-mode wrap cannot alias a wrong device address"
        ),
    }
}

/// Whether the `.ok()` ending at token `dot` feeds a consumer: walking
/// back to the start of the statement finds a `let` binding, an
/// assignment, or a `return` — the Option is used, not discarded.
fn ok_value_is_consumed(tokens: &[Token], dot: usize) -> bool {
    let mut j = dot;
    let mut nest = 0i64;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        match t.kind {
            TokenKind::Close(_) => nest += 1,
            TokenKind::Open(_) => {
                nest -= 1;
                if nest < 0 {
                    return false; // hit the enclosing block/call start
                }
            }
            _ if nest > 0 => {}
            TokenKind::Punct if t.text == ";" => return false,
            TokenKind::Ident if t.text == "let" || t.text == "return" => return true,
            TokenKind::Punct if t.text == "=" => return true,
            _ => {}
        }
    }
    false
}

/// `swallowed-result`: `let _ = expr;` and statement-level `.ok();`
/// discards. On the staging/WAL path a swallowed `Result` is a
/// durability bug — the caller believes data is persistent when the
/// write already failed.
pub fn swallowed_result(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for k in 0..tokens.len() {
        let t = &tokens[k];
        if t.is_ident("let")
            && tokens.get(k + 1).is_some_and(|t| t.is_ident("_"))
            && tokens.get(k + 2).is_some_and(|t| t.is_punct("="))
        {
            out.push(Finding {
                line: t.line,
                message: "`let _ =` discards a Result on an I/O path; handle the error, count it in stats, or waive inline with the reason the discard is sound".to_owned(),
            });
        }
        if t.is_punct(".")
            && tokens.get(k + 1).is_some_and(|t| t.is_ident("ok"))
            && tokens.get(k + 2).is_some_and(|t| t.kind == TokenKind::Open(Delim::Paren))
            && tokens.get(k + 3).is_some_and(|t| t.kind == TokenKind::Close(Delim::Paren))
            && tokens.get(k + 4).is_some_and(|t| t.is_punct(";"))
            && !ok_value_is_consumed(tokens, k)
        {
            out.push(Finding {
                line: t.line,
                message: "statement-level `.ok();` swallows a Result on an I/O path; handle the error, count it in stats, or waive inline with the reason the discard is sound".to_owned(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lines(f: &[Finding]) -> Vec<usize> {
        f.iter().map(|f| f.line).collect()
    }

    #[test]
    fn guard_live_across_wait_fires() {
        let src = "\
fn f(&self) {
    let st = self.state.lock();
    self.handle.wait();
}
";
        let f = guard_across_boundary(&lex(src));
        assert_eq!(lines(&f), [3]);
        assert!(f[0].message.contains("`st`"));
        assert!(f[0].message.contains("wait"));
    }

    #[test]
    fn guard_live_across_submit_and_block_on() {
        let src = "\
fn f(&self) {
    let mut q = self.queue.write();
    rt.submit(job);
    block_on(fut);
}
";
        assert_eq!(lines(&guard_across_boundary(&lex(src))), [3, 4]);
    }

    #[test]
    fn condvar_handoff_is_exempt() {
        let src = "\
fn f(&self) {
    let mut st = self.core.state.lock();
    while !st.done {
        self.core.done_cv.wait(&mut st);
    }
}
";
        assert!(guard_across_boundary(&lex(src)).is_empty());
    }

    #[test]
    fn dropped_scoped_and_shadowed_guards_are_dead() {
        let drop_src = "\
fn f(&self) {
    let g = self.m.lock();
    drop(g);
    self.h.wait();
}
";
        assert!(guard_across_boundary(&lex(drop_src)).is_empty());

        let scope_src = "\
fn f(&self) {
    {
        let g = self.m.lock();
        g.push(1);
    }
    self.h.wait();
}
";
        assert!(guard_across_boundary(&lex(scope_src)).is_empty());

        let block_rhs = "\
fn f(&self) {
    let task = { let mut q = self.queue.lock(); q.pop() };
    self.h.wait();
}
";
        assert!(guard_across_boundary(&lex(block_rhs)).is_empty());

        let shadow = "\
fn f(&self) {
    let v = self.m.lock();
    let v = v.len();
    self.h.wait();
}
";
        assert!(guard_across_boundary(&lex(shadow)).is_empty());
    }

    #[test]
    fn projection_binds_a_value_not_a_guard() {
        let src = "\
fn f(&self) {
    let n = self.m.lock().len();
    self.h.wait();
}
";
        assert!(guard_across_boundary(&lex(src)).is_empty());
    }

    #[test]
    fn fn_definitions_are_not_boundaries() {
        let src = "\
fn wait(&self) {
    let g = self.m.lock();
    g.bump();
}
";
        assert!(guard_across_boundary(&lex(src)).is_empty());
    }

    #[test]
    fn blocking_in_task_fires_inside_submission_closures() {
        let src = "\
fn f(rt: &Runtime) {
    rt.spawn_dependent(deps, move || {
        let data = std::fs::read(path);
        thread::sleep(d);
    });
    g.add_task(\"t\", || std::net::TcpStream::connect(a));
}
";
        let f = blocking_in_task(&lex(src));
        assert_eq!(lines(&f), [3, 4, 6]);
        assert!(f[0].message.contains("std::fs"));
        assert!(f[1].message.contains("thread::sleep"));
        assert!(f[2].message.contains("std::net"));
    }

    #[test]
    fn blocking_outside_closures_or_submissions_is_fine() {
        let before = "\
fn f(rt: &Runtime) {
    let data = std::fs::read(path);
    rt.spawn(move || consume(data));
}
";
        assert!(blocking_in_task(&lex(before)).is_empty());
        // Submission without a closure argument.
        let no_closure = "fn f(rt: &Runtime) { rt.submit(prebuilt); }\n";
        assert!(blocking_in_task(&lex(no_closure)).is_empty());
        // A local fn named spawn, not method-called.
        let free_fn = "fn f() { spawn(|| std::fs::read(p)); }\n";
        assert!(blocking_in_task(&lex(free_fn)).is_empty());
    }

    #[test]
    fn offset_arith_fires_on_raw_ops() {
        let toks = lex("fn f() { let end = offset + data.len() as u64; }");
        assert_eq!(lines(&unchecked_offset_arith(&toks)), [1]);
        let toks = lex("fn f(m: &mut Meta) { m.eof += nbytes; }");
        assert_eq!(lines(&unchecked_offset_arith(&toks)), [1]);
        let toks = lex("fn f() { if prev.addr + prev.len == addr { merge(); } }");
        assert_eq!(lines(&unchecked_offset_arith(&toks)), [1]);
        // Binding-name form: operands are innocent, the LHS is an address.
        let toks = lex("fn f() { let addr = base + off * elem; }");
        assert_eq!(lines(&unchecked_offset_arith(&toks)), [1]);
    }

    #[test]
    fn offset_arith_ignores_checked_and_unrelated_math() {
        let ok = "\
fn f() {
    let end = offset.checked_add(len).ok_or(e)?;
    let count = items * width;
    total_bytes += nbytes;
    let x = *ptr;
    let r = &*guard;
}
";
        assert!(unchecked_offset_arith(&lex(ok)).is_empty());
    }

    #[test]
    fn swallowed_result_fires_on_discards() {
        let src = "\
fn f() {
    let _ = log.mark_applied(e);
    device.flush().ok();
}
";
        assert_eq!(lines(&swallowed_result(&lex(src))), [2, 3]);
    }

    #[test]
    fn named_holds_and_used_ok_are_fine() {
        let ok = "\
fn f() {
    let _guard = t.span(\"x\");
    let v = maybe().ok();
    if log.mark(e).is_err() { stats.bump(); }
}
";
        assert!(swallowed_result(&lex(ok)).is_empty());
    }
}
