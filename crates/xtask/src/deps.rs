//! Dependency policy: the workspace builds fully offline, so every
//! dependency must resolve inside the repository — either a `path`
//! dependency or `workspace = true` inheritance of one. Any entry that
//! would reach a registry (`version = …`, `foo = "1.0"`, `git = …`) is a
//! violation.

use crate::rules::Violation;

/// Check one manifest (`rel` workspace-relative path, full contents).
///
/// Scans `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// their `[target.….dependencies]` variants, and (in the root manifest)
/// `[workspace.dependencies]`.
pub fn check_manifest(rel: &str, text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    let mut inline_entry: Option<(usize, String, String)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            let section = line.trim_matches(['[', ']']);
            in_dep_section = section == "workspace.dependencies"
                || section.ends_with("dependencies");
            continue;
        }
        if !in_dep_section {
            continue;
        }
        // Multi-line inline tables: accumulate until braces balance.
        if let Some((start, name, acc)) = &mut inline_entry {
            acc.push(' ');
            acc.push_str(line);
            if acc.matches('{').count() == acc.matches('}').count() {
                check_entry(rel, *start, name, acc, &mut out);
                inline_entry = None;
            }
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        // `foo.workspace = true` / `foo.path = "…"` dotted keys.
        if let Some((_, key)) = name.split_once('.') {
            if key == "workspace" || key == "path" {
                continue;
            }
        }
        if value.starts_with('{') && value.matches('{').count() != value.matches('}').count() {
            inline_entry = Some((idx + 1, name.to_owned(), value.to_owned()));
            continue;
        }
        check_entry(rel, idx + 1, name, value, &mut out);
    }
    out
}

fn check_entry(rel: &str, line: usize, name: &str, value: &str, out: &mut Vec<Violation>) {
    let internal = value.contains("path =")
        || value.contains("path=")
        || value.contains("workspace = true")
        || value.contains("workspace=true");
    let external = value.contains("git =") || value.contains("git=");
    if internal && !external {
        return;
    }
    out.push(Violation {
        file: rel.to_owned(),
        line,
        rule: "internal-deps",
        message: format!(
            "dependency `{name}` is not workspace-internal ({value}); only `path` or `workspace = true` dependencies are allowed — the build must work fully offline"
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_workspace_deps_pass() {
        let m = "\
[package]
name = \"x\"

[dependencies]
desim = { path = \"../desim\" }
h5lite.workspace = true
argolite = { workspace = true }
";
        assert!(check_manifest("crates/x/Cargo.toml", m).is_empty());
    }

    #[test]
    fn registry_deps_are_flagged() {
        let m = "\
[dependencies]
serde = \"1.0\"
rand = { version = \"0.8\", features = [\"std\"] }
";
        let v = check_manifest("crates/x/Cargo.toml", m);
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("serde"));
        assert!(v[1].message.contains("rand"));
    }

    #[test]
    fn git_deps_are_flagged() {
        let m = "[dependencies]\nfoo = { git = \"https://example.com/foo\" }\n";
        assert_eq!(check_manifest("Cargo.toml", m).len(), 1);
    }

    #[test]
    fn dev_and_workspace_dependency_sections_are_checked() {
        let m = "\
[dev-dependencies]
proptest = \"1.4\"

[workspace.dependencies]
desim = { path = \"crates/desim\" }
criterion = { version = \"0.5\" }
";
        let v = check_manifest("Cargo.toml", m);
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|x| x.message.contains("proptest")));
        assert!(v.iter().any(|x| x.message.contains("criterion")));
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let m = "\
[package]
version = \"0.1.0\"

[features]
default = []

[lints]
workspace = true
";
        assert!(check_manifest("crates/x/Cargo.toml", m).is_empty());
    }

    #[test]
    fn multiline_inline_tables_are_handled() {
        let m = "\
[dependencies]
foo = { version = \"1.0\",
        features = [\"a\"] }
bar = { path = \"../bar\",
        features = [\"b\"] }
";
        let v = check_manifest("crates/x/Cargo.toml", m);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("foo"));
    }
}
