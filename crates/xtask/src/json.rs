//! A minimal, dependency-free JSON parser.
//!
//! The workspace's gates emit JSON (`lint --json`, `report`,
//! `bench-diff --json`) that downstream tooling consumes; CI must
//! assert those documents actually parse without reaching for python or
//! serde. This is a strict recursive-descent parser over the full JSON
//! grammar — objects, arrays, strings with escapes, numbers, booleans,
//! null — that rejects trailing garbage. It is a validator first; the
//! [`Value`] accessors exist for tests that probe specific fields.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset and a
/// short description.
pub fn parse(text: &str) -> Result<Value, String> {
    let b = text.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        if self.b.get(self.i) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates decode to the replacement char;
                            // the validator doesn't need pairing.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let s = &self.b[self.i..];
                    let ch = std::str::from_utf8(s)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("bad utf-8"))?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.i += 1; // [
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.i += 1; // {
        let mut map = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.i += 1;
            self.ws();
            let val = self.value()?;
            map.insert(key, val);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn decodes_escapes_including_unicode() {
        let v = parse(r#""tab\there A\"""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A\""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "nul",
            "1.2.3",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn parses_own_gate_output_shape() {
        let doc = r#"{"check":"lint","files_scanned":70,"violation_count":0,"violations":[]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("files_scanned").unwrap().as_num(), Some(70.0));
        assert_eq!(v.get("violations").unwrap().as_arr().unwrap().len(), 0);
    }
}
