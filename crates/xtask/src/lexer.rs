//! A small Rust lexer for the static-analysis engine.
//!
//! [`lex`] turns a source file into a flat stream of [`Token`]s with
//! 1-based line numbers. It understands exactly as much of the Rust
//! grammar as the lint rules need, and no more:
//!
//! - line and (nested) block comments are dropped;
//! - string / raw-string / byte-string / char literals become a single
//!   [`TokenKind::Literal`] token (contents discarded, so a doc string
//!   mentioning `.unwrap()` can never fire a rule);
//! - `'a` lifetimes are distinguished from `'a'` char literals and
//!   lexed as [`TokenKind::Lifetime`];
//! - multi-character operators (`::`, `->`, `=>`, `..=`, `+=`, `<<=`,
//!   …) are joined with maximal munch so a rule can ask "is this token
//!   exactly `+`?" without being fooled by `+=`;
//! - `(`/`)`, `[`/`]`, `{`/`}` are [`TokenKind::Open`]/[`TokenKind::Close`]
//!   with a [`Delim`], and [`match_delim`] finds the partner of any
//!   opener, which is what gives the dataflow pass brace-matched blocks.
//!
//! The lexer is infallible: unexpected bytes become one-character
//! `Punct` tokens and unterminated literals end at end-of-file. A lint
//! gate must degrade to "no finding", never crash, on weird input.

/// Bracket family of an [`TokenKind::Open`]/[`TokenKind::Close`] token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delim {
    /// `(` / `)`
    Paren,
    /// `[` / `]`
    Bracket,
    /// `{` / `}`
    Brace,
}

/// Classification of one token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `let`, `r#async`).
    Ident,
    /// Lifetime (`'a`) — the text excludes the leading quote.
    Lifetime,
    /// String / raw-string / byte / char literal; text is `""`.
    Literal,
    /// Numeric literal (`42`, `0xffu64`, `1.5e-3`).
    Num,
    /// Operator or other punctuation, maximal-munch (`::`, `+=`, `.`).
    Punct,
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
}

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The token text (empty for [`TokenKind::Literal`]).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Multi-character operators, longest first so maximal munch works by
/// first match.
const MULTI_PUNCT: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex `src` into tokens. Never fails; see the module docs for the
/// degradation rules.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;

    // Advance over `n` chars starting at `i`, counting newlines.
    // Returns the new index. (Closure-free so the borrow checker is
    // happy with `line` updates inline.)
    macro_rules! bump {
        ($n:expr) => {{
            for k in 0..$n {
                if b.get(i + k) == Some(&'\n') {
                    line += 1;
                }
            }
            i += $n;
        }};
    }

    while i < b.len() {
        let c = b[i];

        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let mut n = 0;
            while b.get(i + n).is_some_and(|&ch| ch != '\n') {
                n += 1;
            }
            bump!(n);
            continue;
        }

        // Block comment, nesting.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            let mut n = 0;
            while i + n < b.len() {
                if b[i + n] == '/' && b.get(i + n + 1) == Some(&'*') {
                    depth += 1;
                    n += 2;
                } else if b[i + n] == '*' && b.get(i + n + 1) == Some(&'/') {
                    depth -= 1;
                    n += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    n += 1;
                }
            }
            bump!(n);
            continue;
        }

        // Raw string / raw byte string: r"…", r#"…"#, br"…".
        let raw_start = match c {
            'r' => Some(i + 1),
            'b' if b.get(i + 1) == Some(&'r') => Some(i + 2),
            _ => None,
        };
        if let Some(start) = raw_start {
            if !prev_is_ident(&b, i) {
                let mut hashes = 0;
                let mut j = start;
                while b.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&'"') {
                    let tok_line = line;
                    let mut n = j + 1 - i;
                    while i + n < b.len() {
                        if b[i + n] == '"'
                            && b[i + n + 1..].iter().take(hashes).filter(|&&h| h == '#').count()
                                == hashes
                        {
                            n += 1 + hashes;
                            break;
                        }
                        n += 1;
                    }
                    bump!(n);
                    out.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line: tok_line,
                    });
                    continue;
                }
            }
        }

        // String literal (with optional b prefix).
        if c == '"' || (c == 'b' && b.get(i + 1) == Some(&'"') && !prev_is_ident(&b, i)) {
            let tok_line = line;
            let mut n = if c == 'b' { 2 } else { 1 };
            while i + n < b.len() {
                if b[i + n] == '\\' {
                    n += 2;
                    continue;
                }
                if b[i + n] == '"' {
                    n += 1;
                    break;
                }
                n += 1;
            }
            bump!(n);
            out.push(Token {
                kind: TokenKind::Literal,
                text: String::new(),
                line: tok_line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let is_char = match b.get(i + 1) {
                Some('\\') => true,
                Some(ch) if !(ch.is_alphanumeric() || *ch == '_') => {
                    b.get(i + 2) == Some(&'\'')
                }
                Some(_) => b.get(i + 2) == Some(&'\''),
                None => false,
            };
            // `'a'` is a char; `'a` (no closing quote) is a lifetime.
            if is_char {
                let tok_line = line;
                let mut n = 1;
                while i + n < b.len() {
                    if b[i + n] == '\\' {
                        n += 2;
                        continue;
                    }
                    if b[i + n] == '\'' {
                        n += 1;
                        break;
                    }
                    n += 1;
                }
                bump!(n);
                out.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line: tok_line,
                });
            } else {
                let mut n = 1;
                let mut text = String::new();
                while b
                    .get(i + n)
                    .is_some_and(|&ch| ch.is_alphanumeric() || ch == '_')
                {
                    text.push(b[i + n]);
                    n += 1;
                }
                out.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                });
                bump!(n);
            }
            continue;
        }

        // Number.
        if c.is_ascii_digit() {
            let mut n = 0;
            let mut text = String::new();
            while let Some(&ch) = b.get(i + n) {
                let cont = ch.is_alphanumeric()
                    || ch == '_'
                    || ch == '.'
                        // `1..x` range, `1.method()` — don't eat `..` or `.m`.
                        && b.get(i + n + 1).is_some_and(|&nx| nx.is_ascii_digit())
                    || (ch == '+' || ch == '-')
                        && text
                            .chars()
                            .last()
                            .is_some_and(|p| p == 'e' || p == 'E')
                        && text.starts_with(|f: char| f.is_ascii_digit())
                        && !text.starts_with("0x");
                if !cont {
                    break;
                }
                text.push(ch);
                n += 1;
            }
            out.push(Token {
                kind: TokenKind::Num,
                text,
                line,
            });
            bump!(n);
            continue;
        }

        // Identifier / keyword (incl. raw identifiers r#foo).
        if c.is_alphanumeric() || c == '_' {
            let mut n = 0;
            let mut text = String::new();
            if c == 'r' && b.get(i + 1) == Some(&'#') {
                n = 2;
            }
            while b
                .get(i + n)
                .is_some_and(|&ch| ch.is_alphanumeric() || ch == '_')
            {
                text.push(b[i + n]);
                n += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
            });
            bump!(n);
            continue;
        }

        // Delimiters.
        let delim = match c {
            '(' => Some((TokenKind::Open(Delim::Paren), "(")),
            ')' => Some((TokenKind::Close(Delim::Paren), ")")),
            '[' => Some((TokenKind::Open(Delim::Bracket), "[")),
            ']' => Some((TokenKind::Close(Delim::Bracket), "]")),
            '{' => Some((TokenKind::Open(Delim::Brace), "{")),
            '}' => Some((TokenKind::Close(Delim::Brace), "}")),
            _ => None,
        };
        if let Some((kind, text)) = delim {
            out.push(Token {
                kind,
                text: text.to_owned(),
                line,
            });
            bump!(1);
            continue;
        }

        // Maximal-munch punctuation.
        let rest: String = b[i..b.len().min(i + 3)].iter().collect();
        let multi = MULTI_PUNCT.iter().find(|p| rest.starts_with(**p));
        if let Some(p) = multi {
            out.push(Token {
                kind: TokenKind::Punct,
                text: (*p).to_owned(),
                line,
            });
            bump!(p.len());
            continue;
        }
        out.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        bump!(1);
    }
    out
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// Index of the [`TokenKind::Close`] token matching the
/// [`TokenKind::Open`] at `open`, or `None` when unbalanced (truncated
/// file) or `open` is not an opener.
pub fn match_delim(tokens: &[Token], open: usize) -> Option<usize> {
    let TokenKind::Open(want) = tokens.get(open)?.kind else {
        return None;
    };
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Open(d) if d == want => depth += 1,
            TokenKind::Close(d) if d == want => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_vanish() {
        let toks = lex("a // x.unwrap()\nb /* panic!( /* nested */ ) */ c \"lit .wait()\" d");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["a", "b", "c", "d"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_bytes_are_single_literals() {
        let toks = lex(r##"let x = r#"panic!("no")"#; let y = b"bytes"; let c = 'q';"##);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            3
        );
        assert!(!toks.iter().any(|t| t.text == "panic"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(v: &'a str) { let c = 'x'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            1
        );
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "one\n\"multi\nline\"\nfour";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1); // one
        assert_eq!(toks[1].line, 2); // the literal starts on line 2
        assert_eq!(toks[2].line, 4); // four
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(texts("a += b; c..=d; x <<= 2; p -> q; m::n"), [
            "a", "+=", "b", ";", "c", "..=", "d", ";", "x", "<<=", "2", ";", "p", "->", "q", ";",
            "m", "::", "n"
        ]);
        // A bare `+` stays a bare `+`.
        let toks = lex("a + b * c");
        assert!(toks[1].is_punct("+") && toks[3].is_punct("*"));
    }

    #[test]
    fn numeric_literals_hold_together() {
        assert_eq!(texts("0xff_u64 1.5e-3 42usize 1..n"), [
            "0xff_u64", "1.5e-3", "42usize", "1", "..", "n"
        ]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = lex("let r#async = 1;");
        assert!(toks.iter().any(|t| t.is_ident("async")));
    }

    #[test]
    fn delimiters_match() {
        let toks = lex("fn f(a: u32) { if x { y(z[0]) } }");
        let open_brace = toks
            .iter()
            .position(|t| t.kind == TokenKind::Open(Delim::Brace))
            .unwrap();
        let close = match_delim(&toks, open_brace).unwrap();
        assert_eq!(close, toks.len() - 1);
        let open_paren = toks
            .iter()
            .position(|t| t.kind == TokenKind::Open(Delim::Paren))
            .unwrap();
        let close_paren = match_delim(&toks, open_paren).unwrap();
        assert_eq!(toks[close_paren + 1].text, "{");
    }

    #[test]
    fn unbalanced_input_degrades_without_panic() {
        let toks = lex("fn f( { \"unterminated");
        assert!(match_delim(&toks, 2).is_none());
        assert!(!toks.is_empty());
    }
}
