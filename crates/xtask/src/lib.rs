#![warn(missing_docs)]
//! # xtask — the workspace correctness gate
//!
//! A zero-dependency static-analysis driver run as
//! `cargo run -p xtask -- <command>`:
//!
//! - **`lint`** — walk every workspace `.rs` file and enforce the
//!   deny-by-default rule set in [`rules`]: nine line-local token
//!   rules (virtual-time purity, error-path discipline, lock
//!   discipline, `#[must_use]` coverage, no debug/placeholder macros,
//!   bounded retries, planned I/O, trace discipline, superblock
//!   discipline) plus four
//!   dataflow rules ([`dataflow`]) for guard liveness across
//!   scheduling boundaries, blocking calls in task closures, checked
//!   offset arithmetic, and swallowed `Result`s. Prints
//!   `file:line: [rule] message` per violation and a machine-readable
//!   JSON summary; exits non-zero on any violation **or any stale
//!   waiver** (escape: `--allow-stale`).
//! - **`check-deps`** — enforce that every manifest dependency is
//!   workspace-internal (see [`deps`]); the build must work offline.
//! - **`report`** — run both and print one combined JSON document with
//!   per-rule fired/suppressed counts.
//! - **`json-check`** — validate that stdin (or a file) parses as JSON
//!   with the in-tree parser ([`json`]); CI uses it to assert the
//!   gate's own output stays machine-readable.
//!
//! Escapes are auditable: inline `// xtask: allow(rule)` markers or
//! path-prefix entries in the root `xtask.allow` file. Both are
//! use-checked — a waiver that suppresses nothing is reported stale so
//! dead escapes cannot rot silently.

pub mod benchdiff;
pub mod dataflow;
pub mod deps;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod scan;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use rules::{InlineWaiver, Violation};

/// Locate the workspace root from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Workspace-relative paths of every `.rs` file under version-controlled
/// source directories. Skips `target/`, hidden directories, and
/// `fixtures/` trees — the lint corpus under
/// `crates/xtask/tests/fixtures/` contains deliberately-firing snippets
/// that must never count against the workspace itself.
pub fn source_files(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    files.sort();
    files
}

/// Workspace-relative paths of every `Cargo.toml`.
pub fn manifest_files(root: &Path) -> Vec<String> {
    let mut files = vec!["Cargo.toml".to_owned()];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let m = entry.path().join("Cargo.toml");
            if m.is_file() {
                if let Ok(rel) = m.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    files.sort();
    files
}

/// A stale waiver: an escape that suppressed nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StaleWaiver {
    /// An inline `// xtask: allow(rule)` marker that matched no
    /// violation on its line.
    Inline(InlineWaiver),
    /// An `xtask.allow` entry (`rule path-prefix`) that waived nothing.
    Allowlist {
        /// Rule name (or `*`).
        rule: String,
        /// Path prefix.
        path_prefix: String,
    },
}

impl std::fmt::Display for StaleWaiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaleWaiver::Inline(w) => write!(
                f,
                "{}:{}: stale inline waiver for [{}] — it suppresses nothing; delete it",
                w.file, w.line, w.rule
            ),
            StaleWaiver::Allowlist { rule, path_prefix } => write!(
                f,
                "xtask.allow: stale entry `{rule} {path_prefix}` — it waives nothing; delete it"
            ),
        }
    }
}

/// Outcome of a lint or check-deps run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived inline waivers and the allowlist.
    pub violations: Vec<Violation>,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// Per-rule count of surviving violations.
    pub fired: BTreeMap<String, usize>,
    /// Per-rule count of waived violations (inline + allowlist).
    pub suppressed: BTreeMap<String, usize>,
    /// Waivers that suppressed nothing (lint only).
    pub stale_waivers: Vec<StaleWaiver>,
}

impl Report {
    /// Whether the gate passes: no violations and no stale waivers
    /// (unless `allow_stale`).
    pub fn clean(&self, allow_stale: bool) -> bool {
        self.violations.is_empty() && (allow_stale || self.stale_waivers.is_empty())
    }
}

/// Run the lint rule set over the workspace at `root`, with the full
/// waiver audit.
pub fn run_lint(root: &Path) -> Report {
    let allow = std::fs::read_to_string(root.join("xtask.allow"))
        .map(|t| rules::parse_allowlist(&t))
        .unwrap_or_default();
    let files = source_files(root);
    let mut violations = Vec::new();
    let mut suppressed_v: Vec<Violation> = Vec::new();
    let mut waivers: Vec<InlineWaiver> = Vec::new();
    for rel in &files {
        if let Ok(src) = std::fs::read_to_string(root.join(rel)) {
            let lint = rules::lint_source_full(rel, &src);
            violations.extend(lint.violations);
            suppressed_v.extend(lint.suppressed);
            waivers.extend(lint.waivers);
        }
    }
    let (violations, hits) = rules::apply_allowlist_tracked(violations, &allow);

    let mut fired = BTreeMap::new();
    for v in &violations {
        *fired.entry(v.rule.to_owned()).or_insert(0) += 1;
    }
    let mut suppressed = BTreeMap::new();
    for v in &suppressed_v {
        *suppressed.entry(v.rule.to_owned()).or_insert(0) += 1;
    }
    // Allowlist-suppressed counts fold into the same per-rule map. An
    // entry's hit count is attributed to its own rule name (`*` stays
    // `*` — it has no single rule).
    for (entry, n) in allow.iter().zip(&hits) {
        if *n > 0 {
            *suppressed.entry(entry.rule.clone()).or_insert(0) += n;
        }
    }

    let mut stale_waivers: Vec<StaleWaiver> = waivers
        .into_iter()
        .filter(|w| !w.used)
        .map(StaleWaiver::Inline)
        .collect();
    for (entry, n) in allow.iter().zip(&hits) {
        if *n == 0 {
            stale_waivers.push(StaleWaiver::Allowlist {
                rule: entry.rule.clone(),
                path_prefix: entry.path_prefix.clone(),
            });
        }
    }

    Report {
        violations,
        files_scanned: files.len(),
        fired,
        suppressed,
        stale_waivers,
    }
}

/// Run the dependency policy over every manifest at `root`.
pub fn run_check_deps(root: &Path) -> Report {
    let files = manifest_files(root);
    let mut violations = Vec::new();
    for rel in &files {
        if let Ok(text) = std::fs::read_to_string(root.join(rel)) {
            violations.extend(deps::check_manifest(rel, &text));
        }
    }
    let mut fired = BTreeMap::new();
    for v in &violations {
        *fired.entry(v.rule.to_owned()).or_insert(0) += 1;
    }
    Report {
        violations,
        files_scanned: files.len(),
        fired,
        ..Report::default()
    }
}

/// Minimal JSON string escaping.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn rule_stats_json(report: &Report) -> String {
    // One entry per known rule (stable inventory for drift tests), plus
    // any extra keys that appear (e.g. `*` allowlist entries).
    let mut keys: Vec<&str> = rules::RULE_NAMES.to_vec();
    for k in report.fired.keys().chain(report.suppressed.keys()) {
        if !keys.contains(&k.as_str()) {
            keys.push(k);
        }
    }
    let items: Vec<String> = keys
        .iter()
        .map(|k| {
            format!(
                "\"{}\":{{\"fired\":{},\"suppressed\":{}}}",
                json_escape(k),
                report.fired.get(*k).copied().unwrap_or(0),
                report.suppressed.get(*k).copied().unwrap_or(0)
            )
        })
        .collect();
    format!("{{{}}}", items.join(","))
}

fn stale_json(report: &Report) -> String {
    let items: Vec<String> = report
        .stale_waivers
        .iter()
        .map(|s| match s {
            StaleWaiver::Inline(w) => format!(
                "{{\"kind\":\"inline\",\"file\":\"{}\",\"line\":{},\"rule\":\"{}\"}}",
                json_escape(&w.file),
                w.line,
                json_escape(&w.rule)
            ),
            StaleWaiver::Allowlist { rule, path_prefix } => format!(
                "{{\"kind\":\"allowlist\",\"rule\":\"{}\",\"path_prefix\":\"{}\"}}",
                json_escape(rule),
                json_escape(path_prefix)
            ),
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Render one report section as a JSON object.
pub fn report_json(name: &str, report: &Report) -> String {
    let items: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&v.file),
                v.line,
                json_escape(v.rule),
                json_escape(&v.message)
            )
        })
        .collect();
    format!(
        "{{\"check\":\"{}\",\"files_scanned\":{},\"violation_count\":{},\"violations\":[{}],\"rule_stats\":{},\"stale_waiver_count\":{},\"stale_waivers\":{}}}",
        json_escape(name),
        report.files_scanned,
        report.violations.len(),
        items.join(","),
        rule_stats_json(report),
        report.stale_waivers.len(),
        stale_json(report)
    )
}

/// Render the combined `report` document (lint + deps + rule inventory).
pub fn combined_json(lint: &Report, deps_report: &Report) -> String {
    let rules: Vec<String> = rules::RULE_NAMES
        .iter()
        .map(|r| format!("\"{r}\""))
        .collect();
    format!(
        "{{\"rules\":[{}],\"lint\":{},\"check_deps\":{},\"ok\":{}}}",
        rules.join(","),
        report_json("lint", lint),
        report_json("check-deps", deps_report),
        lint.clean(false) && deps_report.violations.is_empty()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_json_shape_parses_and_counts() {
        let mut fired = BTreeMap::new();
        fired.insert("error-path".to_owned(), 1usize);
        let r = Report {
            violations: vec![Violation {
                file: "a.rs".into(),
                line: 3,
                rule: "error-path",
                message: "msg".into(),
            }],
            files_scanned: 7,
            fired,
            ..Report::default()
        };
        let j = report_json("lint", &r);
        assert!(j.contains("\"files_scanned\":7"));
        assert!(j.contains("\"violation_count\":1"));
        assert!(j.contains("\"rule\":\"error-path\""));
        let v = json::parse(&j).expect("report JSON must parse");
        let stats = v.get("rule_stats").unwrap();
        assert_eq!(
            stats.get("error-path").unwrap().get("fired").unwrap().as_num(),
            Some(1.0)
        );
        // Every rule in the inventory appears in the stats.
        for rule in rules::RULE_NAMES {
            assert!(stats.get(rule).is_some(), "missing stats for {rule}");
        }
    }

    #[test]
    fn stale_waivers_fail_the_gate_unless_allowed() {
        let r = Report {
            stale_waivers: vec![StaleWaiver::Allowlist {
                rule: "error-path".into(),
                path_prefix: "crates/x/".into(),
            }],
            ..Report::default()
        };
        assert!(!r.clean(false));
        assert!(r.clean(true));
        assert!(r.stale_waivers[0].to_string().contains("stale entry"));
        let j = report_json("lint", &r);
        assert!(json::parse(&j).is_ok());
        assert!(j.contains("\"stale_waiver_count\":1"));
    }

    #[test]
    fn workspace_root_has_manifest() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn source_walker_skips_fixture_corpora() {
        let files = source_files(&workspace_root());
        assert!(
            !files.iter().any(|f| f.contains("/fixtures/")),
            "fixture snippets must not be linted as workspace code"
        );
    }
}
