#![warn(missing_docs)]
//! # xtask — the workspace correctness gate
//!
//! A zero-dependency static-analysis driver run as
//! `cargo run -p xtask -- <command>`:
//!
//! - **`lint`** — walk every workspace `.rs` file and enforce the
//!   deny-by-default rule set in [`rules`] (virtual-time purity,
//!   error-path discipline, lock discipline, `#[must_use]` coverage, no
//!   debug/placeholder macros). Prints `file:line: [rule] message` per
//!   violation and a machine-readable JSON summary; exits non-zero on any
//!   violation.
//! - **`check-deps`** — enforce that every manifest dependency is
//!   workspace-internal (see [`deps`]); the build must work offline.
//! - **`report`** — run both and print one combined JSON document.
//!
//! Escapes are auditable: inline `// xtask: allow(rule)` markers or
//! path-prefix entries in the root `xtask.allow` file.

pub mod benchdiff;
pub mod deps;
pub mod rules;
pub mod scan;

use std::path::{Path, PathBuf};

use rules::Violation;

/// Locate the workspace root from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Workspace-relative paths of every `.rs` file under version-controlled
/// source directories (skips `target/`, `.git`, and hidden directories).
pub fn source_files(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    files.sort();
    files
}

/// Workspace-relative paths of every `Cargo.toml`.
pub fn manifest_files(root: &Path) -> Vec<String> {
    let mut files = vec!["Cargo.toml".to_owned()];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let m = entry.path().join("Cargo.toml");
            if m.is_file() {
                if let Ok(rel) = m.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    files.sort();
    files
}

/// Outcome of a lint or check-deps run.
#[derive(Debug)]
pub struct Report {
    /// Violations that survived the allowlist.
    pub violations: Vec<Violation>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

/// Run the lint rule set over the workspace at `root`.
pub fn run_lint(root: &Path) -> Report {
    let allow = std::fs::read_to_string(root.join("xtask.allow"))
        .map(|t| rules::parse_allowlist(&t))
        .unwrap_or_default();
    let files = source_files(root);
    let mut violations = Vec::new();
    for rel in &files {
        if let Ok(src) = std::fs::read_to_string(root.join(rel)) {
            violations.extend(rules::lint_source(rel, &src));
        }
    }
    let violations = rules::apply_allowlist(violations, &allow);
    Report {
        violations,
        files_scanned: files.len(),
    }
}

/// Run the dependency policy over every manifest at `root`.
pub fn run_check_deps(root: &Path) -> Report {
    let files = manifest_files(root);
    let mut violations = Vec::new();
    for rel in &files {
        if let Ok(text) = std::fs::read_to_string(root.join(rel)) {
            violations.extend(deps::check_manifest(rel, &text));
        }
    }
    Report {
        violations,
        files_scanned: files.len(),
    }
}

/// Minimal JSON string escaping.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one report section as a JSON object.
pub fn report_json(name: &str, report: &Report) -> String {
    let items: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&v.file),
                v.line,
                json_escape(v.rule),
                json_escape(&v.message)
            )
        })
        .collect();
    format!(
        "{{\"check\":\"{}\",\"files_scanned\":{},\"violation_count\":{},\"violations\":[{}]}}",
        json_escape(name),
        report.files_scanned,
        report.violations.len(),
        items.join(",")
    )
}

/// Render the combined `report` document (lint + deps + rule inventory).
pub fn combined_json(lint: &Report, deps_report: &Report) -> String {
    let rules: Vec<String> = rules::RULE_NAMES
        .iter()
        .map(|r| format!("\"{r}\""))
        .collect();
    format!(
        "{{\"rules\":[{}],\"lint\":{},\"check_deps\":{},\"ok\":{}}}",
        rules.join(","),
        report_json("lint", lint),
        report_json("check-deps", deps_report),
        lint.violations.is_empty() && deps_report.violations.is_empty()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_json_shape() {
        let r = Report {
            violations: vec![Violation {
                file: "a.rs".into(),
                line: 3,
                rule: "error-path",
                message: "msg".into(),
            }],
            files_scanned: 7,
        };
        let j = report_json("lint", &r);
        assert!(j.contains("\"files_scanned\":7"));
        assert!(j.contains("\"violation_count\":1"));
        assert!(j.contains("\"rule\":\"error-path\""));
    }

    #[test]
    fn workspace_root_has_manifest() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }
}
