//! CLI entry point: `cargo run -p xtask -- <lint|check-deps|report>`.

use std::process::ExitCode;

use xtask::{combined_json, report_json, run_check_deps, run_lint, workspace_root};

const USAGE: &str = "\
usage: cargo run -p xtask -- <command> [--json]

commands:
  lint         enforce the correctness-gate rule set over all .rs files
  check-deps   enforce workspace-internal-only dependencies
  report       run both checks, print one combined JSON document

flags:
  --json       print only the machine-readable JSON summary
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_only = args.iter().any(|a| a == "--json");
    let command = args.iter().find(|a| !a.starts_with("--"));
    let root = workspace_root();

    match command.map(String::as_str) {
        Some("lint") => {
            let report = run_lint(&root);
            if json_only {
                println!("{}", report_json("lint", &report));
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                println!(
                    "lint: {} violation(s) across {} file(s) scanned",
                    report.violations.len(),
                    report.files_scanned
                );
                println!("{}", report_json("lint", &report));
            }
            exit_for(report.violations.is_empty())
        }
        Some("check-deps") => {
            let report = run_check_deps(&root);
            if json_only {
                println!("{}", report_json("check-deps", &report));
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                println!(
                    "check-deps: {} violation(s) across {} manifest(s)",
                    report.violations.len(),
                    report.files_scanned
                );
                println!("{}", report_json("check-deps", &report));
            }
            exit_for(report.violations.is_empty())
        }
        Some("report") => {
            let lint = run_lint(&root);
            let deps = run_check_deps(&root);
            println!("{}", combined_json(&lint, &deps));
            exit_for(lint.violations.is_empty() && deps.violations.is_empty())
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn exit_for(clean: bool) -> ExitCode {
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
