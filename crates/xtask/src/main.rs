//! CLI entry point:
//! `cargo run -p xtask -- <lint|check-deps|report|bench-diff|json-check>`.

use std::io::Read as _;
use std::process::ExitCode;

use xtask::{benchdiff, combined_json, json, report_json, run_check_deps, run_lint, workspace_root};

const USAGE: &str = "\
usage: cargo run -p xtask -- <command> [--json]
       cargo run -p xtask -- lint [--allow-stale] [--json]
       cargo run -p xtask -- bench-diff <current.json> <baseline.json> [--threshold=R] [--json]
       cargo run -p xtask -- json-check [file]

commands:
  lint         enforce the correctness-gate rule set over all .rs files;
               also fails on stale waivers (escapes that suppress
               nothing) unless --allow-stale
  check-deps   enforce workspace-internal-only dependencies
  report       run both checks, print one combined JSON document with
               per-rule fired/suppressed counts
  bench-diff   compare bench output against a baseline; fail when any
               benchmark is more than R times slower (default 1.25) or
               missing from the current run
  json-check   parse stdin (or a file) as JSON with the in-tree parser;
               exit non-zero on malformed input

flags:
  --json        print only the machine-readable JSON summary
  --allow-stale tolerate stale waivers (lint only)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_only = args.iter().any(|a| a == "--json");
    let allow_stale = args.iter().any(|a| a == "--allow-stale");
    let command = args.iter().find(|a| !a.starts_with("--"));
    let root = workspace_root();

    match command.map(String::as_str) {
        Some("lint") => {
            let report = run_lint(&root);
            if json_only {
                println!("{}", report_json("lint", &report));
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                for s in &report.stale_waivers {
                    println!("{s}");
                }
                println!(
                    "lint: {} violation(s), {} stale waiver(s) across {} file(s) scanned",
                    report.violations.len(),
                    report.stale_waivers.len(),
                    report.files_scanned
                );
                println!("{}", report_json("lint", &report));
            }
            exit_for(report.clean(allow_stale))
        }
        Some("check-deps") => {
            let report = run_check_deps(&root);
            if json_only {
                println!("{}", report_json("check-deps", &report));
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                println!(
                    "check-deps: {} violation(s) across {} manifest(s)",
                    report.violations.len(),
                    report.files_scanned
                );
                println!("{}", report_json("check-deps", &report));
            }
            exit_for(report.violations.is_empty())
        }
        Some("report") => {
            let lint = run_lint(&root);
            let deps = run_check_deps(&root);
            println!("{}", combined_json(&lint, &deps));
            exit_for(lint.clean(allow_stale) && deps.violations.is_empty())
        }
        Some("bench-diff") => {
            let positional: Vec<&String> = args
                .iter()
                .filter(|a| !a.starts_with("--") && *a != "bench-diff")
                .collect();
            let [current_path, baseline_path] = positional.as_slice() else {
                eprint!("{USAGE}");
                return ExitCode::from(2);
            };
            let threshold = match args
                .iter()
                .find_map(|a| a.strip_prefix("--threshold="))
                .map_or(Ok(1.25), str::parse::<f64>)
            {
                Ok(t) if t > 1.0 => t,
                _ => {
                    eprintln!("bench-diff: --threshold must be a number > 1.0");
                    return ExitCode::from(2);
                }
            };
            let load = |path: &str| -> Result<Vec<benchdiff::BenchEntry>, String> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                benchdiff::parse_results(&text).map_err(|e| format!("{path}: {e}"))
            };
            match (load(current_path), load(baseline_path)) {
                (Ok(current), Ok(baseline)) => {
                    let report = benchdiff::diff(&current, &baseline, threshold);
                    if json_only {
                        println!("{}", report.render_json());
                    } else {
                        print!("{}", report.render_text());
                        println!("{}", report.render_json());
                    }
                    exit_for(report.ok())
                }
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("bench-diff: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("json-check") => {
            let positional: Vec<&String> = args
                .iter()
                .filter(|a| !a.starts_with("--") && *a != "json-check")
                .collect();
            let text = match positional.as_slice() {
                [] => {
                    let mut buf = String::new();
                    if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                        eprintln!("json-check: cannot read stdin: {e}");
                        return ExitCode::FAILURE;
                    }
                    buf
                }
                [path] => match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("json-check: cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                _ => {
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            };
            match json::parse(&text) {
                Ok(_) => {
                    println!("json-check: OK ({} bytes)", text.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("json-check: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn exit_for(clean: bool) -> ExitCode {
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
