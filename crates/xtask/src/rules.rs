//! The correctness-gate rule set.
//!
//! Every rule is deny-by-default and scoped to the layer whose invariant
//! it protects:
//!
//! | rule            | scope                                   | protects |
//! |-----------------|-----------------------------------------|----------|
//! | `virtual-time`  | desim, mpisim, platform `src/`          | simulated clocks never read the wall clock |
//! | `error-path`    | h5lite, asyncvol, apio-core `src/`      | library code returns errors instead of panicking |
//! | `lock-discipline`| argolite, asyncvol `src/`              | every lock goes through `argolite::sync` (order-checked) |
//! | `must-use`      | argolite, h5lite, asyncvol `src/`       | futures/handles/guards cannot be silently dropped |
//! | `no-dbg-todo`   | whole workspace                         | no debugging or placeholder macros ship |
//! | `bounded-retry` | h5lite, asyncvol `src/`                 | retry loops carry both an attempt bound and a deadline |
//! | `planned-io`    | h5lite `container.rs`                   | data-path I/O goes through the planner's vectored batches, not scalar per-run calls |
//! | `trace-discipline` | everywhere except `crates/trace/`    | spans are opened through the RAII guard API and flight dumps go through the exporter API; the manual `begin_span`/`end_span` pair and raw `flight_records` access stay inside apio-trace |
//!
//! Escapes are explicit and auditable: an inline `// xtask: allow(rule)`
//! on the offending line, or a path entry in the root `xtask.allow` file.

use crate::scan::{find_token, scan};

/// One rule violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (kebab-case).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Names of all rules, for reports.
pub const RULE_NAMES: [&str; 8] = [
    "virtual-time",
    "error-path",
    "lock-discipline",
    "must-use",
    "no-dbg-todo",
    "bounded-retry",
    "planned-io",
    "trace-discipline",
];

/// The one crate allowed to call the manual span API (`begin_span` /
/// `end_span`): the tracer itself, whose guard type is built on it.
const TRACE_CRATE: &str = "crates/trace/";

/// Crates whose `src/` must stay in virtual time.
const VIRTUAL_TIME_CRATES: [&str; 3] = ["crates/desim/", "crates/mpisim/", "crates/platform/"];
/// Crates whose `src/` must use error returns, not panics.
const ERROR_PATH_CRATES: [&str; 3] = ["crates/h5lite/", "crates/asyncvol/", "crates/core/"];
/// Crates whose `src/` must take locks through the sanctioned module.
const LOCK_CRATES: [&str; 2] = ["crates/argolite/", "crates/asyncvol/"];
/// The one module allowed to touch `std::sync` lock primitives directly.
const SANCTIONED_LOCK_MODULES: [&str; 2] =
    ["crates/argolite/src/sync.rs", "crates/h5lite/src/sync.rs"];
/// Crates whose handle/guard types must be `#[must_use]`.
const MUST_USE_CRATES: [&str; 3] = ["crates/argolite/", "crates/h5lite/", "crates/asyncvol/"];
/// Crates whose retry loops must be bounded (attempts + deadline).
const BOUNDED_RETRY_CRATES: [&str; 2] = ["crates/h5lite/", "crates/asyncvol/"];
/// Files whose data paths must issue I/O through the planner's vectored
/// batches. Scalar `write_at`/`read_at` here is a regression back to
/// per-run request storms; metadata paths (superblock, metadata extents)
/// carry inline waivers.
const PLANNED_IO_FILES: [&str; 1] = ["crates/h5lite/src/container.rs"];
/// Type names (beyond the `*Guard` convention) that must be `#[must_use]`.
const MUST_USE_TYPES: [&str; 6] = [
    "TaskHandle",
    "Eventual",
    "Promise",
    "WriteBatch",
    "Request",
    "ReadRequest",
];

fn in_src(rel: &str, crates: &[&str]) -> bool {
    crates
        .iter()
        .any(|c| rel.starts_with(c) && rel[c.len()..].starts_with("src/"))
}

fn inline_allowed(raw: &str, rule: &str) -> bool {
    raw.find("xtask: allow(")
        .map(|p| raw[p + "xtask: allow(".len()..].starts_with(rule))
        .unwrap_or(false)
}

/// Lint one source file (workspace-relative `rel` path, full contents).
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines = scan(src);
    let rel_slash = rel.replace('\\', "/");
    let rel = rel_slash.as_str();

    let virtual_time = in_src(rel, &VIRTUAL_TIME_CRATES);
    let error_path = in_src(rel, &ERROR_PATH_CRATES);
    let lock_discipline =
        in_src(rel, &LOCK_CRATES) && !SANCTIONED_LOCK_MODULES.contains(&rel);
    let must_use = in_src(rel, &MUST_USE_CRATES);
    let bounded_retry = in_src(rel, &BOUNDED_RETRY_CRATES);
    let planned_io = PLANNED_IO_FILES.contains(&rel);
    let trace_discipline = !rel.starts_with(TRACE_CRATE);

    // Whole-file evidence for `bounded-retry`: a retry decision
    // (`is_retryable`) in non-test code is only legal when the same file
    // visibly carries an attempt bound and a deadline. The policy lives
    // next to the loop, so a reviewer can audit termination locally.
    let has_attempt_bound = bounded_retry
        && lines.iter().any(|l| {
            !l.in_test
                && (find_token(&l.code, "attempt") || find_token(&l.code, "max_attempts"))
        });
    let has_deadline = bounded_retry
        && lines
            .iter()
            .any(|l| !l.in_test && find_token(&l.code, "deadline"));

    let mut push = |line: usize, raw: &str, rule: &'static str, message: String| {
        if !inline_allowed(raw, rule) {
            out.push(Violation {
                file: rel.to_owned(),
                line,
                rule,
                message,
            });
        }
    };

    for l in &lines {
        if l.in_test {
            continue;
        }
        let code = l.code.as_str();

        if virtual_time {
            for tok in [
                "thread::sleep",
                "Instant::now",
                "std::time::Instant",
                "SystemTime",
            ] {
                if find_token(code, tok) {
                    push(
                        l.number,
                        &l.raw,
                        "virtual-time",
                        format!("`{tok}` reads the wall clock inside a virtual-time simulation path; use the engine's simulated clock"),
                    );
                }
            }
        }

        if error_path {
            for (tok, what) in [
                (".unwrap()", "unwrap"),
                (".expect(", "expect"),
                ("panic!(", "panic!"),
            ] {
                if find_token(code, tok) {
                    push(
                        l.number,
                        &l.raw,
                        "error-path",
                        format!("`{what}` in non-test library code; return an error (`H5Error`/`Result`) instead of panicking"),
                    );
                }
            }
        }

        if lock_discipline {
            let std_sync = find_token(code, "std::sync");
            let lock_ident = ["Mutex", "RwLock", "Condvar"]
                .into_iter()
                .find(|t| find_token(code, t));
            if let Some(ident) = lock_ident {
                if std_sync || find_token(code, "parking_lot") {
                    push(
                        l.number,
                        &l.raw,
                        "lock-discipline",
                        format!("raw `{ident}` acquisition outside the sanctioned lock-ordering module; use `argolite::sync` so lock-order cycles are detectable"),
                    );
                }
            }
        }

        if bounded_retry
            && find_token(code, "is_retryable")
            && !find_token(code, "fn is_retryable")
            && !(has_attempt_bound && has_deadline)
        {
            let missing = if has_attempt_bound {
                "a deadline"
            } else if has_deadline {
                "an attempt bound"
            } else {
                "an attempt bound and a deadline"
            };
            push(
                l.number,
                &l.raw,
                "bounded-retry",
                format!("retry decision (`is_retryable`) without {missing} in scope; bound the loop with `max_attempts` and a `deadline` (see `asyncvol::retry`)"),
            );
        }

        if planned_io {
            for tok in [".write_at(", ".read_at("] {
                if find_token(code, tok) {
                    push(
                        l.number,
                        &l.raw,
                        "planned-io",
                        format!("scalar `{tok}..)` in the container; route data-path I/O through `plan_io` + `write_vectored_at`/`read_vectored_at` so requests coalesce (metadata paths may waive inline)"),
                    );
                }
            }
        }

        if trace_discipline {
            for tok in [".begin_span(", ".end_span("] {
                if find_token(code, tok) {
                    push(
                        l.number,
                        &l.raw,
                        "trace-discipline",
                        format!("manual span API `{tok}..)` outside apio-trace; use `Tracer::span`/`span_with` so the RAII guard closes the span on every exit path"),
                    );
                }
            }
            if find_token(code, ".flight_records(") {
                push(
                    l.number,
                    &l.raw,
                    "trace-discipline",
                    "raw flight-recorder access `.flight_records(..)` outside apio-trace; dump through `Tracer::flight_dump` so records leave only via the exporter API".to_owned(),
                );
            }
        }

        if find_token(code, "dbg!(") {
            push(
                l.number,
                &l.raw,
                "no-dbg-todo",
                "`dbg!` must not ship; remove the debugging macro".to_owned(),
            );
        }
        for tok in ["todo!(", "unimplemented!("] {
            if find_token(code, tok) {
                push(
                    l.number,
                    &l.raw,
                    "no-dbg-todo",
                    format!("`{}` placeholder must not ship", &tok[..tok.len() - 1]),
                );
            }
        }
    }

    if must_use {
        out.extend(lint_must_use(rel, &lines));
    }
    out
}

/// `#[must_use]` check: a `pub struct` whose name is in
/// [`MUST_USE_TYPES`] or ends in `Guard` must carry the attribute within
/// the attribute block directly above it.
fn lint_must_use(rel: &str, lines: &[crate::scan::Line]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let Some(name) = pub_struct_name(&l.code) else {
            continue;
        };
        let required = MUST_USE_TYPES.contains(&name) || name.ends_with("Guard");
        if !required {
            continue;
        }
        // Walk the contiguous attribute/doc block above the struct.
        let mut marked = false;
        for prev in lines[..i].iter().rev() {
            let t = prev.code.trim();
            if t.contains("#[must_use") {
                marked = true;
                break;
            }
            // Doc comments arrive blanked; attributes and blank lines
            // continue the block, anything else ends it.
            if !(t.is_empty() || t.starts_with("#[") || t.starts_with(']')) {
                break;
            }
        }
        if !marked && !inline_allowed(&l.raw, "must-use") {
            out.push(Violation {
                file: rel.to_owned(),
                line: l.number,
                rule: "must-use",
                message: format!(
                    "`pub struct {name}` is a handle/guard type and must be `#[must_use]` so dropped results are a compile error"
                ),
            });
        }
    }
    out
}

fn pub_struct_name(code: &str) -> Option<&str> {
    let t = code.trim_start();
    let rest = t.strip_prefix("pub struct ")?;
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

/// Allowlist entry: `rule path-prefix` (or `* path-prefix`), `#` comments.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule name, or `*` for any rule.
    pub rule: String,
    /// Workspace-relative path prefix the waiver covers.
    pub path_prefix: String,
}

/// Parse the root `xtask.allow` file.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            let rule = parts.next()?.to_owned();
            let path_prefix = parts.next()?.to_owned();
            Some(AllowEntry { rule, path_prefix })
        })
        .collect()
}

/// Drop violations waived by the allowlist.
pub fn apply_allowlist(violations: Vec<Violation>, allow: &[AllowEntry]) -> Vec<Violation> {
    violations
        .into_iter()
        .filter(|v| {
            !allow.iter().any(|a| {
                (a.rule == "*" || a.rule == v.rule) && v.file.starts_with(&a.path_prefix)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(rel: &str, src: &str) -> Vec<&'static str> {
        let mut r: Vec<&'static str> = lint_source(rel, src).into_iter().map(|v| v.rule).collect();
        r.dedup();
        r
    }

    #[test]
    fn virtual_time_fires_on_wall_clock() {
        let bad = "fn step() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_fired("crates/desim/src/engine.rs", bad), ["virtual-time"]);
        let bad2 = "fn nap() { std::thread::sleep(d); }\n";
        assert_eq!(rules_fired("crates/mpisim/src/lib.rs", bad2), ["virtual-time"]);
        let bad3 = "fn now() -> SystemTime { SystemTime::now() }\n";
        assert_eq!(rules_fired("crates/platform/src/lib.rs", bad3), ["virtual-time"]);
    }

    #[test]
    fn virtual_time_scoped_to_sim_crates() {
        let src = "fn t0() { let t = std::time::Instant::now(); }\n";
        assert!(lint_source("crates/bench/src/harness.rs", src).is_empty());
        assert!(lint_source("crates/desim/tests/clock.rs", src).is_empty());
    }

    #[test]
    fn virtual_time_ignores_simulated_clock_types() {
        let ok = "fn now(&self) -> SimInstant { SimInstant::now_from(self.t) }\n";
        assert!(lint_source("crates/desim/src/engine.rs", ok).is_empty());
    }

    #[test]
    fn error_path_fires_on_unwrap_expect_panic() {
        assert_eq!(
            rules_fired("crates/h5lite/src/container.rs", "fn f() { x.unwrap(); }\n"),
            ["error-path"]
        );
        assert_eq!(
            rules_fired("crates/asyncvol/src/lib.rs", "fn f() { x.expect(\"m\"); }\n"),
            ["error-path"]
        );
        assert_eq!(
            rules_fired("crates/core/src/lib.rs", "fn f() { panic!(\"boom\"); }\n"),
            ["error-path"]
        );
    }

    #[test]
    fn error_path_skips_tests_comments_and_strings() {
        let src = "\
// a comment may say x.unwrap()
fn f() -> &'static str { \"not .unwrap() either\" }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { f().parse::<u8>().unwrap(); }
}
";
        assert!(lint_source("crates/h5lite/src/lib.rs", src).is_empty());
    }

    #[test]
    fn error_path_allows_unwrap_or_variants() {
        let ok = "fn f() { x.unwrap_or_else(PoisonError::into_inner); y.unwrap_or(0); }\n";
        assert!(lint_source("crates/h5lite/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn lock_discipline_fires_outside_sanctioned_module() {
        let bad = "use std::sync::Mutex;\n";
        assert_eq!(
            rules_fired("crates/argolite/src/lib.rs", bad),
            ["lock-discipline"]
        );
        assert_eq!(
            rules_fired("crates/asyncvol/src/lib.rs", "let m = std::sync::RwLock::new(0);\n"),
            ["lock-discipline"]
        );
        // The sanctioned module itself wraps std::sync — exempt.
        assert!(lint_source("crates/argolite/src/sync.rs", bad).is_empty());
    }

    #[test]
    fn lock_discipline_permits_sanctioned_and_unrelated_sync() {
        let ok = "use crate::sync::Mutex;\nuse std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\n";
        assert!(lint_source("crates/argolite/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn must_use_fires_on_unmarked_handle_types() {
        let bad = "pub struct TaskHandle {\n    x: u32,\n}\n";
        assert_eq!(rules_fired("crates/argolite/src/lib.rs", bad), ["must-use"]);
        let bad_guard = "pub struct FlushGuard<'a> {\n    x: &'a u32,\n}\n";
        assert_eq!(rules_fired("crates/h5lite/src/x.rs", bad_guard), ["must-use"]);
    }

    #[test]
    fn must_use_satisfied_by_attribute() {
        let ok = "/// Doc.\n#[must_use = \"reason\"]\npub struct TaskHandle {\n    x: u32,\n}\n";
        assert!(lint_source("crates/argolite/src/lib.rs", ok).is_empty());
        let ok2 = "#[derive(Debug)]\n#[must_use]\npub struct IoGuard;\n";
        assert!(lint_source("crates/asyncvol/src/lib.rs", ok2).is_empty());
    }

    #[test]
    fn must_use_ignores_other_types() {
        let ok = "pub struct Runtime {\n    x: u32,\n}\n";
        assert!(lint_source("crates/argolite/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn no_dbg_todo_fires_everywhere() {
        assert_eq!(
            rules_fired("crates/apps/src/nyx.rs", "fn f() { dbg!(1); }\n"),
            ["no-dbg-todo"]
        );
        assert_eq!(
            rules_fired("src/lib.rs", "fn f() { todo!() }\n"),
            ["no-dbg-todo"]
        );
        assert_eq!(
            rules_fired("tests/e2e.rs", "fn f() { unimplemented!() }\n"),
            ["no-dbg-todo"]
        );
    }

    #[test]
    fn bounded_retry_fires_on_unbounded_retry_loop() {
        let bad = "fn f() { while e.is_retryable() { e = op().unwrap_err(); } }\n";
        assert!(rules_fired("crates/asyncvol/src/retry.rs", bad).contains(&"bounded-retry"));
        // Half a bound is still unbounded.
        let half = "fn f(attempt: u32) { while e.is_retryable() && attempt < 5 { op(); } }\n";
        let fired = lint_source("crates/asyncvol/src/retry.rs", half);
        assert!(fired.iter().any(|v| v.rule == "bounded-retry"
            && v.message.contains("a deadline")));
    }

    #[test]
    fn bounded_retry_satisfied_by_attempt_bound_and_deadline() {
        let ok = "\
fn f(policy: &RetryPolicy, started: Instant) {
    let mut attempt = 1;
    while e.is_retryable()
        && attempt < policy.max_attempts
        && started.elapsed() < policy.deadline
    {
        attempt += 1;
    }
}
";
        assert!(lint_source("crates/asyncvol/src/retry.rs", ok).is_empty());
    }

    #[test]
    fn bounded_retry_ignores_the_taxonomy_definition_and_other_crates() {
        let def = "impl H5Error {\n    pub fn is_retryable(&self) -> bool {\n        true\n    }\n}\n";
        assert!(lint_source("crates/h5lite/src/error.rs", def).is_empty());
        let elsewhere = "fn f() { while e.is_retryable() { op(); } }\n";
        assert!(lint_source("crates/core/src/lib.rs", elsewhere).is_empty());
        assert!(lint_source("crates/asyncvol/tests/x.rs", elsewhere).is_empty());
    }

    #[test]
    fn planned_io_fires_on_scalar_data_path_calls() {
        let bad = "fn f(&self) { self.backend.write_at(addr, &bytes)?; }\n";
        assert_eq!(
            rules_fired("crates/h5lite/src/container.rs", bad),
            ["planned-io"]
        );
        let bad_read = "fn g(&self) { backend.read_at(0, &mut sb)?; }\n";
        assert_eq!(
            rules_fired("crates/h5lite/src/container.rs", bad_read),
            ["planned-io"]
        );
    }

    #[test]
    fn planned_io_permits_vectored_calls_and_other_files() {
        let vectored =
            "fn f(&self) { self.backend.write_vectored_at(&batch)?; self.backend.read_vectored_at(&mut b)?; }\n";
        assert!(lint_source("crates/h5lite/src/container.rs", vectored).is_empty());
        // Other files — including the storage backends themselves — are
        // free to use the scalar ops.
        let scalar = "fn f(&self) { self.inner.write_at(o, d) }\n";
        assert!(lint_source("crates/h5lite/src/storage.rs", scalar).is_empty());
        assert!(lint_source("crates/asyncvol/src/staging.rs", scalar).is_empty());
    }

    #[test]
    fn planned_io_waivable_inline_for_metadata_paths() {
        let ok = "fn flush(&self) { self.backend.write_at(0, &sb)?; // xtask: allow(planned-io) superblock\n}\n";
        assert!(lint_source("crates/h5lite/src/container.rs", ok).is_empty());
    }

    #[test]
    fn trace_discipline_fires_on_manual_span_api_outside_the_tracer() {
        let bad = "fn f(t: &Tracer) { let tok = t.begin_span(\"x\", None); t.end_span(tok); }\n";
        let fired = rules_fired("crates/asyncvol/src/lib.rs", bad);
        assert_eq!(fired, ["trace-discipline"]);
        assert!(rules_fired("crates/h5lite/src/container.rs", "fn f() { tracer.end_span(tok); }\n")
            .contains(&"trace-discipline"));
        assert!(rules_fired("tests/trace_pipeline.rs", "fn f() { t.begin_span(\"x\", None); }\n")
            .contains(&"trace-discipline"));
    }

    #[test]
    fn trace_discipline_fires_on_raw_flight_access_outside_the_tracer() {
        let bad = "fn f(t: &Tracer) { let recs = t.flight_records(); }\n";
        assert_eq!(rules_fired("crates/asyncvol/src/lib.rs", bad), ["trace-discipline"]);
        assert_eq!(rules_fired("tests/chaos.rs", bad), ["trace-discipline"]);
        // The exporter-facing dump API is the sanctioned path.
        let ok = "fn f(t: &Tracer) { let d = t.flight_dump(); let _ = d.jsonl(); }\n";
        assert!(lint_source("crates/asyncvol/src/lib.rs", ok).is_empty());
        // Inside apio-trace the raw accessor is implementation detail.
        assert!(lint_source("crates/trace/src/flight.rs", bad).is_empty());
    }

    #[test]
    fn trace_discipline_permits_the_tracer_crate_and_guard_api() {
        let manual = "fn f(t: &Tracer) { let tok = t.begin_span(\"x\", None); t.end_span(tok); }\n";
        assert!(lint_source("crates/trace/src/lib.rs", manual).is_empty());
        let guarded = "fn f(t: &Tracer) { let _g = t.span(\"x\"); t.span_with(\"y\", ev); }\n";
        assert!(lint_source("crates/asyncvol/src/lib.rs", guarded).is_empty());
        // Waivable inline like every other rule.
        let waived =
            "fn f() { t.begin_span(\"x\", None); } // xtask: allow(trace-discipline) ffi boundary\n";
        assert!(lint_source("crates/asyncvol/src/lib.rs", waived).is_empty());
    }

    #[test]
    fn inline_allow_waives_exactly_that_rule() {
        let src = "fn f() { x.unwrap(); } // xtask: allow(error-path) checked by caller\n";
        assert!(lint_source("crates/h5lite/src/lib.rs", src).is_empty());
        // Wrong rule name does not waive.
        let src2 = "fn f() { x.unwrap(); } // xtask: allow(virtual-time)\n";
        assert_eq!(lint_source("crates/h5lite/src/lib.rs", src2).len(), 1);
    }

    #[test]
    fn allowlist_waives_by_rule_and_path() {
        let v = vec![
            Violation {
                file: "crates/h5lite/src/a.rs".into(),
                line: 1,
                rule: "error-path",
                message: String::new(),
            },
            Violation {
                file: "crates/desim/src/b.rs".into(),
                line: 2,
                rule: "virtual-time",
                message: String::new(),
            },
        ];
        let allow = parse_allowlist(
            "# comment\nerror-path crates/h5lite/ # legacy code\n",
        );
        let left = apply_allowlist(v, &allow);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].rule, "virtual-time");
    }
}
