//! The correctness-gate rule set, hosted on the token engine.
//!
//! Every rule is deny-by-default and scoped to the layer whose invariant
//! it protects:
//!
//! | rule            | scope                                   | protects |
//! |-----------------|-----------------------------------------|----------|
//! | `virtual-time`  | desim, mpisim, platform `src/`          | simulated clocks never read the wall clock |
//! | `error-path`    | h5lite, asyncvol, apio-core `src/`      | library code returns errors instead of panicking |
//! | `lock-discipline`| argolite, asyncvol `src/`              | every lock goes through `argolite::sync` (order-checked) |
//! | `must-use`      | argolite, h5lite, asyncvol `src/`       | futures/handles/guards cannot be silently dropped |
//! | `no-dbg-todo`   | whole workspace                         | no debugging or placeholder macros ship |
//! | `bounded-retry` | h5lite, asyncvol `src/`                 | retry loops carry both an attempt bound and a deadline |
//! | `planned-io`    | h5lite `container.rs`                   | data-path I/O goes through the planner's vectored batches, not scalar per-run calls |
//! | `trace-discipline` | everywhere except `crates/trace/`    | spans are opened through the RAII guard API and flight dumps go through the exporter API |
//! | `guard-across-boundary` | argolite, asyncvol, h5lite `src/` | no lock guard is live across `submit`/`wait`/`block_on`/channel-recv (dataflow pass) |
//! | `blocking-in-task` | argolite, asyncvol, h5lite `src/`    | no `std::fs`/`std::net`/`thread::sleep` inside closures handed to the task scheduler |
//! | `checked-offset-arith` | h5lite `storage.rs`, `container.rs`, `plan.rs` | device offsets/addresses use `checked_*`/`saturating_*`, never raw `+`/`*` |
//! | `swallowed-result` | asyncvol, h5lite `src/`              | no `let _ =` / statement `.ok();` discarding a `Result` on an I/O path |
//! | `superblock-discipline` | h5lite `src/` except `superblock.rs` | the superblock area (offset 0) is written only through the dual-slot commit protocol |
//! | `ring-discipline` | asyncvol `lib.rs`, `batch.rs`           | background-write paths reach storage via ring submission or planned vectored I/O, never scalar backend calls |
//! | `snapshot-discipline` | h5lite `src/` except `meta.rs`       | metadata state is resolved through the sharded `MetaPlane` API, never by locking a monolithic `meta` field directly |
//! | `rank-context` | mpisim `runner.rs`, kernels `measure.rs`     | epoch-runner spans carry a `SpanContext` (`span_ctx`), so per-rank streams stay attributable |
//!
//! Twelve of the rules are line-local token patterns; the other four
//! ride the intra-procedural dataflow passes in [`crate::dataflow`].
//! Lexing (see [`crate::lexer`]) makes every rule comment-, string-,
//! and lifetime-aware for free.
//!
//! Escapes are explicit and auditable: an inline `// xtask: allow(rule)`
//! on the offending line, or a path entry in the root `xtask.allow`
//! file. Both are themselves audited — a waiver that suppresses nothing
//! is *stale* and fails the gate (see [`crate::run_lint`]).

use crate::dataflow;
use crate::lexer::{lex, Token, TokenKind};
use crate::scan::scan;

/// One rule violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (kebab-case).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Names of all rules, for reports and the fixture corpus.
pub const RULE_NAMES: [&str; 16] = [
    "virtual-time",
    "error-path",
    "lock-discipline",
    "must-use",
    "no-dbg-todo",
    "bounded-retry",
    "planned-io",
    "trace-discipline",
    "guard-across-boundary",
    "blocking-in-task",
    "checked-offset-arith",
    "swallowed-result",
    "superblock-discipline",
    "ring-discipline",
    "snapshot-discipline",
    "rank-context",
];

/// The one crate allowed to call the manual span API (`begin_span` /
/// `end_span`): the tracer itself, whose guard type is built on it.
const TRACE_CRATE: &str = "crates/trace/";

/// Crates whose `src/` must stay in virtual time.
const VIRTUAL_TIME_CRATES: [&str; 3] = ["crates/desim/", "crates/mpisim/", "crates/platform/"];
/// Crates whose `src/` must use error returns, not panics.
const ERROR_PATH_CRATES: [&str; 3] = ["crates/h5lite/", "crates/asyncvol/", "crates/core/"];
/// Crates whose `src/` must take locks through the sanctioned module.
const LOCK_CRATES: [&str; 2] = ["crates/argolite/", "crates/asyncvol/"];
/// The one module allowed to touch `std::sync` lock primitives directly.
const SANCTIONED_LOCK_MODULES: [&str; 2] =
    ["crates/argolite/src/sync.rs", "crates/h5lite/src/sync.rs"];
/// Crates whose handle/guard types must be `#[must_use]`.
const MUST_USE_CRATES: [&str; 3] = ["crates/argolite/", "crates/h5lite/", "crates/asyncvol/"];
/// Crates whose retry loops must be bounded (attempts + deadline).
const BOUNDED_RETRY_CRATES: [&str; 2] = ["crates/h5lite/", "crates/asyncvol/"];
/// Files whose data paths must issue I/O through the planner's vectored
/// batches. Scalar `write_at`/`read_at` here is a regression back to
/// per-run request storms; metadata paths carry inline waivers.
const PLANNED_IO_FILES: [&str; 1] = ["crates/h5lite/src/container.rs"];
/// Asyncvol background-write paths. With `RingBackend` in place, writes
/// reach storage through ring submission (or the container's planned
/// vectored path); a direct scalar `StorageBackend` call here is a
/// per-request device round trip the ring exists to eliminate. The WAL
/// staging module is out of scope — its scalar device I/O is the log's
/// own format.
const RING_DISCIPLINE_FILES: [&str; 2] =
    ["crates/asyncvol/src/lib.rs", "crates/asyncvol/src/batch.rs"];
/// Epoch-runner files whose spans must carry a `SpanContext`: an
/// untagged `.span(..)` here lands every record on the shared untagged
/// viewer row and the cross-rank analysis silently loses the rank.
/// Instants are exempt — causal edges may come from either API.
const RANK_CONTEXT_FILES: [&str; 2] =
    ["crates/mpisim/src/runner.rs", "crates/kernels/src/measure.rs"];
/// Type names (beyond the `*Guard` convention) that must be `#[must_use]`.
const MUST_USE_TYPES: [&str; 6] = [
    "TaskHandle",
    "Eventual",
    "Promise",
    "WriteBatch",
    "Request",
    "ReadRequest",
];
/// Crates whose `src/` runs under the task scheduler: guard liveness
/// and blocking-call discipline apply.
const SCHEDULED_CRATES: [&str; 3] = ["crates/argolite/", "crates/asyncvol/", "crates/h5lite/"];
/// Files carrying device-address arithmetic.
const OFFSET_ARITH_FILES: [&str; 3] = [
    "crates/h5lite/src/storage.rs",
    "crates/h5lite/src/container.rs",
    "crates/h5lite/src/plan.rs",
];
/// Crates whose `src/` must not discard `Result`s.
const SWALLOWED_RESULT_CRATES: [&str; 2] = ["crates/asyncvol/", "crates/h5lite/"];
/// The one module allowed to write the superblock area (offset 0): the
/// dual-slot commit protocol. A raw offset-0 write anywhere else in the
/// container crate can tear the anchor every reopen depends on.
const SUPERBLOCK_MODULE: &str = "crates/h5lite/src/superblock.rs";
/// The one module allowed to acquire metadata-plane locks directly: the
/// sharded plane itself. A raw `meta.read()`/`meta.write()` anywhere
/// else in the crate is a regression back to the monolithic metadata
/// lock — it bypasses the per-shard counters, the MVCC working/published
/// split, and the zero-lock snapshot path that multi-tenant planning
/// depends on.
const META_PLANE_MODULE: &str = "crates/h5lite/src/meta.rs";

fn in_src(rel: &str, crates: &[&str]) -> bool {
    crates
        .iter()
        .any(|c| rel.starts_with(c) && rel[c.len()..].starts_with("src/"))
}

/// The rule named by an `// xtask: allow(rule)` marker on this line, if
/// the marker sits in a *plain* line comment (`//`, not `///` or `//!`
/// doc text, not a string literal) and names a known rule. `code` is
/// the stripped text from [`scan`] (same length as `raw`, comment and
/// literal contents blanked), which is what distinguishes a real
/// comment from a string literal that merely mentions the syntax.
pub fn marker_rule<'a>(code: &str, raw: &'a str) -> Option<&'a str> {
    let p = raw.find("xtask: allow(")?;
    let after = &raw[p + "xtask: allow(".len()..];
    let rule = &after[..after.find(')')?];
    if !RULE_NAMES.contains(&rule) {
        return None;
    }
    // The marker must sit inside a plain `//` comment. `strip` keeps
    // exactly the comment-opening `//` in the stripped text (string
    // contents, including any `//` they contain, are fully blanked), so
    // the first `//` in `code` is where the line's comment begins.
    let q = code.find("//")?;
    if p < q {
        return None;
    }
    // Doc text (`///`, `//!`) is prose, not a waiver.
    if raw[q..].starts_with("///") || raw[q..].starts_with("//!") {
        return None;
    }
    Some(rule)
}

fn inline_allowed(code: &str, raw: &str, rule: &str) -> bool {
    marker_rule(code, raw) == Some(rule)
}

/// An inline `// xtask: allow(rule)` marker found in a file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InlineWaiver {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the marker sits on.
    pub line: usize,
    /// The waived rule.
    pub rule: String,
    /// Whether the marker suppressed at least one violation.
    pub used: bool,
}

/// Full lint outcome for one file.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Violations that survived inline waivers (allowlist not applied).
    pub violations: Vec<Violation>,
    /// Violations suppressed by an inline waiver.
    pub suppressed: Vec<Violation>,
    /// Every inline waiver in the file, with usage.
    pub waivers: Vec<InlineWaiver>,
}

/// Lint one source file (workspace-relative `rel` path, full contents),
/// keeping the audit trail: suppressed violations and waiver usage.
pub fn lint_source_full(rel: &str, src: &str) -> FileLint {
    let rel_slash = rel.replace('\\', "/");
    let rel = rel_slash.as_str();
    let lines = scan(src);
    let tokens = lex(src);
    let in_test =
        |line: usize| lines.get(line.wrapping_sub(1)).is_some_and(|l| l.in_test);

    let mut cands: Vec<Violation> = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        cands.push(Violation {
            file: rel.to_owned(),
            line,
            rule,
            message,
        });
    };

    let virtual_time = in_src(rel, &VIRTUAL_TIME_CRATES);
    let error_path = in_src(rel, &ERROR_PATH_CRATES);
    let lock_discipline = in_src(rel, &LOCK_CRATES) && !SANCTIONED_LOCK_MODULES.contains(&rel);
    let must_use = in_src(rel, &MUST_USE_CRATES);
    let bounded_retry = in_src(rel, &BOUNDED_RETRY_CRATES);
    let planned_io = PLANNED_IO_FILES.contains(&rel);
    let ring_discipline = RING_DISCIPLINE_FILES.contains(&rel);
    let rank_context = RANK_CONTEXT_FILES.contains(&rel);
    let trace_discipline = !rel.starts_with(TRACE_CRATE);
    let scheduled = in_src(rel, &SCHEDULED_CRATES);
    let offset_arith = OFFSET_ARITH_FILES.contains(&rel);
    let swallowed = in_src(rel, &SWALLOWED_RESULT_CRATES);
    let superblock = in_src(rel, &["crates/h5lite/"]) && rel != SUPERBLOCK_MODULE;
    let snapshot_discipline = in_src(rel, &["crates/h5lite/"]) && rel != META_PLANE_MODULE;

    // Whole-file evidence for `bounded-retry`: a retry decision
    // (`is_retryable`) in non-test code is only legal when the same file
    // visibly carries an attempt bound and a deadline.
    let has_attempt_bound = bounded_retry
        && tokens.iter().any(|t| {
            t.kind == TokenKind::Ident && t.text.starts_with("attempt") && !in_test(t.line)
                || t.is_ident("max_attempts") && !in_test(t.line)
        });
    let has_deadline = bounded_retry
        && tokens.iter().any(|t| {
            t.kind == TokenKind::Ident && t.text.starts_with("deadline") && !in_test(t.line)
        });

    // --- Line-local token patterns (the eight re-hosted rules). ---
    for (k, t) in tokens.iter().enumerate() {
        let line = t.line;
        let at =
            |j: usize, text: &str| tokens.get(k + j).is_some_and(|t| t.text == text);
        let seq = |pat: &[&str]| pat.iter().enumerate().all(|(j, p)| at(j, p));

        if virtual_time {
            for (pat, name) in [
                (&["thread", "::", "sleep"][..], "thread::sleep"),
                (&["Instant", "::", "now"][..], "Instant::now"),
                (&["std", "::", "time", "::", "Instant"][..], "std::time::Instant"),
                (&["SystemTime"][..], "SystemTime"),
            ] {
                if seq(pat) {
                    push(
                        line,
                        "virtual-time",
                        format!("`{name}` reads the wall clock inside a virtual-time simulation path; use the engine's simulated clock"),
                    );
                }
            }
        }

        if error_path {
            for (pat, what) in [
                (&[".", "unwrap", "(", ")"][..], "unwrap"),
                (&[".", "expect", "("][..], "expect"),
                (&["panic", "!", "("][..], "panic!"),
            ] {
                if seq(pat) {
                    push(
                        line,
                        "error-path",
                        format!("`{what}` in non-test library code; return an error (`H5Error`/`Result`) instead of panicking"),
                    );
                }
            }
        }

        if lock_discipline {
            if let Some(ident) = ["Mutex", "RwLock", "Condvar"]
                .into_iter()
                .find(|n| t.is_ident(n))
            {
                // Same-line evidence that this is the std/parking_lot
                // type, not the sanctioned shim.
                let run: Vec<&Token> = tokens.iter().filter(|o| o.line == line).collect();
                let std_sync = (0..run.len().saturating_sub(2)).any(|w| {
                    run[w].is_ident("std")
                        && run[w + 1].is_punct("::")
                        && run[w + 2].is_ident("sync")
                });
                let raw_source = std_sync || run.iter().any(|o| o.is_ident("parking_lot"));
                if raw_source {
                    push(
                        line,
                        "lock-discipline",
                        format!("raw `{ident}` acquisition outside the sanctioned lock-ordering module; use `argolite::sync` so lock-order cycles are detectable"),
                    );
                }
            }
        }

        if bounded_retry
            && t.is_ident("is_retryable")
            && !(k > 0 && tokens[k - 1].is_ident("fn"))
            && !(has_attempt_bound && has_deadline)
        {
            let missing = if has_attempt_bound {
                "a deadline"
            } else if has_deadline {
                "an attempt bound"
            } else {
                "an attempt bound and a deadline"
            };
            push(
                line,
                "bounded-retry",
                format!("retry decision (`is_retryable`) without {missing} in scope; bound the loop with `max_attempts` and a `deadline` (see `asyncvol::retry`)"),
            );
        }

        if planned_io {
            for name in ["write_at", "read_at"] {
                if seq(&[".", name, "("]) {
                    push(
                        line,
                        "planned-io",
                        format!("scalar `.{name}(..)` in the container; route data-path I/O through `plan_io` + `write_vectored_at`/`read_vectored_at` so requests coalesce (metadata paths may waive inline)"),
                    );
                }
            }
        }

        if ring_discipline {
            for name in ["write_at", "read_at"] {
                if seq(&[".", name, "("]) {
                    push(
                        line,
                        "ring-discipline",
                        format!("scalar `.{name}(..)` on an asyncvol background-write path; submit through the ring (`submit_keyed` / `RingOp`) or the container's planned vectored path so requests coalesce"),
                    );
                }
            }
        }

        if rank_context {
            for name in ["span", "span_with"] {
                if seq(&[".", name, "("]) {
                    push(
                        line,
                        "rank-context",
                        format!("untagged `.{name}(..)` in an epoch runner; use `span_ctx`/`span_ctx_with` so the record carries its (job, rank, epoch) and lands on the rank's viewer row"),
                    );
                }
            }
        }

        if trace_discipline {
            for name in ["begin_span", "end_span"] {
                if seq(&[".", name, "("]) {
                    push(
                        line,
                        "trace-discipline",
                        format!("manual span API `.{name}(..)` outside apio-trace; use `Tracer::span`/`span_with` so the RAII guard closes the span on every exit path"),
                    );
                }
            }
            if seq(&[".", "flight_records", "("]) {
                push(
                    line,
                    "trace-discipline",
                    "raw flight-recorder access `.flight_records(..)` outside apio-trace; dump through `Tracer::flight_dump` so records leave only via the exporter API".to_owned(),
                );
            }
        }

        if snapshot_discipline {
            for name in ["read", "write"] {
                if seq(&["meta", ".", name, "("]) {
                    push(
                        line,
                        "snapshot-discipline",
                        format!("direct metadata lock `meta.{name}()` outside the sharded plane; resolve through `MetaPlane` (`working`/`mutate`/`snapshot`) so per-shard accounting and MVCC publication stay intact"),
                    );
                }
            }
            for name in ["meta_read", "meta_write"] {
                if seq(&[".", name, "("]) {
                    push(
                        line,
                        "snapshot-discipline",
                        format!("raw metadata lock accessor `.{name}()` outside the sharded plane; resolve through `MetaPlane` (`working`/`mutate`/`snapshot`) so per-shard accounting and MVCC publication stay intact"),
                    );
                }
            }
        }

        if superblock && seq(&[".", "write_at", "(", "0", ","]) {
            push(
                line,
                "superblock-discipline",
                "raw write to the superblock area (offset 0); commit through `superblock::commit` so the dual-slot protocol keeps one valid anchor at all times".to_owned(),
            );
        }

        if seq(&["dbg", "!", "("]) {
            push(
                line,
                "no-dbg-todo",
                "`dbg!` must not ship; remove the debugging macro".to_owned(),
            );
        }
        for name in ["todo", "unimplemented"] {
            if seq(&[name, "!", "("]) {
                push(
                    line,
                    "no-dbg-todo",
                    format!("`{name}!` placeholder must not ship"),
                );
            }
        }
    }

    if must_use {
        lint_must_use(rel, &tokens, &mut cands);
    }

    // --- Dataflow rules. ---
    if scheduled {
        for f in dataflow::guard_across_boundary(&tokens) {
            cands.push(Violation {
                file: rel.to_owned(),
                line: f.line,
                rule: "guard-across-boundary",
                message: f.message,
            });
        }
        for f in dataflow::blocking_in_task(&tokens) {
            cands.push(Violation {
                file: rel.to_owned(),
                line: f.line,
                rule: "blocking-in-task",
                message: f.message,
            });
        }
    }
    if offset_arith {
        for f in dataflow::unchecked_offset_arith(&tokens) {
            cands.push(Violation {
                file: rel.to_owned(),
                line: f.line,
                rule: "checked-offset-arith",
                message: f.message,
            });
        }
    }
    if swallowed {
        for f in dataflow::swallowed_result(&tokens) {
            cands.push(Violation {
                file: rel.to_owned(),
                line: f.line,
                rule: "swallowed-result",
                message: f.message,
            });
        }
    }

    // --- Test filtering, inline waivers, waiver audit. ---
    let mut out = FileLint::default();
    for v in cands {
        if lines.get(v.line.wrapping_sub(1)).is_some_and(|l| l.in_test) {
            continue;
        }
        let (code, raw) = lines
            .get(v.line.wrapping_sub(1))
            .map(|l| (l.code.as_str(), l.raw.as_str()))
            .unwrap_or(("", ""));
        if inline_allowed(code, raw, v.rule) {
            out.suppressed.push(v);
        } else {
            out.violations.push(v);
        }
    }
    for l in &lines {
        if l.in_test {
            continue;
        }
        if let Some(rule) = marker_rule(&l.code, &l.raw) {
            let used = out
                .suppressed
                .iter()
                .any(|s| s.line == l.number && s.rule == rule);
            out.waivers.push(InlineWaiver {
                file: rel.to_owned(),
                line: l.number,
                rule: rule.to_owned(),
                used,
            });
        }
    }
    out.violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Lint one source file; violations after inline waivers.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    lint_source_full(rel, src).violations
}

/// `#[must_use]` check on the token stream: a `pub struct` whose name is
/// in [`MUST_USE_TYPES`] or ends in `Guard` must carry the attribute in
/// the attribute block directly above it. Doc comments never interrupt
/// the block — the lexer dropped them.
fn lint_must_use(rel: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for k in 0..tokens.len() {
        if !tokens[k].is_ident("pub")
            || !tokens.get(k + 1).is_some_and(|t| t.is_ident("struct"))
        {
            continue;
        }
        let Some(name_tok) = tokens.get(k + 2).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        let name = name_tok.text.as_str();
        if !(MUST_USE_TYPES.contains(&name) || name.ends_with("Guard")) {
            continue;
        }
        // Walk the contiguous `#[...]` attribute blocks above `pub`.
        let mut j = k;
        let mut marked = false;
        while j >= 1 {
            let prev = &tokens[j - 1];
            if prev.kind != TokenKind::Close(crate::lexer::Delim::Bracket) {
                break;
            }
            // Find the matching `[` backwards.
            let mut depth = 0i64;
            let mut open = j - 1;
            loop {
                match tokens[open].kind {
                    TokenKind::Close(crate::lexer::Delim::Bracket) => depth += 1,
                    TokenKind::Open(crate::lexer::Delim::Bracket) => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if open == 0 {
                    break;
                }
                open -= 1;
            }
            if open == 0 || !tokens[open - 1].is_punct("#") {
                break;
            }
            if tokens[open..j].iter().any(|t| t.is_ident("must_use")) {
                marked = true;
                break;
            }
            j = open - 1;
        }
        if !marked {
            out.push(Violation {
                file: rel.to_owned(),
                line: name_tok.line,
                rule: "must-use",
                message: format!(
                    "`pub struct {name}` is a handle/guard type and must be `#[must_use]` so dropped results are a compile error"
                ),
            });
        }
    }
}

/// Allowlist entry: `rule path-prefix` (or `* path-prefix`), `#` comments.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule name, or `*` for any rule.
    pub rule: String,
    /// Workspace-relative path prefix the waiver covers.
    pub path_prefix: String,
}

/// Parse the root `xtask.allow` file.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            let rule = parts.next()?.to_owned();
            let path_prefix = parts.next()?.to_owned();
            Some(AllowEntry { rule, path_prefix })
        })
        .collect()
}

/// Drop violations waived by the allowlist.
pub fn apply_allowlist(violations: Vec<Violation>, allow: &[AllowEntry]) -> Vec<Violation> {
    apply_allowlist_tracked(violations, allow).0
}

/// Drop violations waived by the allowlist, also reporting how many
/// violations each entry suppressed (index-aligned with `allow`) — the
/// stale-waiver audit's input.
pub fn apply_allowlist_tracked(
    violations: Vec<Violation>,
    allow: &[AllowEntry],
) -> (Vec<Violation>, Vec<usize>) {
    let mut hits = vec![0usize; allow.len()];
    let kept = violations
        .into_iter()
        .filter(|v| {
            let mut waived = false;
            for (i, a) in allow.iter().enumerate() {
                if (a.rule == "*" || a.rule == v.rule) && v.file.starts_with(&a.path_prefix) {
                    hits[i] += 1;
                    waived = true;
                }
            }
            !waived
        })
        .collect();
    (kept, hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(rel: &str, src: &str) -> Vec<&'static str> {
        let mut r: Vec<&'static str> = lint_source(rel, src).into_iter().map(|v| v.rule).collect();
        r.dedup();
        r
    }

    #[test]
    fn virtual_time_fires_on_wall_clock() {
        let bad = "fn step() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_fired("crates/desim/src/engine.rs", bad), ["virtual-time"]);
        let bad2 = "fn nap() { std::thread::sleep(d); }\n";
        assert_eq!(rules_fired("crates/mpisim/src/lib.rs", bad2), ["virtual-time"]);
        let bad3 = "fn now() -> SystemTime { SystemTime::now() }\n";
        assert_eq!(rules_fired("crates/platform/src/lib.rs", bad3), ["virtual-time"]);
    }

    #[test]
    fn virtual_time_scoped_to_sim_crates() {
        let src = "fn t0() { let t = std::time::Instant::now(); }\n";
        assert!(lint_source("crates/bench/src/harness.rs", src).is_empty());
        assert!(lint_source("crates/desim/tests/clock.rs", src).is_empty());
    }

    #[test]
    fn virtual_time_ignores_simulated_clock_types() {
        let ok = "fn now(&self) -> SimInstant { SimInstant::now_from(self.t) }\n";
        assert!(lint_source("crates/desim/src/engine.rs", ok).is_empty());
    }

    #[test]
    fn error_path_fires_on_unwrap_expect_panic() {
        assert_eq!(
            rules_fired("crates/h5lite/src/container.rs", "fn f() { x.unwrap(); }\n"),
            ["error-path"]
        );
        assert_eq!(
            rules_fired("crates/asyncvol/src/lib.rs", "fn f() { x.expect(\"m\"); }\n"),
            ["error-path"]
        );
        assert_eq!(
            rules_fired("crates/core/src/lib.rs", "fn f() { panic!(\"boom\"); }\n"),
            ["error-path"]
        );
    }

    #[test]
    fn error_path_skips_tests_comments_and_strings() {
        let src = "\
// a comment may say x.unwrap()
fn f() -> &'static str { \"not .unwrap() either\" }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { f().parse::<u8>().unwrap(); }
}
";
        assert!(lint_source("crates/h5lite/src/lib.rs", src).is_empty());
    }

    #[test]
    fn error_path_allows_unwrap_or_variants() {
        let ok = "fn f() { x.unwrap_or_else(PoisonError::into_inner); y.unwrap_or(0); }\n";
        assert!(lint_source("crates/h5lite/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn lock_discipline_fires_outside_sanctioned_module() {
        let bad = "use std::sync::Mutex;\n";
        assert_eq!(
            rules_fired("crates/argolite/src/lib.rs", bad),
            ["lock-discipline"]
        );
        assert_eq!(
            rules_fired("crates/asyncvol/src/lib.rs", "let m = std::sync::RwLock::new(0);\n"),
            ["lock-discipline"]
        );
        // The sanctioned module itself wraps std::sync — exempt.
        assert!(lint_source("crates/argolite/src/sync.rs", bad).is_empty());
    }

    #[test]
    fn lock_discipline_permits_sanctioned_and_unrelated_sync() {
        let ok = "use crate::sync::Mutex;\nuse std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\n";
        assert!(lint_source("crates/argolite/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn must_use_fires_on_unmarked_handle_types() {
        let bad = "pub struct TaskHandle {\n    x: u32,\n}\n";
        assert_eq!(rules_fired("crates/argolite/src/lib.rs", bad), ["must-use"]);
        let bad_guard = "pub struct FlushGuard<'a> {\n    x: &'a u32,\n}\n";
        assert_eq!(rules_fired("crates/h5lite/src/x.rs", bad_guard), ["must-use"]);
    }

    #[test]
    fn must_use_satisfied_by_attribute() {
        let ok = "/// Doc.\n#[must_use = \"reason\"]\npub struct TaskHandle {\n    x: u32,\n}\n";
        assert!(lint_source("crates/argolite/src/lib.rs", ok).is_empty());
        let ok2 = "#[derive(Debug)]\n#[must_use]\npub struct IoGuard;\n";
        assert!(lint_source("crates/asyncvol/src/lib.rs", ok2).is_empty());
        // Attribute blocks stack in either order.
        let ok3 = "#[must_use]\n#[derive(Debug)]\npub struct IoGuard;\n";
        assert!(lint_source("crates/asyncvol/src/lib.rs", ok3).is_empty());
    }

    #[test]
    fn must_use_ignores_other_types() {
        let ok = "pub struct Runtime {\n    x: u32,\n}\n";
        assert!(lint_source("crates/argolite/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn no_dbg_todo_fires_everywhere() {
        assert_eq!(
            rules_fired("crates/apps/src/nyx.rs", "fn f() { dbg!(1); }\n"),
            ["no-dbg-todo"]
        );
        assert_eq!(
            rules_fired("src/lib.rs", "fn f() { todo!() }\n"),
            ["no-dbg-todo"]
        );
        assert_eq!(
            rules_fired("tests/e2e.rs", "fn f() { unimplemented!() }\n"),
            ["no-dbg-todo"]
        );
    }

    #[test]
    fn bounded_retry_fires_on_unbounded_retry_loop() {
        let bad = "fn f() { while e.is_retryable() { e = op().unwrap_err(); } }\n";
        assert!(rules_fired("crates/asyncvol/src/retry.rs", bad).contains(&"bounded-retry"));
        // Half a bound is still unbounded.
        let half = "fn f(attempt: u32) { while e.is_retryable() && attempt < 5 { op(); } }\n";
        let fired = lint_source("crates/asyncvol/src/retry.rs", half);
        assert!(fired.iter().any(|v| v.rule == "bounded-retry"
            && v.message.contains("a deadline")));
    }

    #[test]
    fn bounded_retry_satisfied_by_attempt_bound_and_deadline() {
        let ok = "\
fn f(policy: &RetryPolicy, started: SimInstant) {
    let mut attempt = 1;
    while e.is_retryable()
        && attempt < policy.max_attempts
        && started.elapsed() < policy.deadline
    {
        attempt += 1;
    }
}
";
        assert!(lint_source("crates/asyncvol/src/retry.rs", ok).is_empty());
    }

    #[test]
    fn bounded_retry_ignores_the_taxonomy_definition_and_other_crates() {
        let def = "impl H5Error {\n    pub fn is_retryable(&self) -> bool {\n        true\n    }\n}\n";
        assert!(lint_source("crates/h5lite/src/error.rs", def).is_empty());
        let elsewhere = "fn f() { while e.is_retryable() { op(); } }\n";
        assert!(lint_source("crates/core/src/lib.rs", elsewhere).is_empty());
        assert!(lint_source("crates/asyncvol/tests/x.rs", elsewhere).is_empty());
    }

    #[test]
    fn planned_io_fires_on_scalar_data_path_calls() {
        let bad = "fn f(&self) { self.backend.write_at(addr, &bytes)?; }\n";
        assert!(rules_fired("crates/h5lite/src/container.rs", bad)
            .contains(&"planned-io"));
        let bad_read = "fn g(&self) { backend.read_at(0, &mut sb)?; }\n";
        assert!(rules_fired("crates/h5lite/src/container.rs", bad_read)
            .contains(&"planned-io"));
    }

    #[test]
    fn planned_io_permits_vectored_calls_and_other_files() {
        let vectored =
            "fn f(&self) { self.backend.write_vectored_at(&batch)?; self.backend.read_vectored_at(&mut b)?; }\n";
        assert!(lint_source("crates/h5lite/src/container.rs", vectored).is_empty());
        // Other files are free to use the scalar ops (planned-io-wise).
        let scalar = "fn f(&self) { self.inner.write_at(o, d) }\n";
        assert!(!lint_source("crates/h5lite/src/storage.rs", scalar)
            .iter()
            .any(|v| v.rule == "planned-io"));
        assert!(lint_source("crates/asyncvol/src/staging.rs", scalar).is_empty());
    }

    #[test]
    fn planned_io_waivable_inline_for_metadata_paths() {
        let ok = "fn flush(&self) { self.backend.write_at(meta_addr, &meta)?; // xtask: allow(planned-io) metadata extent\n}\n";
        assert!(lint_source("crates/h5lite/src/container.rs", ok).is_empty());
    }

    #[test]
    fn trace_discipline_fires_on_manual_span_api_outside_the_tracer() {
        let bad = "fn f(t: &Tracer) { let tok = t.begin_span(\"x\", None); t.end_span(tok); }\n";
        let fired = rules_fired("crates/asyncvol/src/lib.rs", bad);
        assert_eq!(fired, ["trace-discipline"]);
        assert!(rules_fired("crates/h5lite/src/container.rs", "fn f() { tracer.end_span(tok); }\n")
            .contains(&"trace-discipline"));
        assert!(rules_fired("tests/trace_pipeline.rs", "fn f() { t.begin_span(\"x\", None); }\n")
            .contains(&"trace-discipline"));
    }

    #[test]
    fn trace_discipline_fires_on_raw_flight_access_outside_the_tracer() {
        let bad = "fn f(t: &Tracer) { let recs = t.flight_records(); }\n";
        assert_eq!(rules_fired("crates/asyncvol/src/lib.rs", bad), ["trace-discipline"]);
        assert_eq!(rules_fired("tests/chaos.rs", bad), ["trace-discipline"]);
        // The exporter-facing dump API is the sanctioned path.
        let ok = "fn f(t: &Tracer) { let d = t.flight_dump(); let _lines = d.jsonl(); }\n";
        assert!(lint_source("crates/asyncvol/src/lib.rs", ok).is_empty());
        // Inside apio-trace the raw accessor is implementation detail.
        assert!(lint_source("crates/trace/src/flight.rs", bad).is_empty());
    }

    #[test]
    fn trace_discipline_permits_the_tracer_crate_and_guard_api() {
        let manual = "fn f(t: &Tracer) { let tok = t.begin_span(\"x\", None); t.end_span(tok); }\n";
        assert!(lint_source("crates/trace/src/lib.rs", manual).is_empty());
        let guarded = "fn f(t: &Tracer) { let _g = t.span(\"x\"); t.span_with(\"y\", ev); }\n";
        assert!(lint_source("crates/asyncvol/src/lib.rs", guarded).is_empty());
        // Waivable inline like every other rule.
        let waived =
            "fn f() { t.begin_span(\"x\", None); } // xtask: allow(trace-discipline) ffi boundary\n";
        assert!(lint_source("crates/asyncvol/src/lib.rs", waived).is_empty());
    }

    #[test]
    fn rank_context_fires_on_untagged_spans_in_epoch_runners() {
        let bad = "fn f(t: &Tracer) { let _g = t.span(\"epoch\"); t.span_with(\"epoch\", ev); }\n";
        assert_eq!(rules_fired("crates/mpisim/src/runner.rs", bad), ["rank-context"]);
        assert_eq!(lint_source("crates/mpisim/src/runner.rs", bad).len(), 2);
        assert_eq!(rules_fired("crates/kernels/src/measure.rs", bad), ["rank-context"]);
        // Everywhere else the untagged guard API is the normal path.
        assert!(lint_source("crates/asyncvol/src/lib.rs", bad).is_empty());
        assert!(lint_source("crates/mpisim/src/workload.rs", bad).is_empty());
    }

    #[test]
    fn rank_context_permits_the_ctx_api_and_instants() {
        let ok = "fn f(t: &Tracer) { let _g = t.span_ctx(\"epoch\", ctx); \
                  t.span_ctx_with(\"rank.write\", ctx, ev); \
                  t.instant_ctx(\"handoff\", ctx, ev); t.instant(\"x\", ev); }\n";
        assert!(lint_source("crates/mpisim/src/runner.rs", ok).is_empty());
        assert!(lint_source("crates/kernels/src/measure.rs", ok).is_empty());
        // Waivable inline like every other rule.
        let waived =
            "fn f(t: &Tracer) { let _g = t.span(\"x\"); } // xtask: allow(rank-context) jobless probe\n";
        assert!(lint_source("crates/mpisim/src/runner.rs", waived).is_empty());
    }

    #[test]
    fn guard_across_boundary_scoped_and_fires() {
        let bad = "\
fn f(&self) {
    let st = self.state.lock();
    self.handle.wait();
}
";
        assert_eq!(
            rules_fired("crates/argolite/src/lib.rs", bad),
            ["guard-across-boundary"]
        );
        assert!(rules_fired("crates/asyncvol/src/lib.rs", bad)
            .contains(&"guard-across-boundary"));
        assert!(rules_fired("crates/h5lite/src/container.rs", bad)
            .contains(&"guard-across-boundary"));
        // Out of scope: tests, other crates.
        assert!(lint_source("crates/argolite/tests/x.rs", bad).is_empty());
        assert!(lint_source("crates/trace/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn guard_across_boundary_exempts_condvar_handoff() {
        let ok = "\
fn f(&self) {
    let mut st = self.core.state.lock();
    while !st.done {
        self.core.done_cv.wait(&mut st);
    }
}
";
        assert!(lint_source("crates/argolite/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn blocking_in_task_scoped_and_fires() {
        let bad = "\
fn f(rt: &Runtime) {
    rt.spawn_dependent(deps, move || {
        std::fs::remove_file(p)
    });
}
";
        assert_eq!(
            rules_fired("crates/asyncvol/src/lib.rs", bad),
            ["blocking-in-task"]
        );
        assert!(lint_source("crates/bench/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn checked_offset_arith_scoped_to_data_path_files() {
        let bad = "fn f(m: &mut Meta) { m.eof += nbytes; }\n";
        assert_eq!(
            rules_fired("crates/h5lite/src/container.rs", bad),
            ["checked-offset-arith"]
        );
        assert_eq!(
            rules_fired("crates/h5lite/src/plan.rs", bad),
            ["checked-offset-arith"]
        );
        assert_eq!(
            rules_fired("crates/h5lite/src/storage.rs", bad),
            ["checked-offset-arith"]
        );
        // Not the whole crate: chunk-count math elsewhere is fine.
        assert!(lint_source("crates/h5lite/src/dataspace.rs", bad).is_empty());
    }

    #[test]
    fn swallowed_result_scoped_and_waivable() {
        let bad = "fn f(&self) { let _ = self.log.mark_applied(e); }\n";
        assert_eq!(
            rules_fired("crates/asyncvol/src/batch.rs", bad),
            ["swallowed-result"]
        );
        assert_eq!(
            rules_fired("crates/h5lite/src/container.rs", bad),
            ["swallowed-result"]
        );
        assert!(lint_source("crates/argolite/src/lib.rs", bad).is_empty());
        let waived =
            "fn f(&self) { let _ = self.flush(); // xtask: allow(swallowed-result) Drop cannot propagate\n}\n";
        assert!(lint_source("crates/h5lite/src/container.rs", waived).is_empty());
    }

    #[test]
    fn superblock_discipline_fires_on_raw_offset_zero_writes() {
        let bad = "fn f(&self) { self.backend.write_at(0, &sb)?; }\n";
        assert!(rules_fired("crates/h5lite/src/container.rs", bad)
            .contains(&"superblock-discipline"));
        assert!(rules_fired("crates/h5lite/src/storage.rs", bad)
            .contains(&"superblock-discipline"));
        // The commit module itself is the sanctioned writer.
        assert!(!lint_source("crates/h5lite/src/superblock.rs", bad)
            .iter()
            .any(|v| v.rule == "superblock-discipline"));
    }

    #[test]
    fn superblock_discipline_permits_nonzero_offsets_and_other_crates() {
        let ok = "fn f(&self) { self.inner.write_at(addr, bytes) }\n";
        assert!(!lint_source("crates/h5lite/src/storage.rs", ok)
            .iter()
            .any(|v| v.rule == "superblock-discipline"));
        // A WAL legitimately starts its first frame at device offset 0.
        let zero = "fn f(&self) { self.device.write_at(0, &rec) }\n";
        assert!(lint_source("crates/asyncvol/src/staging.rs", zero).is_empty());
        assert!(lint_source("crates/h5lite/tests/x.rs", zero).is_empty());
    }

    #[test]
    fn snapshot_discipline_fires_on_direct_meta_locks() {
        let bad = "fn f(&self) { let m = self.meta.read(); m.len() }\n";
        assert_eq!(
            rules_fired("crates/h5lite/src/container.rs", bad),
            ["snapshot-discipline"]
        );
        let bad_write = "fn g(&self) { self.meta.write().generation += 1; }\n";
        assert!(rules_fired("crates/h5lite/src/api.rs", bad_write)
            .contains(&"snapshot-discipline"));
        let bad_accessor = "fn h(&self) { self.plane.meta_read().len() }\n";
        assert_eq!(
            rules_fired("crates/h5lite/src/api.rs", bad_accessor),
            ["snapshot-discipline"]
        );
    }

    #[test]
    fn snapshot_discipline_permits_the_plane_module_and_its_api() {
        // The sharded plane itself is the sanctioned lock owner.
        let direct = "fn f(&self) { let m = self.meta.read(); m.len() }\n";
        assert!(lint_source("crates/h5lite/src/meta.rs", direct).is_empty());
        // Out of scope: tests and other crates.
        assert!(lint_source("crates/h5lite/tests/x.rs", direct).is_empty());
        assert!(lint_source("crates/asyncvol/src/lib.rs", direct).is_empty());
        // The plane API is the sanctioned path everywhere else.
        let ok = "fn f(&self) { let s = self.plane.working(id); self.plane.snapshot(); }\n";
        assert!(lint_source("crates/h5lite/src/container.rs", ok).is_empty());
    }

    #[test]
    fn inline_allow_waives_exactly_that_rule() {
        let src = "fn f() { x.unwrap(); } // xtask: allow(error-path) checked by caller\n";
        assert!(lint_source("crates/h5lite/src/lib.rs", src).is_empty());
        // Wrong rule name does not waive.
        let src2 = "fn f() { x.unwrap(); } // xtask: allow(virtual-time)\n";
        assert_eq!(lint_source("crates/h5lite/src/lib.rs", src2).len(), 1);
    }

    #[test]
    fn waiver_audit_tracks_usage() {
        let used = "fn f() { x.unwrap(); } // xtask: allow(error-path) caller checked\n";
        let lint = lint_source_full("crates/h5lite/src/lib.rs", used);
        assert!(lint.violations.is_empty());
        assert_eq!(lint.suppressed.len(), 1);
        assert_eq!(lint.waivers.len(), 1);
        assert!(lint.waivers[0].used);

        let stale = "fn f() { x? } // xtask: allow(error-path) nothing here fires\n";
        let lint = lint_source_full("crates/h5lite/src/lib.rs", stale);
        assert!(lint.violations.is_empty());
        assert_eq!(lint.waivers.len(), 1);
        assert!(!lint.waivers[0].used);
    }

    #[test]
    fn marker_detection_ignores_strings_doc_text_and_unknown_rules() {
        // A string literal mentioning the syntax is not a waiver.
        let in_string = "let m = \"xtask: allow(error-path)\";\n";
        let lint = lint_source_full("crates/h5lite/src/lib.rs", in_string);
        assert!(lint.waivers.is_empty());
        // Doc text mentioning the syntax is not a waiver.
        let in_doc = "/// Write `// xtask: allow(error-path)` to waive.\nfn f() {}\n";
        let lint = lint_source_full("crates/h5lite/src/lib.rs", in_doc);
        assert!(lint.waivers.is_empty());
        // Unknown rule names are not waivers (and cannot go stale).
        let unknown = "fn f() {} // xtask: allow(not-a-rule) whatever\n";
        let lint = lint_source_full("crates/h5lite/src/lib.rs", unknown);
        assert!(lint.waivers.is_empty());
    }

    #[test]
    fn allowlist_waives_by_rule_and_path() {
        let v = vec![
            Violation {
                file: "crates/h5lite/src/a.rs".into(),
                line: 1,
                rule: "error-path",
                message: String::new(),
            },
            Violation {
                file: "crates/desim/src/b.rs".into(),
                line: 2,
                rule: "virtual-time",
                message: String::new(),
            },
        ];
        let allow = parse_allowlist(
            "# comment\nerror-path crates/h5lite/ # legacy code\n",
        );
        let (left, hits) = apply_allowlist_tracked(v, &allow);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].rule, "virtual-time");
        assert_eq!(hits, [1]);
    }
}
