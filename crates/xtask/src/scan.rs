//! Source preprocessing for token-level linting.
//!
//! Rust token rules must not fire on comments, string literals, or code
//! that only exists under `#[cfg(test)]` — a doc sentence mentioning
//! `unwrap()` is not an error path, and tests are allowed to panic. This
//! module reduces a source file to per-line *code text* (comments and
//! literal contents blanked to spaces, structure preserved) and marks
//! which lines live inside a `#[cfg(test)]` item.

/// One source line after preprocessing.
#[derive(Debug)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The line with comments and string/char literal contents blanked.
    pub code: String,
    /// The original text (used for `xtask: allow(...)` markers).
    pub raw: String,
    /// Whether the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Blank comments and literal contents, preserving length and newlines.
///
/// Handles line comments, nested block comments, string literals with
/// escapes, raw strings (`r"…"`, `r#"…"#`, byte variants), and char
/// literals — distinguishing `'a'` from the lifetime `'a`.
pub fn strip(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment: keep the leading `//` so downstream code (the
        // `xtask: allow(...)` marker audit) can tell where a *real*
        // comment starts — a string literal that merely contains `//`
        // is fully blanked. The text after the marker is still blanked.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            out.push_str("//");
            i += 2;
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nesting).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 0;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            continue;
        }
        // Raw string (with optional b prefix): r"…", r#"…"#, …
        if (c == 'r' || (c == 'b' && b.get(i + 1) == Some(&'r')))
            && !prev_is_ident(&b, i)
        {
            let start = if c == 'b' { i + 2 } else { i + 1 };
            let mut hashes = 0;
            let mut j = start;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                // Emit the prefix verbatim-length as spaces.
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                // Scan until `"` followed by `hashes` hashes.
                while i < b.len() {
                    if b[i] == '"' && b[i + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                        break;
                    }
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
                continue;
            }
        }
        // String literal (with optional b prefix).
        if c == '"' || (c == 'b' && b.get(i + 1) == Some(&'"') && !prev_is_ident(&b, i)) {
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            out.push(' ');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    out.push(' ');
                    if let Some(&e) = b.get(i + 1) {
                        out.push(if e == '\n' { '\n' } else { ' ' });
                    }
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                out.push(if b[i] == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char = match b.get(i + 1) {
                Some('\\') => true,
                Some(_) => b.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                out.push(' ');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            // Lifetime: drop the quote, keep the identifier.
            out.push(' ');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// Split preprocessed source into [`Line`]s with `#[cfg(test)]` regions
/// marked. Region tracking is brace-based: after a `#[cfg(test)]`
/// attribute, everything through the end of the next brace-balanced item
/// is test code (covers both `mod tests { … }` and single guarded fns).
pub fn scan(src: &str) -> Vec<Line> {
    let stripped = strip(src);
    let mut lines = Vec::new();
    let mut test_depth: Option<i64> = None; // brace depth inside a test item
    let mut pending_test = false; // saw the attribute, waiting for `{`

    for (idx, (code, raw)) in stripped.lines().zip(src.lines()).enumerate() {
        let compact: String = code.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.contains("#[cfg(test)]") {
            pending_test = true;
        }
        let started_in_test = test_depth.is_some() || pending_test;
        if pending_test || test_depth.is_some() {
            for c in code.chars() {
                match c {
                    '{' => {
                        if pending_test {
                            pending_test = false;
                            test_depth = Some(1);
                        } else if let Some(d) = &mut test_depth {
                            *d += 1;
                        }
                    }
                    '}' => {
                        if let Some(d) = &mut test_depth {
                            *d -= 1;
                            if *d == 0 {
                                test_depth = None;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        lines.push(Line {
            number: idx + 1,
            code: code.to_owned(),
            raw: raw.to_owned(),
            in_test: started_in_test,
        });
    }
    lines
}

/// Find `token` in `code` at an identifier boundary: the character before
/// the match must not be part of an identifier (so `Instant::now` does
/// not match inside `SimInstant::now`). Tokens starting with a
/// non-identifier character (like `.unwrap()`) match anywhere.
pub fn find_token(code: &str, token: &str) -> bool {
    let needs_boundary = token
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        if !needs_boundary {
            return true;
        }
        let boundary = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        from = at + token.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip("a // unwrap()\nb /* panic!( */ c");
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert!(s.contains('a') && s.contains('b') && s.contains('c'));
    }

    #[test]
    fn strips_nested_block_comments() {
        let s = strip("x /* outer /* inner */ still */ y");
        assert!(!s.contains("inner") && !s.contains("still"));
        assert!(s.contains('x') && s.contains('y'));
    }

    #[test]
    fn strips_string_contents_with_escapes() {
        let s = strip(r#"let m = "say \".unwrap()\" loudly"; after"#);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("after"));
    }

    #[test]
    fn strips_raw_strings() {
        let s = strip(r##"let m = r#"panic!("x")"#; after"##);
        assert!(!s.contains("panic"));
        assert!(s.contains("after"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = strip("let c = 'x'; fn f<'a>(v: &'a str) {}");
        assert!(!s.contains('x'));
        assert!(s.contains("a str")); // lifetime identifier survives
    }

    #[test]
    fn preserves_line_structure() {
        let src = "one\ntwo // c\nthree";
        assert_eq!(strip(src).lines().count(), src.lines().count());
    }

    #[test]
    fn marks_cfg_test_regions() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn token_boundary_rejects_identifier_prefix() {
        assert!(find_token("Instant::now()", "Instant::now"));
        assert!(!find_token("SimInstant::now()", "Instant::now"));
        assert!(find_token("x.unwrap()", ".unwrap()"));
        assert!(!find_token("x.unwrap_or(0)", ".unwrap()"));
    }
}
