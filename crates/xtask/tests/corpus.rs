//! The fixture corpus: one firing and one clean snippet per rule, with
//! expected violations annotated in-line.
//!
//! Fixture format (`crates/xtask/tests/fixtures/<rule>.{fire,clean}.rs`):
//!
//! - line 1 is a `//@ lint-as: <workspace-relative path>` directive — the
//!   virtual path the snippet is linted under, which is what puts it in
//!   (or out of) each rule's scope;
//! - every line expected to fire carries a trailing `//~ <rule> [<rule>…]`
//!   annotation naming the rule(s) that must report that exact line.
//!
//! The corpus test asserts the *exact* set of `(line, rule)` pairs — a
//! rule firing on an unannotated line fails the same way as an annotated
//! line that stays silent, so both false positives and false negatives
//! regress loudly. The inventory test keeps the corpus, `RULE_NAMES`,
//! and the JSON report's `rule_stats` from drifting apart.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use xtask::rules::{lint_source_full, RULE_NAMES};
use xtask::{json, report_json, run_lint, workspace_root};

fn fixtures_dir() -> PathBuf {
    workspace_root().join("crates/xtask/tests/fixtures")
}

/// Parse a fixture: its lint-as path and the expected `(line, rule)` set.
fn parse_fixture(name: &str) -> (String, String, BTreeSet<(usize, String)>) {
    let path = fixtures_dir().join(name);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let first = src.lines().next().unwrap_or("");
    let lint_as = first
        .strip_prefix("//@ lint-as: ")
        .unwrap_or_else(|| panic!("{name}: line 1 must be `//@ lint-as: <path>`, got {first:?}"))
        .trim()
        .to_owned();
    let mut expected = BTreeSet::new();
    for (i, line) in src.lines().enumerate() {
        let Some(p) = line.find("//~") else { continue };
        for rule in line[p + 3..].split_whitespace() {
            assert!(
                RULE_NAMES.contains(&rule),
                "{name}:{}: annotation names unknown rule {rule:?}",
                i + 1
            );
            expected.insert((i + 1, rule.to_owned()));
        }
    }
    (lint_as, src, expected)
}

/// Lint a fixture under its virtual path; deduped `(line, rule)` set.
fn lint_fixture(lint_as: &str, src: &str) -> BTreeSet<(usize, String)> {
    lint_source_full(lint_as, src)
        .violations
        .into_iter()
        .map(|v| (v.line, v.rule.to_owned()))
        .collect()
}

#[test]
fn every_fire_fixture_fires_exactly_where_annotated() {
    for rule in RULE_NAMES {
        let name = format!("{rule}.fire.rs");
        let (lint_as, src, expected) = parse_fixture(&name);
        assert!(
            !expected.is_empty(),
            "{name}: a fire fixture must annotate at least one line"
        );
        assert!(
            expected.iter().any(|(_, r)| r == rule),
            "{name}: must exercise its own rule `{rule}`"
        );
        let actual = lint_fixture(&lint_as, &src);
        assert_eq!(
            actual, expected,
            "{name} (as {lint_as}): fired set differs from annotations"
        );
    }
}

#[test]
fn every_clean_fixture_is_silent() {
    for rule in RULE_NAMES {
        let name = format!("{rule}.clean.rs");
        let (lint_as, src, expected) = parse_fixture(&name);
        assert!(
            expected.is_empty(),
            "{name}: clean fixtures must carry no `//~` annotations"
        );
        let lint = lint_source_full(&lint_as, &src);
        let rendered: Vec<String> =
            lint.violations.iter().map(ToString::to_string).collect();
        assert!(
            lint.violations.is_empty(),
            "{name} (as {lint_as}) must be clean, fired:\n{}",
            rendered.join("\n")
        );
        assert!(
            lint.waivers.is_empty(),
            "{name}: fixtures must not rely on inline waivers"
        );
    }
}

#[test]
fn corpus_rule_names_and_report_stats_do_not_drift() {
    // Corpus ↔ RULE_NAMES: exactly one fire and one clean fixture per
    // rule, and no stray fixture for a rule that no longer exists.
    let mut on_disk = BTreeSet::new();
    for entry in fs::read_dir(fixtures_dir()).expect("fixtures dir") {
        let file = entry.unwrap().file_name().into_string().unwrap();
        let base = file
            .strip_suffix(".fire.rs")
            .or_else(|| file.strip_suffix(".clean.rs"))
            .unwrap_or_else(|| panic!("unexpected fixture file {file:?}"));
        on_disk.insert(base.to_owned());
        assert!(
            RULE_NAMES.contains(&base),
            "fixture {file:?} names no known rule — delete it or add the rule"
        );
    }
    let declared: BTreeSet<String> = RULE_NAMES.iter().map(|r| r.to_string()).collect();
    assert_eq!(
        on_disk, declared,
        "every rule needs a fire and a clean fixture"
    );
    for rule in RULE_NAMES {
        for kind in ["fire", "clean"] {
            let p = fixtures_dir().join(format!("{rule}.{kind}.rs"));
            assert!(p.is_file(), "missing fixture {}", p.display());
        }
    }

    // RULE_NAMES ↔ report JSON: rule_stats carries every rule, always.
    let report = run_lint(&workspace_root());
    let parsed = json::parse(&report_json("lint", &report)).expect("report JSON parses");
    let stats = parsed
        .get("rule_stats")
        .expect("report has rule_stats");
    let mut in_json = BTreeSet::new();
    for rule in RULE_NAMES {
        let entry = stats
            .get(rule)
            .unwrap_or_else(|| panic!("rule_stats missing {rule}"));
        assert!(entry.get("fired").and_then(json::Value::as_num).is_some());
        assert!(entry.get("suppressed").and_then(json::Value::as_num).is_some());
        in_json.insert(rule.to_owned());
    }
    assert_eq!(in_json, declared);
}
