//@ lint-as: crates/argolite/src/fixture.rs
fn spawn_compute(rt: &Runtime, data: Vec<u8>) {
    rt.spawn(move || checksum(&data));
}

fn cleanup_outside_task(path: &Path) -> std::io::Result<()> {
    std::fs::remove_file(path)
}
