//@ lint-as: crates/argolite/src/fixture.rs
fn spawn_cleanup(rt: &Runtime, path: PathBuf) {
    rt.spawn(move || {
        std::fs::remove_file(&path) //~ blocking-in-task
    });
}

fn spawn_backoff(rt: &Runtime, d: Duration) {
    rt.spawn_dependent(deps, move || {
        thread::sleep(d); //~ blocking-in-task
    });
}
