//@ lint-as: crates/asyncvol/src/fixture.rs
fn drain(policy: &RetryPolicy, started: SimInstant, mut e: H5Error) {
    let mut attempt = 1;
    while e.is_retryable()
        && attempt < policy.max_attempts
        && started.elapsed() < policy.deadline
    {
        attempt += 1;
        e = retry_op();
    }
}
