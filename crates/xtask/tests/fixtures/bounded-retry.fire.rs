//@ lint-as: crates/asyncvol/src/fixture.rs
fn drain(mut e: H5Error) {
    while e.is_retryable() { //~ bounded-retry
        e = retry_op();
    }
}
