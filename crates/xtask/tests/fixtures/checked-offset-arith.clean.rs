//@ lint-as: crates/h5lite/src/storage.rs
impl MemShard {
    fn write(&mut self, offset: u64, data: &[u8]) {
        let end = offset.saturating_add(data.len() as u64);
        self.watermark = self.watermark.max(end);
    }

    fn grow(&mut self, nbytes: u64) -> Option<u64> {
        self.eof = self.eof.checked_add(nbytes)?;
        Some(self.eof)
    }

    fn locate(&self, base: u64, idx: u64, elem: u64) -> Option<u64> {
        let addr = idx.checked_mul(elem).and_then(|rel| base.checked_add(rel))?;
        Some(addr)
    }
}
