//@ lint-as: crates/h5lite/src/storage.rs
impl MemShard {
    fn write(&mut self, offset: u64, data: &[u8]) {
        let end = offset + data.len() as u64; //~ checked-offset-arith
        self.watermark = self.watermark.max(end);
    }

    fn grow(&mut self, nbytes: u64) {
        self.eof += nbytes; //~ checked-offset-arith
    }

    fn locate(&self, base: u64, idx: u64, elem: u64) -> u64 {
        let addr = base + idx * elem; //~ checked-offset-arith
        addr
    }
}
