//@ lint-as: crates/h5lite/src/fixture.rs
fn read_header(file: &FileBackend) -> Result<Header> {
    let mut buf = [0u8; 8];
    file.read_exact(&mut buf)?;
    parse(&buf).map_err(|_| H5Error::Corrupt("truncated header".into()))
}

fn check_state(ok: bool) -> Result<()> {
    if !ok {
        return Err(H5Error::Corrupt("bad state".into()));
    }
    Ok(())
}
