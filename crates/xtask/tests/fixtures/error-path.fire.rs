//@ lint-as: crates/h5lite/src/fixture.rs
fn read_header(file: &FileBackend) -> Header {
    let mut buf = [0u8; 8];
    file.read_exact(&mut buf).unwrap(); //~ error-path
    parse(&buf).expect("valid header") //~ error-path
}

fn check_state(ok: bool) {
    if !ok {
        panic!("bad state"); //~ error-path
    }
}
