//@ lint-as: crates/argolite/src/fixture.rs
impl Connector {
    fn submit_unlocked(&self, rt: &Runtime) {
        let job = {
            let st = self.state.lock();
            st.next_job.clone()
        };
        let id = rt.submit(job);
        record(id);
    }

    fn wait_done(&self) {
        let mut st = self.state.lock();
        while !st.done {
            self.done_cv.wait(&mut st);
        }
    }
}
