//@ lint-as: crates/argolite/src/fixture.rs
impl Connector {
    fn submit_locked(&self, rt: &Runtime) {
        let st = self.state.lock();
        let id = rt.submit(self.job.clone()); //~ guard-across-boundary
        drop(st);
        record(id);
    }

    fn wait_locked(&self) {
        let g = self.meta.read();
        self.handle.wait(); //~ guard-across-boundary
        drop(g);
    }
}
