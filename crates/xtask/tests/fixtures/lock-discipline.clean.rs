//@ lint-as: crates/argolite/src/fixture.rs
use crate::sync::Mutex;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

pub struct Queue {
    jobs: Mutex<Vec<u64>>,
    depth: AtomicU64,
    shared: Arc<Vec<u64>>,
}
