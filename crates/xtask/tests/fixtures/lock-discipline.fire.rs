//@ lint-as: crates/argolite/src/fixture.rs
use std::sync::Mutex; //~ lock-discipline

pub struct Queue {
    jobs: std::sync::RwLock<Vec<u64>>, //~ lock-discipline
}
