//@ lint-as: crates/argolite/src/fixture.rs
#[must_use = "dropping the handle detaches the task"]
pub struct TaskHandle {
    id: u64,
}

#[derive(Debug)]
#[must_use]
pub struct DrainGuard<'a> {
    owner: &'a Runtime,
}

pub struct Runtime {
    next: u64,
}
