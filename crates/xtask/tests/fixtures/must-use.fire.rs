//@ lint-as: crates/argolite/src/fixture.rs
pub struct TaskHandle { //~ must-use
    id: u64,
}

#[derive(Debug)]
pub struct DrainGuard<'a> { //~ must-use
    owner: &'a Runtime,
}
