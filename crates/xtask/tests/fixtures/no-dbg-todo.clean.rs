//@ lint-as: crates/bench/src/fixture.rs
fn tune(x: u64) -> u64 {
    // A comment may mention dbg!(x) without shipping it.
    x.next_power_of_two()
}

fn later() -> &'static str {
    "the string \"todo!()\" is data, not a placeholder"
}
