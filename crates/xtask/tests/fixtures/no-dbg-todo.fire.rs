//@ lint-as: crates/bench/src/fixture.rs
fn tune(x: u64) -> u64 {
    dbg!(x); //~ no-dbg-todo
    todo!() //~ no-dbg-todo
}

fn later() {
    unimplemented!() //~ no-dbg-todo
}
