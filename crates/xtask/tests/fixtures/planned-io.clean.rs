//@ lint-as: crates/h5lite/src/container.rs
impl Container {
    fn write_planned(&self, plan: &IoPlan, bytes: &[u8]) -> Result<()> {
        for window in plan.segments().chunks(COALESCE_WINDOW) {
            let batch = build_batch(window, bytes);
            self.backend.write_vectored_at(&batch)?;
        }
        Ok(())
    }
}
