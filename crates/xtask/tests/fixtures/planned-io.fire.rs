//@ lint-as: crates/h5lite/src/container.rs
impl Container {
    fn write_run(&self, run_start: u64, bytes: &[u8]) -> Result<()> {
        self.backend.write_at(run_start, bytes) //~ planned-io
    }

    fn read_run(&self, run_start: u64, buf: &mut [u8]) -> Result<()> {
        self.backend.read_at(run_start, buf) //~ planned-io
    }
}
