//@ lint-as: crates/mpisim/src/runner.rs
fn trace_epochs(tracer: &Tracer, clock: &VirtualClock) {
    let ctx = SpanContext::new(0, rank, epoch);
    let mut span = tracer.span_ctx("epoch", ctx);
    clock.advance(1_000);
    span.set_event(ev);
    tracer.span_ctx_with("rank.compute", ctx, ev);
    tracer.instant_ctx("barrier.enter", ctx, ev);
    tracer.instant("ring.submit", ev);
}
