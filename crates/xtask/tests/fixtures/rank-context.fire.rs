//@ lint-as: crates/mpisim/src/runner.rs
fn trace_epochs(tracer: &Tracer, clock: &VirtualClock) {
    let mut span = tracer.span("epoch"); //~ rank-context
    clock.advance(1_000);
    span.set_event(ev);
    tracer.span_with("epoch", ev); //~ rank-context
}
