//@ lint-as: crates/asyncvol/src/lib.rs
impl AsyncVol {
    fn background_write(&self, ring: &Ring, ds: ObjectId, op: RingOp) -> Result<()> {
        match ring.submit_keyed(ds, op) {
            Submitted::Accepted { promise, .. } => {
                promise.wait_cloned().into_result().map(|_| ())
            }
            Submitted::Full(_) => Err(H5Error::Transient("ring full".into())),
        }
    }

    fn planned_write(&self, c: &Container, ds: ObjectId, sel: &Selection, data: &[u8]) -> Result<()> {
        c.write_selection(ds, sel, data)
    }
}
