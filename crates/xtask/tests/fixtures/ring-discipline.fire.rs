//@ lint-as: crates/asyncvol/src/lib.rs
impl AsyncVol {
    fn background_write(&self, extent: StagedExtent, bytes: &[u8]) -> Result<()> {
        self.backend.write_at(extent.addr, bytes) //~ ring-discipline
    }

    fn background_readback(&self, extent: StagedExtent, buf: &mut [u8]) -> Result<()> {
        self.backend.read_at(extent.addr, buf) //~ ring-discipline
    }
}
