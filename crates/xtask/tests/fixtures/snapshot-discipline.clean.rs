//@ lint-as: crates/h5lite/src/meta.rs
impl MetaPlane {
    fn working_len(&self, id: ObjectId) -> usize {
        let meta = self.meta.read();
        meta.len()
    }

    fn publish(&self, id: ObjectId) {
        let mut meta = self.meta.write();
        meta.publish(id);
    }
}
