//@ lint-as: crates/h5lite/src/api.rs
impl Container {
    fn lookup_len(&self, id: ObjectId) -> u64 {
        let meta = self.meta.read(); //~ snapshot-discipline
        meta.datasets[&id].space.npoints()
    }

    fn bump_generation(&self) {
        let mut meta = self.meta.write(); //~ snapshot-discipline
        meta.generation += 1;
    }

    fn peek(&self) -> usize {
        self.plane.meta_read().len() //~ snapshot-discipline
    }
}
