//@ lint-as: crates/h5lite/src/superblock.rs
impl Superblock {
    fn commit_slot(&self, backend: &dyn StorageBackend, slot: &[u8]) -> Result<()> {
        backend.write_at(0, slot)?;
        backend.sync()
    }
}
