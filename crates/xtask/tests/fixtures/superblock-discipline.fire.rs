//@ lint-as: crates/h5lite/src/storage.rs
impl Recovery {
    fn stamp_anchor(&self, sb: &[u8]) -> Result<()> {
        self.inner.write_at(0, sb) //~ superblock-discipline
    }
}
