//@ lint-as: crates/asyncvol/src/fixture.rs
impl Connector {
    fn settle(&self, extent: StagedExtent) -> Result<()> {
        if self.log.mark_applied(extent).is_err() {
            self.stats.record_wal_mark_failure();
        }
        let synced = self.device.sync().ok();
        if synced.is_none() {
            return Err(H5Error::Transient("sync failed".into()));
        }
        Ok(())
    }
}
