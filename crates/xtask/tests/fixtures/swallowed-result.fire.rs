//@ lint-as: crates/asyncvol/src/fixture.rs
impl Connector {
    fn settle(&self, extent: StagedExtent) {
        let _ = self.log.mark_applied(extent); //~ swallowed-result
        self.device.sync().ok(); //~ swallowed-result
    }
}
