//@ lint-as: crates/apps/src/fixture.rs
fn trace_phase(t: &Tracer) {
    let _span = t.span("phase");
    run_phase();
}

fn dump(t: &Tracer) -> String {
    t.flight_dump().jsonl()
}
