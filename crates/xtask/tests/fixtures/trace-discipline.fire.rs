//@ lint-as: crates/apps/src/fixture.rs
fn trace_phase(t: &Tracer) {
    let tok = t.begin_span("phase", None); //~ trace-discipline
    run_phase();
    t.end_span(tok); //~ trace-discipline
}

fn dump(t: &Tracer) -> Vec<Record> {
    t.flight_records() //~ trace-discipline
}
