//@ lint-as: crates/desim/src/fixture.rs
pub fn step(clock: &SimClock, d: SimDuration) {
    let t = clock.now();
    clock.advance(d);
    record(t);
}
