//@ lint-as: crates/desim/src/fixture.rs
pub fn step(d: Duration) {
    let t = std::time::Instant::now(); //~ virtual-time
    std::thread::sleep(d); //~ virtual-time
    record(t);
}
