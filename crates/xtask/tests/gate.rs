//! The gate itself, applied to this repository: the final tree must be
//! lint-clean and dependency-clean, and the walker must actually be
//! seeing the workspace (not silently scanning an empty directory).

use xtask::{benchdiff, run_check_deps, run_lint, source_files, workspace_root};

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let report = run_lint(&root);
    let rendered: Vec<String> = report.violations.iter().map(ToString::to_string).collect();
    assert!(
        report.violations.is_empty(),
        "lint violations in the tree:\n{}",
        rendered.join("\n")
    );
    let stale: Vec<String> = report.stale_waivers.iter().map(ToString::to_string).collect();
    assert!(
        report.stale_waivers.is_empty(),
        "stale waivers in the tree (delete them or fix the code they excused):\n{}",
        stale.join("\n")
    );
}

#[test]
fn workspace_deps_are_internal_only() {
    let root = workspace_root();
    let report = run_check_deps(&root);
    let rendered: Vec<String> = report.violations.iter().map(ToString::to_string).collect();
    assert!(
        report.violations.is_empty(),
        "external dependencies in manifests:\n{}",
        rendered.join("\n")
    );
    // Root + 11 crates.
    assert!(report.files_scanned >= 12, "scanned {}", report.files_scanned);
}

#[test]
fn walker_sees_the_whole_workspace() {
    let root = workspace_root();
    let files = source_files(&root);
    // The rule scopes must all be represented in the walked set.
    for marker in [
        "crates/desim/src/",
        "crates/mpisim/src/",
        "crates/platform/src/",
        "crates/h5lite/src/",
        "crates/asyncvol/src/",
        "crates/core/src/",
        "crates/argolite/src/sync.rs",
        "src/lib.rs",
    ] {
        assert!(
            files.iter().any(|f| f.starts_with(marker)),
            "walker missed {marker}; saw {} files",
            files.len()
        );
    }
    assert!(files.len() >= 60, "suspiciously few files: {}", files.len());
}

#[test]
fn committed_bench_baseline_passes_the_diff_gate() {
    let root = workspace_root();
    let read = |name: &str| {
        std::fs::read_to_string(root.join(name))
            .unwrap_or_else(|e| panic!("{name} must be committed at the workspace root: {e}"))
    };
    let current = benchdiff::parse_results(&read("BENCH_connector.json")).unwrap();
    let baseline = benchdiff::parse_results(&read("BENCH_baseline.json")).unwrap();
    assert!(!baseline.is_empty());
    let report = benchdiff::diff(&current, &baseline, 1.25);
    assert!(
        report.ok(),
        "committed bench results regress against the baseline:\n{}",
        report.render_text()
    );
    assert!(report.compared >= baseline.len().min(current.len()) - report.missing.len());
}

#[test]
fn committed_ring_bench_shows_depth_scaling() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("BENCH_ring.json")).unwrap_or_else(|e| {
        panic!("BENCH_ring.json must be committed at the workspace root: {e}")
    });
    let entries = benchdiff::parse_results(&text).unwrap();
    let secs = |name: String| -> f64 {
        entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("{name} missing from BENCH_ring.json"))
            .secs_per_iter
    };
    // Small-op (≤ 64 KiB) throughput must rise monotonically with queue
    // depth at fixed thread count: the reaper coalesces a deeper ring
    // into fewer vectored ops, amortizing the device's per-op latency.
    // The 1 MiB row is bandwidth-bound by design and not asserted.
    for size in [4096u64, 65536] {
        let mut last = 0.0f64;
        for depth in [1u64, 4, 16, 64] {
            let t = (size * depth) as f64 / secs(format!("ring_depth/{size}B/d{depth}"));
            assert!(
                t > last,
                "ring_depth/{size}B: throughput not monotone at d{depth}: \
                 {t:.3e} B/s <= {last:.3e} B/s"
            );
            last = t;
        }
    }
}

#[test]
fn committed_ring_epoch_is_2x_over_the_baseline_async_epoch() {
    let root = workspace_root();
    let read = |name: &str| {
        std::fs::read_to_string(root.join(name))
            .unwrap_or_else(|e| panic!("{name} must be committed at the workspace root: {e}"))
    };
    let ring = benchdiff::parse_results(&read("BENCH_ring.json")).unwrap();
    let baseline = benchdiff::parse_results(&read("BENCH_baseline.json")).unwrap();
    let secs = |entries: &[benchdiff::BenchEntry], name: &str| -> f64 {
        entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .secs_per_iter
    };
    let ring_epoch = secs(&ring, "ring/epoch_async_64KiB");
    let base_epoch = secs(&baseline, "epoch/async");
    assert!(
        ring_epoch <= base_epoch / 2.0,
        "ring async epoch at 64 KiB ops ({ring_epoch:.3e} s) must be >= 2x over \
         the committed baseline epoch/async ({base_epoch:.3e} s)"
    );
    // And async must actually beat its own sync companion — the overlap
    // the ring exists to provide.
    let sync_epoch = secs(&ring, "ring/epoch_sync_64KiB");
    assert!(
        ring_epoch < sync_epoch,
        "ring async epoch ({ring_epoch:.3e} s) should beat sync ({sync_epoch:.3e} s)"
    );
}

#[test]
fn committed_multitenant_bench_meets_the_contention_bar() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("BENCH_multitenant.json")).unwrap_or_else(|e| {
        panic!("BENCH_multitenant.json must be committed at the workspace root: {e}")
    });
    // The timing entries must be benchdiff-parseable so ci.sh can run the
    // self-diff gate over the committed file.
    let entries = benchdiff::parse_results(&text).unwrap();
    for name in [
        "multitenant/sharded/aggregate_writer_op",
        "multitenant/single_lock/aggregate_writer_op",
        "multitenant/sharded/snapshot_reader_op",
    ] {
        assert!(
            entries.iter().any(|e| e.name == name),
            "{name} missing from BENCH_multitenant.json"
        );
    }
    let field = |key: &str| -> f64 {
        let tag = format!("\"{key}\":");
        let at = text
            .find(&tag)
            .unwrap_or_else(|| panic!("{key} missing from BENCH_multitenant.json"));
        let rest = text[at + tag.len()..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .unwrap_or(rest.len());
        rest[..end].parse().unwrap_or_else(|e| panic!("{key}: {e}"))
    };
    // 16 writers on disjoint datasets must aggregate ≥ 4x the throughput
    // of the emulated single-metadata-lock discipline (same workload,
    // same device model — the win is lock granularity alone).
    let speedup = field("aggregate_speedup_sharded_over_single_lock");
    assert!(speedup >= 4.0, "sharded speedup {speedup} < 4x over single-lock");
    // Steady-state writes are O(1) metadata-lock acquisitions: exactly one
    // shard read per op, with a hair of slack for counter granularity.
    let locks = field("sharded_meta_locks_per_writer_op");
    assert!(locks <= 1.05, "meta locks per writer op {locks} not O(1)");
    // Snapshot readers take the zero-lock path — exactly zero.
    let reader_locks = field("snapshot_reader_lock_acquisitions");
    assert_eq!(reader_locks, 0.0, "snapshot readers acquired metadata locks");
    // Per-shard balance: 16 tenants on 16 distinct shards means every
    // shard's read delta is identical — no hot lock.
    let list_tag = "\"sharded_shard_reads_delta\": [";
    let at = text.find(list_tag).expect("shard delta list missing");
    let rest = &text[at + list_tag.len()..];
    let deltas: Vec<u64> = rest[..rest.find(']').expect("unterminated shard delta list")]
        .split(',')
        .map(|s| s.trim().parse().expect("shard delta"))
        .collect();
    assert_eq!(deltas.len(), 16);
    assert!(
        deltas.iter().all(|&d| d == deltas[0] && d > 0),
        "shard read deltas unbalanced: {deltas:?}"
    );
}

#[test]
fn synthetic_regression_fails_the_diff_gate() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("BENCH_baseline.json")).unwrap();
    let baseline = benchdiff::parse_results(&text).unwrap();
    // A uniform 10x slowdown of the committed baseline must trip the gate
    // on every benchmark.
    let regressed: Vec<benchdiff::BenchEntry> = baseline
        .iter()
        .map(|e| benchdiff::BenchEntry {
            name: e.name.clone(),
            secs_per_iter: e.secs_per_iter * 10.0,
        })
        .collect();
    let report = benchdiff::diff(&regressed, &baseline, 1.25);
    assert!(!report.ok());
    assert_eq!(report.regressions.len(), baseline.len());
}
