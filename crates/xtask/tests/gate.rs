//! The gate itself, applied to this repository: the final tree must be
//! lint-clean and dependency-clean, and the walker must actually be
//! seeing the workspace (not silently scanning an empty directory).

use xtask::{run_check_deps, run_lint, source_files, workspace_root};

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let report = run_lint(&root);
    let rendered: Vec<String> = report.violations.iter().map(ToString::to_string).collect();
    assert!(
        report.violations.is_empty(),
        "lint violations in the tree:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn workspace_deps_are_internal_only() {
    let root = workspace_root();
    let report = run_check_deps(&root);
    let rendered: Vec<String> = report.violations.iter().map(ToString::to_string).collect();
    assert!(
        report.violations.is_empty(),
        "external dependencies in manifests:\n{}",
        rendered.join("\n")
    );
    // Root + 11 crates.
    assert!(report.files_scanned >= 12, "scanned {}", report.files_scanned);
}

#[test]
fn walker_sees_the_whole_workspace() {
    let root = workspace_root();
    let files = source_files(&root);
    // The rule scopes must all be represented in the walked set.
    for marker in [
        "crates/desim/src/",
        "crates/mpisim/src/",
        "crates/platform/src/",
        "crates/h5lite/src/",
        "crates/asyncvol/src/",
        "crates/core/src/",
        "crates/argolite/src/sync.rs",
        "src/lib.rs",
    ] {
        assert!(
            files.iter().any(|f| f.starts_with(marker)),
            "walker missed {marker}; saw {} files",
            files.len()
        );
    }
    assert!(files.len() >= 60, "suspiciously few files: {}", files.len());
}
