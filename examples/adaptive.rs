//! The Fig. 2 feedback loop: the model rides alongside an application,
//! ingests its measurements, and recommends an I/O mode per epoch.
//!
//! ```text
//! cargo run --release --example adaptive
//! ```
//!
//! The "application" here is VPIC-IO simulated on the Summit model: we
//! replay a weak-scaling campaign, stream every observed phase into an
//! [`apio::model::AdaptiveRuntime`], and query the advisor before each new
//! configuration.

use apio::kernels::vpic;
use apio::model::history::{Direction, IoMode};
use apio::model::{AdaptiveRuntime, Observation};
use apio::mpisim::{run, Job, RunConfig};
use apio::platform::summit;

fn main() {
    let sys = summit();
    let mut loop_ = AdaptiveRuntime::new();

    println!("phase 1: bootstrap — run both modes at small scale, learn rates\n");
    for ranks in [96u32, 192, 384] {
        let w = vpic::workload(ranks, 3, 30.0);
        let job = Job::new(sys.clone(), ranks);
        let total = w.per_rank_bytes as f64 * ranks as f64;

        for (mode, cfg) in [
            (IoMode::Sync, RunConfig::sync()),
            (IoMode::Async, RunConfig::async_io()),
        ] {
            let result = run(&job, &w, &cfg);
            for phase in &result.phases {
                loop_.observe(Observation::Compute {
                    secs: phase.t_comp,
                });
                match mode {
                    IoMode::Sync => loop_.observe(Observation::Transfer {
                        mode,
                        direction: Direction::Write,
                        total_bytes: total,
                        ranks,
                        secs: phase.visible_io_secs,
                    }),
                    IoMode::Async => loop_.observe(Observation::SnapshotOverhead {
                        direction: Direction::Write,
                        total_bytes: total,
                        ranks,
                        secs: phase.visible_io_secs,
                    }),
                }
            }
            println!(
                "  observed {ranks:>5} ranks {mode:?}: peak {:.1} GB/s over {} phases",
                result.peak_bandwidth() / 1e9,
                result.phases.len()
            );
        }
    }

    println!("\nphase 2: advise before scaling up\n");
    for ranks in [768u32, 3072, 12288] {
        let w = vpic::workload(ranks, 3, 30.0);
        let total = w.per_rank_bytes as f64 * ranks as f64;
        let advice = loop_
            .advise(Direction::Write, total, ranks)
            .expect("history supports a fit");
        println!(
            "  {ranks:>5} ranks: predict sync epoch {:>7.2}s vs async epoch {:>7.2}s -> use {:?} ({:.2}x, {:?})",
            advice.t_sync,
            advice.t_async,
            advice.mode,
            advice.speedup(),
            advice.scenario,
        );
    }

    println!("\nphase 3: a workload with nothing to overlap\n");
    // Same data, but no compute phase between checkpoints: the snapshot
    // overhead cannot be amortized and the advisor flips to synchronous.
    // (The EWMA needs a few dozen samples to forget the 30 s phases.)
    for _ in 0..60 {
        loop_.observe(Observation::Compute { secs: 1e-4 });
    }
    let ranks = 3072;
    let total = vpic::workload(ranks, 1, 0.0).per_rank_bytes as f64 * ranks as f64;
    let advice = loop_.advise(Direction::Write, total, ranks).unwrap();
    println!(
        "  {ranks:>5} ranks, ~zero compute: -> use {:?} (sync {:.3}s vs async {:.3}s, {:?})",
        advice.mode, advice.t_sync, advice.t_async, advice.scenario
    );

    println!(
        "\nhistory carries {} transfer records; persist with History::to_text() for the next run",
        loop_.history().len()
    );
}
