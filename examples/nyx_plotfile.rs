//! Nyx-style AMReX plotfile output through the async VOL.
//!
//! ```text
//! cargo run --release --example nyx_plotfile
//! ```
//!
//! Writes a small 64³ plotfile (8×8 fabs of 8³ cells, 5 components) the
//! way the AMReX HDF5 path drives the connector: one dataset per fab,
//! all snapshots taken synchronously, all storage writes in background.

use std::sync::Arc;
use std::time::Instant;

use apio::apps::plotfile::{FabBox, PlotfileSpec, PlotfileWriter};
use apio::asyncvol::AsyncVol;
use apio::h5lite::{Container, File, ThrottledBackend};

const FAB_CELLS: u64 = 8; // 8³ cells per fab
const FABS_PER_SIDE: u64 = 8; // 64³ domain
const COMPONENTS: usize = 5;

fn fab_data(i: u64, j: u64, k: u64) -> Vec<f64> {
    let cells = FAB_CELLS * FAB_CELLS * FAB_CELLS;
    (0..cells * COMPONENTS as u64)
        .map(|n| (i * 31 + j * 17 + k * 7 + n) as f64 * 0.001)
        .collect()
}

fn main() {
    let backend = Arc::new(ThrottledBackend::in_memory(500e6, 2e-4));
    let vol = Arc::new(AsyncVol::new());
    let file = File::from_parts(Arc::new(Container::create(backend)), vol.clone());

    let spec = PlotfileSpec {
        step: 20,
        time: 0.132,
        components: vec![
            "density".into(),
            "temperature".into(),
            "xmom".into(),
            "ymom".into(),
            "zmom".into(),
        ],
    };
    let mut writer = PlotfileWriter::create(&file, &spec).expect("create plotfile");

    let t0 = Instant::now();
    for i in 0..FABS_PER_SIDE {
        for j in 0..FABS_PER_SIDE {
            for k in 0..FABS_PER_SIDE {
                let b = FabBox {
                    lo: [i * FAB_CELLS, j * FAB_CELLS, k * FAB_CELLS],
                    hi: [(i + 1) * FAB_CELLS, (j + 1) * FAB_CELLS, (k + 1) * FAB_CELLS],
                };
                writer.write_fab(&b, &fab_data(i, j, k)).expect("write fab");
            }
        }
    }
    let visible = t0.elapsed();
    let fabs = writer.fabs();

    let t0 = Instant::now();
    writer.close(&file).expect("drain background writes");
    let drain = t0.elapsed();

    let stats = vol.stats();
    println!("plt00020: {fabs} fabs × {COMPONENTS} components ({} cells each)", FAB_CELLS.pow(3));
    println!("  application-visible write time: {visible:>9.2?} (snapshots)");
    println!("  background drain at close:      {drain:>9.2?}");
    println!(
        "  connector: {} background writes, {:.1} MiB snapshotted at {:.2} GB/s",
        stats.writes,
        stats.snapshot_bytes as f64 / (1 << 20) as f64,
        stats.snapshot_bw() / 1e9
    );

    // Verify one fab read-back.
    let (b, data) = apio::apps::plotfile::read_fab(&file, 20, 0).expect("read fab 0");
    assert_eq!(b.lo, [0, 0, 0]);
    assert_eq!(data, fab_data(0, 0, 0));
    println!("  read-back check: fab 0 intact ✓");
}
