//! Quickstart: write a dataset synchronously and asynchronously and watch
//! the application-visible I/O time change.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Storage is throttled to 300 MB/s (a stand-in for a busy parallel file
//! system) so the difference between the two connectors is visible on any
//! machine: the native VOL blocks for the full transfer, the async VOL
//! returns after an in-memory snapshot and flushes in the background.

use std::sync::Arc;
use std::time::Instant;

use apio::asyncvol::AsyncVol;
use apio::h5lite::{Container, Dataspace, File, NativeVol, ThrottledBackend, Vol};

const N: u64 = 4 << 20; // 4 Mi f32 elements = 16 MiB

fn throttled_file(vol: Arc<dyn Vol>) -> File {
    let backend = Arc::new(ThrottledBackend::in_memory(300e6, 1e-3));
    File::from_parts(Arc::new(Container::create(backend)), vol)
}

fn main() {
    let data: Vec<f32> = (0..N).map(|i| (i as f32).sin()).collect();

    // --- synchronous (native VOL): the write blocks the caller ---------
    let file = throttled_file(Arc::new(NativeVol::new()));
    let ds = file
        .root()
        .create_dataset::<f32>("signal", &Dataspace::d1(N))
        .expect("create dataset");
    let t0 = Instant::now();
    ds.write(&data).expect("sync write");
    let sync_visible = t0.elapsed();
    println!("sync  write: caller blocked {sync_visible:>10.2?}");

    // --- asynchronous (async VOL): snapshot, return, flush in background
    let vol = Arc::new(AsyncVol::new());
    let file = throttled_file(vol.clone());
    let ds = file
        .root()
        .create_dataset::<f32>("signal", &Dataspace::d1(N))
        .expect("create dataset");
    let t0 = Instant::now();
    let req = ds.write_async(&data).expect("async write");
    let async_visible = t0.elapsed();
    println!("async write: caller blocked {async_visible:>10.2?}  (snapshot only)");

    // The caller is free to compute here while the background stream
    // pushes the bytes through the throttled storage...
    let t0 = Instant::now();
    ds.wait(req).expect("background write failed");
    println!("async write: background flush took another {:>10.2?}", t0.elapsed());

    // Data is intact either way.
    let back: Vec<f32> = ds.read().expect("read back");
    assert_eq!(back, data);
    let stats = vol.stats();
    println!(
        "connector stats: {} write(s), snapshot {:.1} MiB at {:.2} GB/s",
        stats.writes,
        stats.snapshot_bytes as f64 / (1 << 20) as f64,
        stats.snapshot_bw() / 1e9,
    );
    assert!(async_visible < sync_visible);
    println!(
        "\nvisible-latency ratio: async is {:.0}x cheaper for the caller",
        sync_visible.as_secs_f64() / async_visible.as_secs_f64()
    );
}
