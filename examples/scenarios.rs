//! The three overlap scenarios of the paper's Fig. 1, evaluated through
//! the epoch model (Eq. 2a/2b).
//!
//! ```text
//! cargo run --release --example scenarios
//! ```

use apio::model::epoch::{app_time, EpochParams, Scenario};

fn describe(name: &str, p: EpochParams) {
    let scenario = match p.scenario() {
        Scenario::Ideal => "ideal (full overlap)",
        Scenario::PartialOverlap => "partial overlap",
        Scenario::Slowdown => "slowdown",
    };
    println!(
        "{name:<28} comp={:>5.1}s io={:>5.1}s overhead={:>4.2}s | sync epoch {:>6.2}s  async epoch {:>6.2}s  speedup {:>5.2}x  -> {scenario}",
        p.t_comp,
        p.t_io,
        p.t_overhead,
        p.sync_time(),
        p.async_time(),
        p.speedup(),
    );
}

fn main() {
    println!("Fig. 1 scenarios through Eq. 2a/2b:\n");
    // Fig. 1a: computation longer than I/O — latency fully hidden.
    describe("Fig. 1a ideal", EpochParams::new(30.0, 8.0, 0.4));
    // Fig. 1b: computation shorter than I/O — partially hidden.
    describe("Fig. 1b partial overlap", EpochParams::new(3.0, 8.0, 0.4));
    // Fig. 1c: overhead exceeds what overlap can save.
    describe("Fig. 1c slowdown", EpochParams::new(0.2, 0.5, 0.4));

    // Eq. 1: compose a whole application run from epochs.
    let p = EpochParams::new(30.0, 8.0, 0.4);
    let epochs = 20;
    let sync_app = app_time(0.5, std::iter::repeat_n(p.sync_time(), epochs), 0.2);
    let async_app = app_time(0.5, std::iter::repeat_n(p.async_time(), epochs), 0.2);
    println!(
        "\n{epochs} ideal epochs (Eq. 1): sync app {sync_app:.1}s, async app {async_app:.1}s -> {:.2}x end-to-end",
        sync_app / async_app
    );
}
