//! VPIC-IO end to end: the real engine at laptop scale, then the same
//! workload on the Summit model at paper scale.
//!
//! ```text
//! cargo run --release --example vpic_checkpoint
//! ```

use apio::kernels::vpic::{self, VpicConfig};
use apio::kernels::{bdcats, KernelMode};
use apio::model::history::IoMode;
use apio::mpisim::{run, Job, RunConfig};
use apio::platform::summit;

fn main() {
    // ----- real engine: threads, buffers, a throttled container --------
    let cfg = VpicConfig {
        ranks: 4,
        particles_per_rank: 1 << 15, // 32 Ki particles/rank, 8 props
        timesteps: 4,
        compute_secs: 0.08,
    };
    println!(
        "real engine: {} ranks × {} particles × 8 properties = {:.1} MiB per checkpoint\n",
        cfg.ranks,
        cfg.particles_per_rank,
        cfg.bytes_per_epoch() as f64 / (1 << 20) as f64
    );

    for mode in [KernelMode::Sync, KernelMode::Async] {
        // 400 MB/s + 0.5 ms/op: a realistically slow shared file system.
        let report = vpic::run_real_throttled(&cfg, mode, 400e6, 5e-4).expect("kernel run");
        println!(
            "  {mode:?}: visible I/O {:>7.3}s over {} checkpoints, peak {:>8.2} MB/s visible bandwidth",
            report.total_visible_io(),
            report.phases.len(),
            report.peak_bandwidth() / 1e6
        );
        if let Some(stats) = report.async_stats {
            println!(
                "         transactional overhead: {:.1} MiB snapshotted in {:.3}s ({:.2} GB/s)",
                stats.snapshot_bytes as f64 / (1 << 20) as f64,
                stats.snapshot_secs,
                stats.snapshot_bw() / 1e9
            );
        }
    }

    // And the read side: BD-CATS over the same container, with prefetch.
    let (_, file) = vpic::run_real_throttled_into(&cfg, KernelMode::Sync, 400e6, 5e-4).unwrap();
    let report = bdcats::run_real(&file, &cfg, KernelMode::Async).expect("read kernel");
    let bws = report.phase_bandwidths();
    println!(
        "\n  BD-CATS-IO async read: first (blocking) step {:.1} MB/s, prefetched steps up to {:.1} MB/s",
        bws[0] / 1e6,
        bws[1..].iter().fold(f64::MIN, |a, &b| a.max(b)) / 1e6
    );

    // ----- simulator: the paper-scale weak-scaling campaign -------------
    println!("\nSummit model, 5 checkpoints, 30 s compute (paper configuration):\n");
    println!(
        "  {:>6} {:>7} {:>15} {:>15}",
        "ranks", "nodes", "sync peak", "async peak"
    );
    let sys = summit();
    for ranks in [96u32, 768, 6144, 12288] {
        let w = vpic::workload(ranks, 5, 30.0);
        let job = Job::new(sys.clone(), ranks);
        let sync = run(&job, &w, &RunConfig::sync());
        let asy = run(&job, &w, &RunConfig::async_io());
        println!(
            "  {:>6} {:>7} {:>12.1} GB/s {:>12.1} GB/s",
            ranks,
            job.nodes(),
            sync.peak_bandwidth() / 1e9,
            asy.peak_bandwidth() / 1e9
        );
        let _ = IoMode::Sync;
    }
    println!("\n(regenerate every figure with: cargo run -p apio-bench --bin figures -- all)");
}
