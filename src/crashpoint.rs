//! Exhaustive crash-point exploration (DESIGN.md §13).
//!
//! The [`argolite::explore`] seeded-schedule pattern applied to
//! durability: instead of enumerating task interleavings, [`sweep`]
//! enumerates *crash instants*. A recording pass runs the workload
//! against an unlimited [`CrashClock`] to learn how many mutation
//! boundaries (scalar writes, vectored-write segments, syncs) the
//! workload generates; the sweep then re-runs the workload once per
//! boundary `k ∈ 0..=M` with persistence cut after the k-th mutation —
//! every prefix of the mutation sequence a real power cut could leave
//! behind, including `k = M` (the fault-free baseline).
//!
//! The workload closure owns the whole scenario: it wraps its backends
//! in [`CrashBackend`]s sharing the given clock, drives the stack, then
//! reopens the *inner* backends (what actually persisted), recovers,
//! and checks its durability invariants — returning `Err` with the
//! violation text if acked data was lost, the metadata plane is
//! unreadable, or a scrub is not clean. The sweep stops at the first
//! failing cut and reports it with everything needed to reproduce
//! (re-run the same deterministic workload with `cut_after(k)`).

use std::sync::Arc;

pub use h5lite::{CrashBackend, CrashClock};

/// A crash point that violated a durability invariant, with everything
/// needed to reproduce it (the sweep is deterministic: re-run the same
/// workload with `CrashClock::cut_after(cut_after)`).
#[derive(Debug)]
pub struct CrashFailure {
    /// Mutation budget of the failing run; `None` means the fault-free
    /// *recording* pass itself failed (the workload is broken before
    /// any crash is injected).
    pub cut_after: Option<u64>,
    /// The invariant violation text returned by the workload.
    pub message: String,
}

impl std::fmt::Display for CrashFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cut_after {
            Some(k) => write!(
                f,
                "crash-point sweep failed (persistence cut after mutation {k}): {}",
                self.message
            ),
            None => write!(
                f,
                "crash-point sweep failed in the fault-free recording pass: {}",
                self.message
            ),
        }
    }
}

/// Outcome of a crash-point sweep.
#[derive(Debug)]
pub struct CrashSweepReport {
    /// Mutation boundaries the recording pass observed — the sweep ran
    /// one crash per boundary, `0..=boundaries`.
    pub boundaries: u64,
    /// Workload runs executed: the recording pass plus one per
    /// enumerated cut (stops early on the first failure).
    pub runs: u64,
    /// The first failing crash point, if any.
    pub failure: Option<CrashFailure>,
}

impl CrashSweepReport {
    /// Whether every enumerated crash point upheld every invariant.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Enumerate every crash point of a deterministic workload.
///
/// `run` receives a fresh [`CrashClock`] per invocation, builds its
/// scenario on [`CrashBackend`]s sharing that clock, drives it, then
/// recovers from the inner backends and checks its durability
/// invariants, returning `Err(message)` on a violation. The first call
/// records the boundary count on an unlimited clock; each subsequent
/// call crashes at one boundary. Stops at the first failure.
pub fn sweep(mut run: impl FnMut(&Arc<CrashClock>) -> Result<(), String>) -> CrashSweepReport {
    let clock = CrashClock::unlimited();
    let mut report = CrashSweepReport {
        boundaries: 0,
        runs: 1,
        failure: None,
    };
    if let Err(message) = run(&clock) {
        report.failure = Some(CrashFailure {
            cut_after: None,
            message,
        });
        return report;
    }
    report.boundaries = clock.mutations();
    for k in 0..=report.boundaries {
        let clock = CrashClock::cut_after(k);
        report.runs += 1;
        if let Err(message) = run(&clock) {
            report.failure = Some(CrashFailure {
                cut_after: Some(k),
                message,
            });
            break;
        }
    }
    report
}

/// [`sweep`] with torn boundary writes: every crash point is explored
/// once per entry of `prefixes`, with the boundary mutation applying
/// only its first `prefix` bytes before the cut (see
/// [`CrashClock::cut_torn`]). This is the harsher power-cut model —
/// the clean sweep leaves every prefix of the mutation *sequence*, the
/// torn sweep additionally chops the last in-flight write mid-sector —
/// and is what proves recovery disowns partial bytes instead of merely
/// missing absent ones (e.g. a metadata extent whose first half landed:
/// the superblock checksum must reject it and reopen must fall back to
/// the previous generation, whole, on every shard).
pub fn sweep_torn(
    prefixes: &[u64],
    mut run: impl FnMut(&Arc<CrashClock>) -> Result<(), String>,
) -> CrashSweepReport {
    let clock = CrashClock::unlimited();
    let mut report = CrashSweepReport {
        boundaries: 0,
        runs: 1,
        failure: None,
    };
    if let Err(message) = run(&clock) {
        report.failure = Some(CrashFailure {
            cut_after: None,
            message,
        });
        return report;
    }
    report.boundaries = clock.mutations();
    'cuts: for k in 0..report.boundaries {
        for &prefix in prefixes {
            let clock = CrashClock::cut_torn(k, prefix);
            report.runs += 1;
            if let Err(message) = run(&clock) {
                report.failure = Some(CrashFailure {
                    cut_after: Some(k),
                    message: format!("torn boundary (first {prefix} byte(s) landed): {message}"),
                });
                break 'cuts;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use h5lite::{MemBackend, StorageBackend};

    /// A toy journaling workload: write a record, then "commit" it with
    /// a sync. The durability invariant: the inner device must hold a
    /// clean prefix of the committed records.
    fn journal_run(clock: &Arc<CrashClock>) -> Result<(), String> {
        let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let dev = CrashBackend::new(inner.clone(), clock.clone());
        let mut committed = 0u64;
        for i in 0..4u64 {
            if dev.write_at(i * 8, &(i + 1).to_le_bytes()).is_err() {
                break;
            }
            if dev.sync().is_err() {
                break;
            }
            committed = i + 1;
        }
        // Crash: reopen the inner device. Every committed record must
        // read back intact.
        for i in 0..committed {
            let mut buf = [0u8; 8];
            inner
                .read_at(i * 8, &mut buf)
                .map_err(|e| format!("committed record {i} unreadable: {e}"))?;
            if u64::from_le_bytes(buf) != i + 1 {
                return Err(format!("committed record {i} lost"));
            }
        }
        Ok(())
    }

    #[test]
    fn sweep_enumerates_every_boundary_of_a_sound_workload() {
        let report = sweep(journal_run);
        assert!(report.ok(), "{:?}", report.failure);
        // 4 records × (write + sync) = 8 boundaries; recording pass +
        // one run per k in 0..=8.
        assert_eq!(report.boundaries, 8);
        assert_eq!(report.runs, 10);
    }

    #[test]
    fn torn_sweep_passes_a_sound_journal_and_multiplies_runs() {
        let report = sweep_torn(&[1, 4, 7], journal_run);
        assert!(report.ok(), "{:?}", report.failure);
        assert_eq!(report.boundaries, 8);
        // Recording pass + 3 torn prefixes per boundary.
        assert_eq!(report.runs, 1 + 3 * 8);
    }

    #[test]
    fn torn_sweep_catches_a_workload_trusting_unacked_bytes() {
        // Bug: the workload decides what's committed by reading the
        // device back instead of trusting only acked syncs. A clean cut
        // cannot expose it (the device holds whole records or nothing);
        // a torn boundary leaves a half-written record that the naive
        // read-back mistakes for a commit.
        let report = sweep_torn(&[4], |clock| {
            let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
            // Pre-size the device (not a crash-gated mutation) so the
            // recovery read-back below sees torn bytes, not EOF.
            inner.write_at(0, &[0u8; 16]).map_err(|e| e.to_string())?;
            let dev = CrashBackend::new(inner.clone(), clock.clone());
            for i in 0..2u64 {
                if dev.write_at(i * 8, &u64::MAX.to_le_bytes()).is_err() {
                    break;
                }
                if dev.sync().is_err() {
                    break;
                }
            }
            // "Recovery": any nonzero record is treated as committed.
            for i in 0..2u64 {
                let mut buf = [0u8; 8];
                let _ = inner.read_at(i * 8, &mut buf);
                let v = u64::from_le_bytes(buf);
                if v != 0 && v != u64::MAX {
                    return Err(format!("record {i} recovered torn: {v:#x}"));
                }
            }
            Ok(())
        });
        let failure = report.failure.expect("torn boundary must be caught");
        assert!(failure.to_string().contains("torn"));
    }

    #[test]
    fn recording_pass_failure_is_reported_without_a_cut() {
        let report = sweep(|_| Err("workload broken".into()));
        assert_eq!(report.runs, 1);
        let failure = report.failure.expect("must fail");
        assert_eq!(failure.cut_after, None);
        assert!(failure.to_string().contains("recording pass"));
    }

    #[test]
    fn a_durability_violation_is_pinned_to_its_cut() {
        // Bug: the workload ignores write errors and acks anyway. The
        // fault-free recording pass cannot see it; the sweep pins it to
        // the first cut that refuses an acked write.
        let report = sweep(|clock| {
            let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
            let dev = CrashBackend::new(inner.clone(), clock.clone());
            let mut acked: Vec<u64> = Vec::new();
            for i in 0..2u64 {
                let _ = dev.write_at(i * 8, &(i + 1).to_le_bytes()); // bug: error ignored
                acked.push(i);
            }
            for &i in &acked {
                let mut buf = [0u8; 8];
                if inner.read_at(i * 8, &mut buf).is_err() || u64::from_le_bytes(buf) != i + 1 {
                    return Err(format!("acked record {i} lost"));
                }
            }
            Ok(())
        });
        let failure = report
            .failure
            .expect("the ignored write error must be caught");
        assert_eq!(failure.cut_after, Some(0));
        assert!(failure.to_string().contains("lost"));
    }
}
