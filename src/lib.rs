//! # apio — Asynchronous Parallel I/O for HPC
//!
//! A reproduction of *"Evaluating Asynchronous Parallel I/O on HPC Systems"*
//! (Ravi, Byna, Koziol, Tang, Becchi — IPDPS 2023) as a production-quality
//! Rust workspace. This facade crate re-exports the whole stack:
//!
//! - [`desim`] — deterministic discrete-event simulation core.
//! - [`platform`] — calibrated Summit (GPFS) and Cori-Haswell (Lustre)
//!   system models: file systems, memcpy/GPU-link/NVMe models, contention.
//! - [`mpisim`] — simulated MPI ranks, barriers, and collective I/O.
//! - [`argolite`] — a real Argobots-style tasking runtime (execution
//!   streams, pools, tasks with dependencies, eventuals).
//! - [`h5lite`] — a self-describing HDF5-like container format with a
//!   Virtual Object Layer (VOL) hook point.
//! - [`asyncvol`] — the asynchronous VOL connector: background-thread I/O
//!   with transactional snapshot buffers and read prefetching.
//! - [`trace`] (crate `apio-trace`) — zero-dependency structured tracing
//!   and metrics: RAII spans, typed events, log2 histograms, and Chrome
//!   `trace_event` / JSONL exporters (DESIGN.md §10).
//! - [`model`] (crate `apio-core`) — the paper's contribution: the epoch
//!   performance model (Eq. 1–5), history-driven rate regression, and the
//!   sync-vs-async mode advisor.
//! - [`kernels`] — the VPIC-IO and BD-CATS-IO parallel I/O kernels.
//! - [`apps`] — Nyx, Castro, EQSIM, and Cosmoflow workload models.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for writing a dataset asynchronously with
//! the real engine, and `examples/scenarios.rs` for the paper's Fig. 1
//! overlap scenarios evaluated through the model.

pub mod crashpoint;

pub use apio_core as model;
pub use apio_trace as trace;
pub use apps;
pub use argolite;
pub use asyncvol;
pub use desim;
pub use h5lite;
pub use kernels;
pub use mpisim;
pub use platform;
