//! Chaos acceptance tests for the resilience layer (ISSUE 2, ISSUE 7).
//!
//! Scenario 1 enumerates *every* crash point of the device-staged write
//! path: [`apio::crashpoint::sweep`] cuts persistence of the staging
//! device after the k-th mutation, for each WAL frame boundary k (frame
//! appends and applied-flag updates), then reopens the container,
//! recovers, and demands every acknowledged write read back
//! byte-identical to the model while a post-recovery scrub comes back
//! clean. A companion scenario pins the torn-tail truncation and audits
//! it through the flight recorder and the operator report.
//!
//! Scenario 2 runs the connector into a bounded window of persistent
//! faults and demands the circuit breaker degrade to synchronous
//! passthrough without losing a single acknowledged write, then recover
//! to async mode once the device heals.

use std::sync::Arc;

use apio::asyncvol::{AsyncVol, BreakerConfig, BreakerState, RetryPolicy, StagingLog};
use apio::h5lite::{
    container::ROOT_ID, Container, Dataspace, Datatype, FaultInjector, FaultKind, FaultOp,
    FaultPlan, Hyperslab, Layout, MemBackend, Selection, StorageBackend, Vol,
};
use apio::kernels::vpic::particle_value;
use apio::trace::{Event, Tracer};

const PROPS: usize = 3; // datasets ("particle properties")
const STEPS: u32 = 4; // slab writes per dataset ("timesteps")
const SLAB: u64 = 64; // elements per slab write
const N: u64 = STEPS as u64 * SLAB; // elements per dataset

fn slab_values(step: u32, prop: usize) -> Vec<f32> {
    (0..SLAB)
        .map(|i| particle_value(step, prop, step as u64 * SLAB + i))
        .collect()
}

/// Create the VPIC-style datasets and return their ids.
fn create_datasets(c: &Container) -> Vec<apio::h5lite::ObjectId> {
    (0..PROPS)
        .map(|p| {
            c.create_dataset(
                ROOT_ID,
                &format!("prop{p}"),
                Datatype::F32,
                &Dataspace::d1(N),
                Layout::Contiguous,
            )
            .expect("create dataset")
        })
        .collect()
}

/// Issue the full write schedule through `vol`, in deterministic order.
/// Returns the per-write results (acknowledged == `Ok`).
fn issue_schedule(
    vol: &AsyncVol,
    c: &Arc<Container>,
    ids: &[apio::h5lite::ObjectId],
) -> Vec<apio::h5lite::Result<apio::h5lite::Request>> {
    let mut results = Vec::new();
    for step in 0..STEPS {
        for (p, &ds) in ids.iter().enumerate() {
            let sel = Selection::Slab(Hyperslab::range1(step as u64 * SLAB, SLAB));
            let bytes = apio::h5lite::datatype::to_bytes(&slab_values(step, p));
            results.push(vol.dataset_write(c, ds, &sel, &bytes));
        }
    }
    results
}

/// The fault-free reference: same schedule, clean backend, same config.
fn fault_free_contents() -> Vec<Vec<u8>> {
    let c = Arc::new(Container::create_mem());
    let ids = create_datasets(&c);
    c.flush().expect("flush metadata");
    let vol = AsyncVol::builder()
        .streams(1)
        .stage_to_device(Arc::new(MemBackend::new()))
        .build();
    for r in issue_schedule(&vol, &c, &ids) {
        let _ = r.expect("fault-free write");
    }
    vol.wait_all().expect("fault-free drain");
    ids.iter()
        .map(|&ds| c.read_selection(ds, &Selection::All).expect("read"))
        .collect()
}

#[test]
fn crash_at_every_wal_frame_boundary_recovers_every_acked_write() {
    let report = apio::crashpoint::sweep(|clock| {
        // The container lives on a plain backend with its metadata plane
        // flushed before the chaos window opens; only the staging device
        // sits behind the persistence cut, so every WAL frame append and
        // applied-flag update is one enumerated crash boundary.
        let c_backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let c = Arc::new(Container::create(c_backend.clone()));
        let ids = create_datasets(&c);
        c.flush().map_err(|e| format!("setup flush: {e}"))?;

        let wal_inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let device: Arc<dyn StorageBackend> = Arc::new(apio::crashpoint::CrashBackend::new(
            wal_inner.clone(),
            clock.clone(),
        ));
        let vol = AsyncVol::builder()
            .streams(1)
            .stage_to_device(device)
            .retry(RetryPolicy::none())
            // The sweep studies WAL durability, not degradation: a dead
            // staging device must keep refusing issues, not reroute them
            // around the log.
            .breaker(BreakerConfig {
                failure_threshold: u32::MAX,
                probe_after: 4,
            })
            .build();

        // An issue is acknowledged once its frame is durable in the WAL.
        // The cut is monotone, so the acked set is a prefix of the
        // deterministic schedule.
        let acked: Vec<bool> = issue_schedule(&vol, &c, &ids)
            .into_iter()
            .map(|r| r.is_ok())
            .collect();
        let _ = vol.wait_all(); // post-cut flag updates may fail: benign
        drop(vol); // crash
        drop(c);

        // The power cut also leaves a partial in-flight frame: garbage
        // lands past the last durable byte.
        let end = wal_inner.len();
        wal_inner
            .write_at(end, &[0xDE, 0xAD, 0xBE, 0xEF])
            .map_err(|e| format!("tear the tail: {e}"))?;

        // Reboot: the metadata plane must reopen, and recovery + scrub
        // must rebuild the container from the surviving WAL prefix.
        let c2 =
            Arc::new(Container::open(c_backend).map_err(|e| format!("reopen after crash: {e}"))?);
        let vol2 = AsyncVol::builder().stage_to_device(wal_inner).build();
        let rec = vol2
            .recover_and_scrub(&c2)
            .map_err(|e| format!("recovery: {e}"))?;
        if rec.scrub_repaired < rec.scrub_corrupt {
            return Err(format!("recovery scrub left corruption behind: {rec:?}"));
        }

        // Byte-identical recovery: acked slabs hold exactly their
        // payload, unacked slabs hold zeros — never garbage.
        let mut expect = vec![vec![0.0f32; N as usize]; PROPS];
        for step in 0..STEPS {
            for p in 0..PROPS {
                if acked[step as usize * PROPS + p] {
                    let at = (step as u64 * SLAB) as usize;
                    expect[p][at..at + SLAB as usize].copy_from_slice(&slab_values(step, p));
                }
            }
        }
        for (p, want) in expect.iter().enumerate() {
            let ds = c2
                .lookup(ROOT_ID, &format!("prop{p}"))
                .map_err(|e| format!("metadata plane lost prop{p}: {e}"))?;
            let got = c2
                .read_selection(ds, &Selection::All)
                .map_err(|e| format!("read back prop{p}: {e}"))?;
            if got != apio::h5lite::datatype::to_bytes(want) {
                return Err(format!("prop{p} is not byte-identical to the acked model"));
            }
        }

        // The recovered container must also checksum clean at rest.
        c2.flush().map_err(|e| format!("post-recovery flush: {e}"))?;
        let scrub = c2.scrub().map_err(|e| format!("post-recovery scrub: {e}"))?;
        if scrub.corrupt > 0 {
            return Err(format!("post-recovery scrub found corruption: {scrub:?}"));
        }
        Ok(())
    });

    assert!(report.ok(), "{}", report.failure.expect("failure"));
    // Every frame append is at least one boundary, and the sweep ran the
    // recording pass plus one run per cut in 0..=boundaries.
    let frames = STEPS as u64 * PROPS as u64;
    assert!(
        report.boundaries >= frames,
        "{} boundaries cannot cover {frames} WAL frames",
        report.boundaries
    );
    assert_eq!(report.runs, report.boundaries + 2);

    // The sweep outcome is operator-visible through the report schema.
    let json = apio::model::ReportBuilder::new("chaos: crash-point sweep")
        .integrity(apio::model::IntegritySummary {
            crash_points: report.boundaries + 1,
            crash_failures: 0,
            ..Default::default()
        })
        .render_json();
    assert!(json.contains(&format!("\"crash_points\":{}", report.boundaries + 1)));
    assert!(json.contains("\"crash_failures\":0"));
}

/// The single-point companion to the sweep: a torn in-flight frame is
/// truncated by recovery, and the evidence survives the black-box
/// telemetry — one `wal.replay` per staged record, one `WalTruncated`
/// at the end of the valid prefix, and the operator report's recovery
/// section, all cross-checked against the [`RecoveryReport`].
#[test]
fn torn_wal_tail_is_truncated_and_audited_in_the_flight_recorder() {
    let reference = fault_free_contents();
    let c = Arc::new(Container::create_mem());
    let ids = create_datasets(&c);
    c.flush().expect("metadata durable before the crash");

    // Stage the schedule straight into the log (no connector): every
    // record durable, none applied — the worst honest crash.
    let device: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let log = StagingLog::open(device.clone());
    let mut staged = 0u64;
    for step in 0..STEPS {
        for (p, &ds) in ids.iter().enumerate() {
            let sel = Selection::Slab(Hyperslab::range1(step as u64 * SLAB, SLAB));
            let bytes = apio::h5lite::datatype::to_bytes(&slab_values(step, p));
            log.append(ds, &sel, &bytes).expect("append");
            staged += 1;
        }
    }
    drop(log);

    // A crash mid-append leaves a partial frame after the last valid
    // record. Recovery must truncate it — and say so.
    let valid_end = device.len();
    device
        .write_at(valid_end, &[0xDE, 0xAD, 0xBE, 0xEF])
        .expect("tear the tail");

    // Recovery runs under the always-on flight recorder (not full
    // tracing): the black-box ring must be enough to audit a replay.
    let tracer = Tracer::flight(4096);
    let vol = AsyncVol::builder()
        .stage_to_device(device)
        .tracer(tracer.clone())
        .build();
    let report = vol.recover_and_scrub(&c).expect("recovery");
    assert_eq!(report.replayed, staged, "every staged record replays");
    assert!(report.bytes_replayed > 0);
    assert_eq!(report.orphaned, 0, "every record targets a live dataset");

    // The recovery trace mirrors the report: one `wal.replay` span per
    // replayed record (all inside the `wal.recover` span), and exactly
    // one torn-tail truncation at the end of the valid prefix.
    let sink = tracer.sink();
    let replays = sink.spans("wal.replay");
    assert_eq!(replays.len() as u64, report.replayed);
    let mut replay_bytes = 0u64;
    for r in &replays {
        assert!(sink.within_span_named(r, "wal.recover"));
        let Some(Event::WalReplay { bytes, .. }) = r.event else {
            panic!("wal.replay span without WalReplay payload");
        };
        replay_bytes += bytes;
    }
    assert_eq!(replay_bytes, report.bytes_replayed);
    let torn = sink.events_where(|e| matches!(e, Event::WalTruncated { .. }));
    assert_eq!(torn.len(), 1, "exactly one torn-tail truncation event");
    let Some(Event::WalTruncated { offset }) = torn[0].event else {
        unreachable!("filtered above");
    };
    assert_eq!(offset, valid_end, "truncation lands at the valid prefix end");

    for (p, &ds) in ids.iter().enumerate() {
        let got = c.read_selection(ds, &Selection::All).expect("read back");
        assert_eq!(
            got, reference[p],
            "dataset prop{p} must be byte-identical to the fault-free run"
        );
    }

    // The same evidence must survive into the black-box telemetry and
    // the operator report JSON.
    let dump = tracer.flight_dump();
    assert_eq!(dump.dropped(), 0, "4096/shard must retain the whole recovery");
    let jsonl = dump.jsonl();
    let replay_lines = jsonl
        .lines()
        .filter(|l| l.contains("\"type\":\"WalReplay\""))
        .count();
    assert_eq!(replay_lines as u64, report.replayed);
    assert_eq!(
        jsonl.matches("\"type\":\"WalTruncated\"").count(),
        1,
        "the one torn-tail truncation shows up in the dump"
    );

    let json = apio::model::ReportBuilder::new("chaos: crash recovery")
        .metrics(vol.metrics())
        .recovery(apio::model::RecoverySummary {
            scanned: report.scanned,
            replayed: report.replayed,
            bytes_replayed: report.bytes_replayed,
            orphaned: report.orphaned,
            already_applied: report.already_applied,
        })
        .flight(dump.capacity(), dump.len(), dump.dropped())
        .render_json();
    assert!(json.contains("\"schema\":\"apio-report-v1\""));
    assert!(json.contains(&format!("\"replayed\":{}", report.replayed)));
    assert!(json.contains(&format!("\"bytes_replayed\":{}", report.bytes_replayed)));
    assert!(json.contains("\"orphaned\":0"));
    assert!(json.contains(&format!("\"recorded\":{}", dump.len())));

    // Recovery is idempotent: a second replay finds everything applied.
    let again = vol.recover_staging(&c).expect("second recovery");
    assert_eq!(again.replayed, 0);
    assert_eq!(again.already_applied, report.scanned);
}

#[test]
fn persistent_faults_degrade_to_sync_without_losing_acknowledged_writes() {
    // The device fails persistently for a bounded window of 4 writes,
    // then heals. threshold=2 / probe_after=2 walks the breaker through
    // Closed → Open → (degraded, probe fails) → Open → degraded → probe
    // succeeds → Closed within a handful of issues.
    let plan = FaultPlan::new(0xB4EA4E4)
        .fail_after(FaultOp::Write, 0, FaultKind::Persistent)
        .times(4);
    let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let injector = Arc::new(FaultInjector::new(inner, plan));
    injector.set_armed(false);

    let c = Arc::new(Container::create(injector.clone()));
    let ds = c
        .create_dataset(
            ROOT_ID,
            "x",
            Datatype::F64,
            &Dataspace::d1(64),
            Layout::Contiguous,
        )
        .expect("create");
    c.flush().expect("flush");

    // The degrade/recover walk happens under the always-on flight
    // recorder, so the transition evidence must survive into its ring.
    let tracer = Tracer::flight(1024);
    let vol = AsyncVol::builder()
        .streams(1)
        .retry(RetryPolicy::none())
        .breaker(BreakerConfig {
            failure_threshold: 2,
            probe_after: 2,
        })
        .tracer(tracer.clone())
        .build();
    injector.set_armed(true);

    // One 8-element slab per issue, each with a distinct fingerprint;
    // wait per request so breaker transitions happen deterministically
    // between issues. An issue is "acknowledged" only if both the issue
    // and its wait succeed.
    let mut acked: Vec<(u64, Vec<f64>)> = Vec::new();
    let mut saw_degraded_ack = false;
    for i in 0..8u64 {
        let start = i * 8;
        let vals: Vec<f64> = (0..8).map(|j| (i * 100 + j) as f64).collect();
        let sel = Selection::Slab(Hyperslab::range1(start, 8));
        let bytes = apio::h5lite::datatype::to_bytes(&vals);
        match vol.dataset_write(&c, ds, &sel, &bytes) {
            Ok(req) => {
                let synchronous = req.is_sync();
                if !synchronous {
                    if vol.wait(req).is_err() {
                        continue; // async failure: reported, not acked
                    }
                } else {
                    saw_degraded_ack = true;
                }
                acked.push((start, vals));
            }
            Err(_) => {
                // Degraded synchronous write against the dead device:
                // the failure is returned immediately, nothing is acked.
            }
        }
    }

    let stats = vol.stats();
    assert!(stats.breaker_opens >= 1, "the breaker must trip: {stats:?}");
    assert!(
        stats.degraded_writes >= 1 && saw_degraded_ack,
        "the healed device must serve degraded writes: {stats:?}"
    );
    assert!(stats.probes >= 1, "open state must probe: {stats:?}");
    assert!(
        stats.breaker_closes >= 1,
        "a clean probe must restore async mode: {stats:?}"
    );
    assert_eq!(
        vol.breaker_state(),
        BreakerState::Closed,
        "the connector must fully recover"
    );
    assert!(!vol.stats().degraded);
    assert!(
        acked.len() >= 3,
        "post-window writes must succeed: {} acked",
        acked.len()
    );

    vol.wait_all().expect("no unreported failures remain");
    for (start, vals) in &acked {
        let sel = Selection::Slab(Hyperslab::range1(*start, 8));
        let got = c.read_selection(ds, &sel).expect("read acked slab");
        let got: Vec<f64> = apio::h5lite::datatype::from_bytes(&got).expect("decode");
        assert_eq!(&got, vals, "acknowledged slab at {start} must be intact");
    }

    // The full degrade → probe → recover walk is visible in the flight
    // dump, transition-for-transition against the stats counters, and
    // the operator report JSON agrees with the same registry.
    let stats = vol.stats();
    let dump = tracer.flight_dump();
    let jsonl = dump.jsonl();
    assert!(
        jsonl.contains("\"type\":\"BreakerTransition\",\"from\":\"closed\",\"to\":\"open\""),
        "the trip must be in the ring"
    );
    assert!(
        jsonl.contains("\"from\":\"half-open\",\"to\":\"closed\""),
        "the recovery must be in the ring"
    );
    assert_eq!(
        jsonl.matches("\"to\":\"open\"").count() as u64,
        stats.breaker_opens,
        "one BreakerTransition-to-open per counted open"
    );
    assert_eq!(
        jsonl.matches("\"to\":\"closed\"").count() as u64,
        stats.breaker_closes
    );

    let json = apio::model::ReportBuilder::new("chaos: breaker degrade/recover")
        .metrics(vol.metrics())
        .breaker("closed", stats.degraded)
        .flight(dump.capacity(), dump.len(), dump.dropped())
        .render_json();
    assert!(json.contains("\"breaker\":{\"state\":\"closed\",\"degraded\":false}"));
    assert!(json.contains(&format!(
        "\"name\":\"vol.breaker_opens\",\"value\":{}",
        stats.breaker_opens
    )));
    assert!(json.contains(&format!(
        "\"name\":\"vol.breaker_closes\",\"value\":{}",
        stats.breaker_closes
    )));
    assert!(json.contains(&format!(
        "\"name\":\"vol.degraded_writes\",\"value\":{}",
        stats.degraded_writes
    )));
    assert!(json.contains(&format!("\"name\":\"vol.probes\",\"value\":{}", stats.probes)));
}
