//! Chaos acceptance tests for the resilience layer (ISSUE 2).
//!
//! Scenario 1 drives VPIC-IO-style writes through a seeded [`FaultPlan`]
//! with transient faults and a mid-run "crash" (the storage device dying
//! persistently under the connector), reopens the container, replays the
//! staging write-ahead log, and demands the recovered container be
//! byte-identical to a fault-free run of the same schedule.
//!
//! Scenario 2 runs the connector into a bounded window of persistent
//! faults and demands the circuit breaker degrade to synchronous
//! passthrough without losing a single acknowledged write, then recover
//! to async mode once the device heals.

use std::sync::Arc;

use apio::asyncvol::{AsyncVol, BreakerConfig, BreakerState, RetryPolicy};
use apio::h5lite::{
    container::ROOT_ID, Container, Dataspace, Datatype, FaultInjector, FaultKind, FaultOp,
    FaultPlan, Hyperslab, Layout, MemBackend, Selection, StorageBackend, Vol,
};
use apio::kernels::vpic::particle_value;
use apio::trace::{Event, Tracer};

const PROPS: usize = 3; // datasets ("particle properties")
const STEPS: u32 = 4; // slab writes per dataset ("timesteps")
const SLAB: u64 = 64; // elements per slab write
const N: u64 = STEPS as u64 * SLAB; // elements per dataset

fn slab_values(step: u32, prop: usize) -> Vec<f32> {
    (0..SLAB)
        .map(|i| particle_value(step, prop, step as u64 * SLAB + i))
        .collect()
}

/// Create the VPIC-style datasets and return their ids.
fn create_datasets(c: &Container) -> Vec<apio::h5lite::ObjectId> {
    (0..PROPS)
        .map(|p| {
            c.create_dataset(
                ROOT_ID,
                &format!("prop{p}"),
                Datatype::F32,
                &Dataspace::d1(N),
                Layout::Contiguous,
            )
            .expect("create dataset")
        })
        .collect()
}

/// Issue the full write schedule through `vol`, in deterministic order.
/// Returns the per-write results (acknowledged == `Ok`).
fn issue_schedule(
    vol: &AsyncVol,
    c: &Arc<Container>,
    ids: &[apio::h5lite::ObjectId],
) -> Vec<apio::h5lite::Result<apio::h5lite::Request>> {
    let mut results = Vec::new();
    for step in 0..STEPS {
        for (p, &ds) in ids.iter().enumerate() {
            let sel = Selection::Slab(Hyperslab::range1(step as u64 * SLAB, SLAB));
            let bytes = apio::h5lite::datatype::to_bytes(&slab_values(step, p));
            results.push(vol.dataset_write(c, ds, &sel, &bytes));
        }
    }
    results
}

/// The fault-free reference: same schedule, clean backend, same config.
fn fault_free_contents() -> Vec<Vec<u8>> {
    let c = Arc::new(Container::create_mem());
    let ids = create_datasets(&c);
    c.flush().expect("flush metadata");
    let vol = AsyncVol::builder()
        .streams(1)
        .stage_to_device(Arc::new(MemBackend::new()))
        .build();
    for r in issue_schedule(&vol, &c, &ids) {
        let _ = r.expect("fault-free write");
    }
    vol.wait_all().expect("fault-free drain");
    ids.iter()
        .map(|&ds| c.read_selection(ds, &Selection::All).expect("read"))
        .collect()
}

#[test]
fn crash_recovery_restores_fault_free_contents() {
    let reference = fault_free_contents();

    // Transient noise early, then the device dies for good at the 8th
    // data write — the "crash". The fail_at rule guarantees at least one
    // retryable fault regardless of what the random rule rolls.
    let plan = FaultPlan::new(0xC4A05)
        .fail_after(FaultOp::Write, 8, FaultKind::Persistent)
        .fail_at(FaultOp::Write, 2, FaultKind::Transient)
        .random(FaultOp::Write, 0.10, FaultKind::Transient);

    let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let injector = Arc::new(FaultInjector::new(inner.clone(), plan));
    injector.set_armed(false); // metadata setup is not under test

    let c = Arc::new(Container::create(injector.clone()));
    let ids = create_datasets(&c);
    c.flush().expect("metadata durable before the chaos starts");

    let device: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let tracer = Tracer::new();
    let vol = AsyncVol::builder()
        .streams(1)
        .stage_to_device(device.clone())
        .tracer(tracer.clone())
        .retry(RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        })
        // Scenario 1 studies WAL recovery, not degradation: keep the
        // breaker out of the way so every write is acknowledged into
        // the staging log before the crash.
        .breaker(BreakerConfig {
            failure_threshold: u32::MAX,
            probe_after: 4,
        })
        .build();

    injector.set_armed(true);
    for r in issue_schedule(&vol, &c, &ids) {
        let _ = r.expect("issue is acknowledged once staged in the WAL");
    }

    // The drain surfaces the persistent failures: this is where a real
    // application would die mid-epoch.
    let drain = vol.wait_all();
    assert!(drain.is_err(), "the dead device must surface at wait_all");
    let stats = vol.stats();
    assert!(stats.retries > 0, "transient faults must have been retried");
    assert!(injector.injected() > 0, "the plan must actually fire");

    // Every retry in the trace respects the policy: the attempt index is
    // recorded just before the backoff sleep, so with max_attempts = 6 no
    // RetryAttempt may carry an index past 5.
    let sink = tracer.sink();
    let retries = sink.events_where(|e| matches!(e, Event::RetryAttempt { .. }));
    assert!(!retries.is_empty(), "retries must appear in the trace");
    for r in &retries {
        let Some(Event::RetryAttempt { attempt, .. }) = r.event else {
            unreachable!("filtered above");
        };
        assert!(attempt < 6, "retry attempt {attempt} exceeds the policy bound");
    }
    drop(vol); // crash: connector dies, DRAM state is gone

    // Reboot: reopen the container from the raw (healed) device and
    // replay the staging log through a fresh connector.
    let c2 = Arc::new(Container::open(inner).expect("reopen after crash"));
    let ids2: Vec<_> = (0..PROPS)
        .map(|p| c2.lookup(ROOT_ID, &format!("prop{p}")).expect("lookup"))
        .collect();
    assert_eq!(ids2, ids, "flushed metadata survives the crash");

    // Tear the log tail: a crash mid-append leaves a partial frame after
    // the last valid record. Recovery must truncate it — and say so.
    let valid_end = device.len();
    device
        .write_at(valid_end, &[0xDE, 0xAD, 0xBE, 0xEF])
        .expect("tear the tail");

    // Recovery runs under the always-on flight recorder (not full
    // tracing): the black-box ring must be enough to audit a replay.
    let tracer2 = Tracer::flight(4096);
    let vol2 = AsyncVol::builder()
        .stage_to_device(device)
        .tracer(tracer2.clone())
        .build();
    let report = vol2.recover_staging(&c2).expect("recovery");
    assert!(
        report.replayed > 0,
        "crash left staged-but-unflushed extents: {report:?}"
    );
    assert!(report.bytes_replayed > 0);
    assert_eq!(report.orphaned, 0, "every record targets a live dataset");

    // The recovery trace mirrors the report: one `wal.replay` span per
    // replayed record (all inside the `wal.recover` span), and exactly
    // one torn-tail truncation at the end of the valid prefix.
    let rsink = tracer2.sink();
    let replays = rsink.spans("wal.replay");
    assert_eq!(replays.len() as u64, report.replayed);
    let mut replay_bytes = 0u64;
    for r in &replays {
        assert!(rsink.within_span_named(r, "wal.recover"));
        let Some(Event::WalReplay { bytes, .. }) = r.event else {
            panic!("wal.replay span without WalReplay payload");
        };
        replay_bytes += bytes;
    }
    assert_eq!(replay_bytes, report.bytes_replayed);
    let torn = rsink.events_where(|e| matches!(e, Event::WalTruncated { .. }));
    assert_eq!(torn.len(), 1, "exactly one torn-tail truncation event");
    let Some(Event::WalTruncated { offset }) = torn[0].event else {
        unreachable!("filtered above");
    };
    assert_eq!(offset, valid_end, "truncation lands at the valid prefix end");

    for (p, &ds) in ids2.iter().enumerate() {
        let got = c2.read_selection(ds, &Selection::All).expect("read back");
        assert_eq!(
            got, reference[p],
            "dataset prop{p} must be byte-identical to the fault-free run"
        );
    }

    // The same evidence must survive into the black-box telemetry: the
    // flight-recorder dump carries one WalReplay per replayed record and
    // the torn-tail truncation, and the operator report JSON carries the
    // recovery summary — all cross-checked against the RecoveryReport.
    let dump = tracer2.flight_dump();
    assert_eq!(dump.dropped(), 0, "4096/shard must retain the whole recovery");
    let jsonl = dump.jsonl();
    let replay_lines = jsonl
        .lines()
        .filter(|l| l.contains("\"type\":\"WalReplay\""))
        .count();
    assert_eq!(replay_lines as u64, report.replayed);
    assert_eq!(
        jsonl.matches("\"type\":\"WalTruncated\"").count(),
        1,
        "the one torn-tail truncation shows up in the dump"
    );

    let json = apio::model::ReportBuilder::new("chaos: crash recovery")
        .metrics(vol2.metrics())
        .recovery(apio::model::RecoverySummary {
            scanned: report.scanned,
            replayed: report.replayed,
            bytes_replayed: report.bytes_replayed,
            orphaned: report.orphaned,
            already_applied: report.already_applied,
        })
        .flight(dump.capacity(), dump.len(), dump.dropped())
        .render_json();
    assert!(json.contains("\"schema\":\"apio-report-v1\""));
    assert!(json.contains(&format!("\"replayed\":{}", report.replayed)));
    assert!(json.contains(&format!("\"bytes_replayed\":{}", report.bytes_replayed)));
    assert!(json.contains("\"orphaned\":0"));
    assert!(json.contains(&format!("\"recorded\":{}", dump.len())));

    // Recovery is idempotent: a second replay finds everything applied.
    let again = vol2.recover_staging(&c2).expect("second recovery");
    assert_eq!(again.replayed, 0);
    assert_eq!(again.already_applied, report.scanned);
}

#[test]
fn persistent_faults_degrade_to_sync_without_losing_acknowledged_writes() {
    // The device fails persistently for a bounded window of 4 writes,
    // then heals. threshold=2 / probe_after=2 walks the breaker through
    // Closed → Open → (degraded, probe fails) → Open → degraded → probe
    // succeeds → Closed within a handful of issues.
    let plan = FaultPlan::new(0xB4EA4E4)
        .fail_after(FaultOp::Write, 0, FaultKind::Persistent)
        .times(4);
    let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let injector = Arc::new(FaultInjector::new(inner, plan));
    injector.set_armed(false);

    let c = Arc::new(Container::create(injector.clone()));
    let ds = c
        .create_dataset(
            ROOT_ID,
            "x",
            Datatype::F64,
            &Dataspace::d1(64),
            Layout::Contiguous,
        )
        .expect("create");
    c.flush().expect("flush");

    // The degrade/recover walk happens under the always-on flight
    // recorder, so the transition evidence must survive into its ring.
    let tracer = Tracer::flight(1024);
    let vol = AsyncVol::builder()
        .streams(1)
        .retry(RetryPolicy::none())
        .breaker(BreakerConfig {
            failure_threshold: 2,
            probe_after: 2,
        })
        .tracer(tracer.clone())
        .build();
    injector.set_armed(true);

    // One 8-element slab per issue, each with a distinct fingerprint;
    // wait per request so breaker transitions happen deterministically
    // between issues. An issue is "acknowledged" only if both the issue
    // and its wait succeed.
    let mut acked: Vec<(u64, Vec<f64>)> = Vec::new();
    let mut saw_degraded_ack = false;
    for i in 0..8u64 {
        let start = i * 8;
        let vals: Vec<f64> = (0..8).map(|j| (i * 100 + j) as f64).collect();
        let sel = Selection::Slab(Hyperslab::range1(start, 8));
        let bytes = apio::h5lite::datatype::to_bytes(&vals);
        match vol.dataset_write(&c, ds, &sel, &bytes) {
            Ok(req) => {
                let synchronous = req.is_sync();
                if !synchronous {
                    if vol.wait(req).is_err() {
                        continue; // async failure: reported, not acked
                    }
                } else {
                    saw_degraded_ack = true;
                }
                acked.push((start, vals));
            }
            Err(_) => {
                // Degraded synchronous write against the dead device:
                // the failure is returned immediately, nothing is acked.
            }
        }
    }

    let stats = vol.stats();
    assert!(stats.breaker_opens >= 1, "the breaker must trip: {stats:?}");
    assert!(
        stats.degraded_writes >= 1 && saw_degraded_ack,
        "the healed device must serve degraded writes: {stats:?}"
    );
    assert!(stats.probes >= 1, "open state must probe: {stats:?}");
    assert!(
        stats.breaker_closes >= 1,
        "a clean probe must restore async mode: {stats:?}"
    );
    assert_eq!(
        vol.breaker_state(),
        BreakerState::Closed,
        "the connector must fully recover"
    );
    assert!(!vol.stats().degraded);
    assert!(
        acked.len() >= 3,
        "post-window writes must succeed: {} acked",
        acked.len()
    );

    vol.wait_all().expect("no unreported failures remain");
    for (start, vals) in &acked {
        let sel = Selection::Slab(Hyperslab::range1(*start, 8));
        let got = c.read_selection(ds, &sel).expect("read acked slab");
        let got: Vec<f64> = apio::h5lite::datatype::from_bytes(&got).expect("decode");
        assert_eq!(&got, vals, "acknowledged slab at {start} must be intact");
    }

    // The full degrade → probe → recover walk is visible in the flight
    // dump, transition-for-transition against the stats counters, and
    // the operator report JSON agrees with the same registry.
    let stats = vol.stats();
    let dump = tracer.flight_dump();
    let jsonl = dump.jsonl();
    assert!(
        jsonl.contains("\"type\":\"BreakerTransition\",\"from\":\"closed\",\"to\":\"open\""),
        "the trip must be in the ring"
    );
    assert!(
        jsonl.contains("\"from\":\"half-open\",\"to\":\"closed\""),
        "the recovery must be in the ring"
    );
    assert_eq!(
        jsonl.matches("\"to\":\"open\"").count() as u64,
        stats.breaker_opens,
        "one BreakerTransition-to-open per counted open"
    );
    assert_eq!(
        jsonl.matches("\"to\":\"closed\"").count() as u64,
        stats.breaker_closes
    );

    let json = apio::model::ReportBuilder::new("chaos: breaker degrade/recover")
        .metrics(vol.metrics())
        .breaker("closed", stats.degraded)
        .flight(dump.capacity(), dump.len(), dump.dropped())
        .render_json();
    assert!(json.contains("\"breaker\":{\"state\":\"closed\",\"degraded\":false}"));
    assert!(json.contains(&format!(
        "\"name\":\"vol.breaker_opens\",\"value\":{}",
        stats.breaker_opens
    )));
    assert!(json.contains(&format!(
        "\"name\":\"vol.breaker_closes\",\"value\":{}",
        stats.breaker_closes
    )));
    assert!(json.contains(&format!(
        "\"name\":\"vol.degraded_writes\",\"value\":{}",
        stats.degraded_writes
    )));
    assert!(json.contains(&format!("\"name\":\"vol.probes\",\"value\":{}", stats.probes)));
}
