//! Consistency-model conformance suite (ISSUE 9).
//!
//! The metadata plane publishes copy-on-write dataset snapshots at
//! points chosen by the open-time [`ConsistencyModel`]; this suite
//! machine-checks observed reads against each model's formal visibility
//! rule over seeded concurrent histories:
//!
//! - **Strong**: a published read observes exactly the completed writes
//!   (publication at mutation — POSIX-like).
//! - **Session**: floor ⊆ observed ⊆ completed, where the floor is the
//!   completed set at the latest settlement (`publish_settled`) or
//!   flush.
//! - **Commit**: floor ⊆ observed ⊆ completed, floor taken at the
//!   latest successful flush only.
//!
//! The seeded histories come from `argolite::explore` (one schedule per
//! seed over writers × publication points × readers); scripted
//! `explore::replay` schedules then *prove* the models are
//! pairwise distinguishable — a stale read the weaker model lawfully
//! returns and the stronger model forbids. The connector-level tests
//! pin the same boundaries end to end through `AsyncVol`: settlement
//! (`wait`) publishes under session, only flush publishes under commit.

use std::sync::Arc;

use apio::h5lite::{
    container::ROOT_ID, datatype::to_bytes, ConsistencyModel, Container, Dataspace, Datatype,
    Hyperslab, Layout, Selection,
};

/// Writers cover one chunk each so "which writes are visible" is
/// readable straight off the returned bytes.
const WRITERS: u64 = 4;
const CHUNK: u64 = 8;

fn chunk_sel(i: u64) -> Selection {
    Selection::Slab(Hyperslab::range1(i * CHUNK, CHUNK))
}

fn chunk_payload(i: u64) -> Vec<u8> {
    to_bytes(&vec![(i + 1) as f32; CHUNK as usize])
}

/// A container with one chunked dataset sized for [`WRITERS`] chunks.
fn fixture(model: ConsistencyModel) -> (Arc<Container>, apio::h5lite::ObjectId) {
    let c = Arc::new(Container::create_mem_with(model));
    let ds = c
        .create_dataset(
            ROOT_ID,
            "d",
            Datatype::F32,
            &Dataspace::d1(WRITERS * CHUNK),
            Layout::Chunked1D { chunk_elems: CHUNK },
        )
        .expect("create dataset");
    (c, ds)
}

/// Which chunks a published read currently observes. Every chunk must
/// be all-payload or all-fill — a mix means a torn publication, which
/// no model permits.
fn observed_chunks(c: &Container, ds: apio::h5lite::ObjectId) -> Result<Vec<u64>, String> {
    let mut seen = Vec::new();
    for i in 0..WRITERS {
        let got = c
            .read_published(ds, &chunk_sel(i))
            .map_err(|e| format!("published read of chunk {i}: {e}"))?;
        if got == chunk_payload(i) {
            seen.push(i);
        } else if got != vec![0u8; (CHUNK * 4) as usize] {
            return Err(format!("chunk {i} read torn: neither payload nor fill"));
        }
    }
    Ok(seen)
}

#[cfg(feature = "debug-invariants")]
mod seeded {
    use super::*;
    use apio::argolite::explore::{explore, ExploreStep};
    use apio::argolite::TaskGraph;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    fn seed_count() -> u64 {
        std::env::var("APIO_EXPLORE_SEEDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64)
    }

    /// Shared per-schedule history the tasks append to and the readers
    /// check against. The explorer runs task bodies one at a time, so
    /// each body is an atomic history event.
    #[derive(Default)]
    struct History {
        /// Chunks whose write completed.
        completed: BTreeSet<u64>,
        /// Visibility floor: completed-set captured at the latest
        /// publication point this model honours.
        floor: BTreeSet<u64>,
        /// Invariant violations found inside reader bodies.
        violations: Vec<String>,
        /// Did any reader observe strictly fewer chunks than were
        /// completed (a stale-but-lawful read)?
        stale_reads: u64,
        reads: u64,
    }

    /// One seeded conformance sweep: WRITERS writers, one settlement,
    /// one flush, two readers, no edges — every interleaving is legal.
    /// After every step each reader's observation must satisfy
    /// floor ⊆ observed ⊆ completed (with floor == completed for
    /// strong). Returns the total stale lawful reads across all seeds.
    fn conformance_sweep(model: ConsistencyModel) -> u64 {
        let seeds = seed_count();
        let history: Arc<Mutex<History>> = Arc::new(Mutex::new(History::default()));
        let stale_total = Arc::new(Mutex::new(0u64));

        let build = {
            let history = history.clone();
            let stale_total = stale_total.clone();
            move || {
                *history.lock().unwrap() = History::default();
                let (c, ds) = fixture(model);
                let mut g = TaskGraph::new();
                for i in 0..WRITERS {
                    let c = c.clone();
                    let history = history.clone();
                    g.add_task(format!("write:{i}"), move || {
                        c.write_selection(ds, &chunk_sel(i), &chunk_payload(i))
                            .expect("chunk write");
                        history.lock().unwrap().completed.insert(i);
                    });
                }
                {
                    let c = c.clone();
                    let history = history.clone();
                    g.add_task("settle", move || {
                        c.publish_settled();
                        let mut h = history.lock().unwrap();
                        if model == ConsistencyModel::Session {
                            h.floor = h.completed.clone();
                        }
                    });
                }
                {
                    let c = c.clone();
                    let history = history.clone();
                    g.add_task("flush", move || {
                        c.flush().expect("flush");
                        let mut h = history.lock().unwrap();
                        // Flush publishes under every model (strong
                        // already published at mutation).
                        h.floor = h.completed.clone();
                    });
                }
                for r in 0..2u64 {
                    let c = c.clone();
                    let history = history.clone();
                    let stale_total = stale_total.clone();
                    g.add_task(format!("read:{r}"), move || {
                        let observed: BTreeSet<u64> = match observed_chunks(&c, ds) {
                            Ok(seen) => seen.into_iter().collect(),
                            Err(e) => {
                                history.lock().unwrap().violations.push(e);
                                return;
                            }
                        };
                        let mut h = history.lock().unwrap();
                        h.reads += 1;
                        let lower = match model {
                            ConsistencyModel::Strong => h.completed.clone(),
                            _ => h.floor.clone(),
                        };
                        if !lower.is_subset(&observed) {
                            h.violations.push(format!(
                                "reader {r}: observed {observed:?} misses published floor {lower:?}"
                            ));
                        }
                        let completed = h.completed.clone();
                        if !observed.is_subset(&completed) {
                            h.violations.push(format!(
                                "reader {r}: observed {observed:?} beyond completed {completed:?}"
                            ));
                        }
                        if observed != completed {
                            h.stale_reads += 1;
                            *stale_total.lock().unwrap() += 1;
                        }
                    });
                }
                g
            }
        };

        let invariant = |s: &ExploreStep<'_>| {
            let h = history.lock().unwrap();
            match h.violations.first() {
                Some(v) => Err(format!("after `{}`: {v}", s.label)),
                None => Ok(()),
            }
        };
        let report = explore(seeds, build, invariant);
        assert!(report.ok(), "[{model:?}] {}", report.failure.unwrap());
        assert_eq!(report.seeds_run, seeds);
        assert!(
            report.distinct_orders >= 2,
            "[{model:?}] {seeds}-seed sweep must exercise schedule diversity, saw {}",
            report.distinct_orders
        );
        let total = *stale_total.lock().unwrap();
        total
    }

    /// Strong conformance: every seeded schedule linearizes — a
    /// published read observes exactly the completed writes, so the
    /// sweep must report zero stale reads.
    #[test]
    fn strong_conformance_no_schedule_observes_a_stale_read() {
        let stale = conformance_sweep(ConsistencyModel::Strong);
        assert_eq!(
            stale, 0,
            "strong forbids stale reads on every schedule, saw {stale}"
        );
    }

    /// Session conformance: every schedule respects the settlement
    /// floor, and at least one schedule observes a stale read that
    /// strong forbids — the model is genuinely weaker, not an alias.
    #[test]
    fn session_conformance_and_distinguishability_from_strong() {
        let stale = conformance_sweep(ConsistencyModel::Session);
        assert!(
            stale > 0,
            "no explored schedule distinguished session from strong; \
             raise APIO_EXPLORE_SEEDS"
        );
    }

    /// Commit conformance: same shape, floor at flush only.
    #[test]
    fn commit_conformance_and_distinguishability_from_strong() {
        let stale = conformance_sweep(ConsistencyModel::Commit);
        assert!(
            stale > 0,
            "no explored schedule distinguished commit from strong; \
             raise APIO_EXPLORE_SEEDS"
        );
    }

    /// The scripted proofs: replay the *same* schedule under each model
    /// and diff what the reader sees. `[write, read]` separates strong
    /// from both weak models; `[write, settle, read]` separates session
    /// from commit.
    #[test]
    fn scripted_replays_prove_the_models_pairwise_distinct() {
        use apio::argolite::explore::replay;

        fn observe_after(model: ConsistencyModel, schedule: &[&str]) -> Vec<u64> {
            let out: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            let build = {
                let out = out.clone();
                move || {
                    let (c, ds) = fixture(model);
                    let mut g = TaskGraph::new();
                    {
                        let c = c.clone();
                        g.add_task("write", move || {
                            c.write_selection(ds, &chunk_sel(0), &chunk_payload(0))
                                .expect("write");
                        });
                    }
                    {
                        let c = c.clone();
                        g.add_task("settle", move || c.publish_settled());
                    }
                    {
                        let c = c.clone();
                        g.add_task("flush", move || c.flush().expect("flush"));
                    }
                    {
                        let c = c.clone();
                        let out = out.clone();
                        g.add_task("read", move || {
                            *out.lock().unwrap() =
                                observed_chunks(&c, ds).expect("published read");
                        });
                    }
                    g
                }
            };
            let schedule: Vec<String> = schedule.iter().map(|s| (*s).to_owned()).collect();
            replay(build, &schedule, |_| Ok(())).expect("replay");
            let got = out.lock().unwrap().clone();
            got
        }

        // Write, then read, with no publication point in between:
        // strong sees the write; session and commit lawfully do not.
        let schedule = ["write", "read"];
        assert_eq!(observe_after(ConsistencyModel::Strong, &schedule), vec![0]);
        assert_eq!(observe_after(ConsistencyModel::Session, &schedule), Vec::<u64>::new());
        assert_eq!(observe_after(ConsistencyModel::Commit, &schedule), Vec::<u64>::new());

        // Settlement before the read: session now sees it, commit still
        // does not — flush is its only publication point.
        let schedule = ["write", "settle", "read"];
        assert_eq!(observe_after(ConsistencyModel::Session, &schedule), vec![0]);
        assert_eq!(observe_after(ConsistencyModel::Commit, &schedule), Vec::<u64>::new());

        // Flush publishes under every model.
        let schedule = ["write", "flush", "read"];
        for model in [
            ConsistencyModel::Strong,
            ConsistencyModel::Session,
            ConsistencyModel::Commit,
        ] {
            assert_eq!(observe_after(model, &schedule), vec![0], "{model:?}");
        }
    }
}

/// The same three-way separation without the explorer (tier-1 path):
/// one sequential history, three models, three different answers at
/// each boundary.
#[test]
fn publication_boundaries_separate_the_models_sequentially() {
    for model in [
        ConsistencyModel::Strong,
        ConsistencyModel::Session,
        ConsistencyModel::Commit,
    ] {
        let (c, ds) = fixture(model);
        assert_eq!(c.consistency_model(), model);
        c.write_selection(ds, &chunk_sel(0), &chunk_payload(0))
            .expect("write");

        // The working-state read is visibility-exempt: it always sees
        // the writer's own data (read-your-writes within the handle).
        assert_eq!(
            c.read_selection(ds, &chunk_sel(0)).expect("working read"),
            chunk_payload(0),
            "[{model:?}] working reads are not deferred"
        );

        let after_write = observed_chunks(&c, ds).expect("read");
        c.publish_settled();
        let after_settle = observed_chunks(&c, ds).expect("read");
        c.flush().expect("flush");
        let after_flush = observed_chunks(&c, ds).expect("read");

        let visible = |v: &Vec<u64>| v == &vec![0];
        match model {
            ConsistencyModel::Strong => {
                assert!(visible(&after_write), "strong publishes at mutation");
            }
            ConsistencyModel::Session => {
                assert!(after_write.is_empty(), "session defers past mutation");
                assert!(visible(&after_settle), "session publishes at settlement");
            }
            ConsistencyModel::Commit => {
                assert!(after_write.is_empty(), "commit defers past mutation");
                assert!(after_settle.is_empty(), "commit defers past settlement");
            }
        }
        assert!(visible(&after_flush), "[{model:?}] flush publishes everywhere");
    }
}

/// `AsyncVol` threads the model end to end: under session consistency a
/// ring/staged write becomes visible to published readers exactly at
/// request settlement (`wait`), not when the background thread happens
/// to finish.
#[test]
fn asyncvol_settlement_is_the_session_publication_boundary() {
    use apio::asyncvol::AsyncVol;
    use apio::h5lite::Vol;

    let (c, ds) = fixture(ConsistencyModel::Session);
    let vol = AsyncVol::builder().streams(1).build();
    let req = vol
        .dataset_write(&c, ds, &chunk_sel(0), &chunk_payload(0))
        .expect("issue");
    // However the background thread races, publication cannot happen
    // before settlement under session.
    vol.wait(req).expect("settle");
    assert_eq!(
        observed_chunks(&c, ds).expect("read"),
        vec![0],
        "settlement must publish the settled write"
    );

    // Second write: visible to working reads once settled, but
    // `wait_all` is also a settlement point and must publish too.
    let _req = vol
        .dataset_write(&c, ds, &chunk_sel(1), &chunk_payload(1))
        .expect("issue");
    vol.wait_all().expect("settle all");
    assert_eq!(
        observed_chunks(&c, ds).expect("read"),
        vec![0, 1],
        "wait_all must publish every settled write"
    );
}

/// Under commit consistency the connector's settlement is *not* a
/// publication point: after `wait` the data is durable in the working
/// state (readable via `read_selection`) yet published readers still
/// see the old generation until a flush.
#[test]
fn asyncvol_commit_model_defers_publication_to_flush() {
    use apio::asyncvol::AsyncVol;
    use apio::h5lite::Vol;

    let (c, ds) = fixture(ConsistencyModel::Commit);
    let vol = AsyncVol::builder().streams(1).build();
    let req = vol
        .dataset_write(&c, ds, &chunk_sel(0), &chunk_payload(0))
        .expect("issue");
    vol.wait(req).expect("settle");
    assert_eq!(
        c.read_selection(ds, &chunk_sel(0)).expect("working read"),
        chunk_payload(0),
        "the settled write is in the working state"
    );
    assert_eq!(
        observed_chunks(&c, ds).expect("read"),
        Vec::<u64>::new(),
        "commit defers published visibility past settlement"
    );
    c.flush().expect("flush");
    assert_eq!(
        observed_chunks(&c, ds).expect("read"),
        vec![0],
        "flush publishes under commit"
    );
}

/// A captured [`MetaSnapshot`] is a stable point-in-time view: writers
/// mutating the same dataset afterwards never change what the snapshot
/// resolves, and reading through it takes zero metadata-lock
/// acquisitions.
#[test]
fn snapshot_reads_are_immutable_and_lock_free() {
    let (c, ds) = fixture(ConsistencyModel::Strong);
    c.write_selection(ds, &chunk_sel(0), &chunk_payload(0))
        .expect("write");
    let snap = c.snapshot();
    let gen_before = snap.dataset_generation(ds).expect("captured");

    // Overwrite chunk 0 and extend with a fresh chunk after capture.
    c.write_selection(ds, &chunk_sel(0), &to_bytes(&vec![99.0f32; CHUNK as usize]))
        .expect("overwrite");
    c.write_selection(ds, &chunk_sel(1), &chunk_payload(1))
        .expect("write new chunk");

    let stats_before = c.meta_lock_stats();
    let through_snap = c
        .read_snapshot(&snap, ds, &chunk_sel(0))
        .expect("snapshot read");
    let stats_after = c.meta_lock_stats();
    assert_eq!(
        stats_after.total(),
        stats_before.total(),
        "snapshot reads must take zero metadata-lock acquisitions"
    );

    // The snapshot still resolves the *old* address map: same chunk
    // extent, so the overwrite is visible through it (addresses are
    // stable, content is the device's)…
    assert_eq!(
        through_snap,
        to_bytes(&vec![99.0f32; CHUNK as usize]),
        "chunk 0 resolves to the same extent"
    );
    // …but the chunk allocated after capture does not exist in the
    // snapshot: it reads as fill, and the generation stamp is unchanged.
    assert_eq!(
        c.read_snapshot(&snap, ds, &chunk_sel(1)).expect("read"),
        vec![0u8; (CHUNK * 4) as usize],
        "post-capture allocations are invisible to the snapshot"
    );
    assert_eq!(
        snap.dataset_generation(ds).expect("still captured"),
        gen_before,
        "a captured snapshot never changes generation"
    );
    assert!(c.snapshot().dataset_generation(ds).expect("fresh") > gen_before);
}

/// The model survives reopen as a per-session property: the same file
/// opened strong and commit behaves per-open, and the on-disk format is
/// unchanged by the sharded plane.
#[test]
fn model_is_a_session_property_over_one_on_disk_format() {
    let backend = {
        let (c, ds) = fixture(ConsistencyModel::Strong);
        c.write_selection(ds, &chunk_sel(0), &chunk_payload(0))
            .expect("write");
        c.flush().expect("flush");
        c.backend()
    };

    let strong = Container::open(backend.clone()).expect("open strong");
    let ds = strong.lookup(ROOT_ID, "d").expect("lookup");
    assert_eq!(strong.consistency_model(), ConsistencyModel::Strong);
    assert_eq!(observed_chunks(&strong, ds).expect("read"), vec![0]);
    strong
        .write_selection(ds, &chunk_sel(1), &chunk_payload(1))
        .expect("write");
    assert_eq!(
        observed_chunks(&strong, ds).expect("read"),
        vec![0, 1],
        "strong session publishes at mutation"
    );
    drop(strong);

    let commit = Container::open_with(backend, ConsistencyModel::Commit).expect("open commit");
    let ds = commit.lookup(ROOT_ID, "d").expect("lookup");
    assert_eq!(commit.consistency_model(), ConsistencyModel::Commit);
    // Flushed state is the published baseline at open.
    assert_eq!(observed_chunks(&commit, ds).expect("read"), vec![0, 1]);
    commit
        .write_selection(ds, &chunk_sel(2), &chunk_payload(2))
        .expect("write");
    assert_eq!(
        observed_chunks(&commit, ds).expect("read"),
        vec![0, 1],
        "commit session defers the new chunk until flush"
    );
    commit.flush().expect("flush");
    assert_eq!(observed_chunks(&commit, ds).expect("read"), vec![0, 1, 2]);
}
