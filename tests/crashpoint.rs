//! Whole-stack crash-point enumeration and integrity acceptance tests
//! (ISSUE 7).
//!
//! The first scenario puts the metadata plane, the data plane, and the
//! staging WAL behind one shared [`CrashClock`]: the sweep cuts
//! persistence after the k-th mutation of the *combined* device order,
//! so the enumerated crash instants include the middle of the setup
//! flush, the gap between a WAL append and its applied flag, and the
//! container write itself. Companion scenarios pin the integrity layer
//! point-blank: every seeded bit-flip must surface as a checksum error
//! on the read that saw it, and a scrub must rebuild a silently
//! corrupted extent byte-perfect from the staging WAL.

use std::sync::Arc;

use apio::asyncvol::{AsyncVol, BreakerConfig, RetryPolicy};
use apio::crashpoint::{sweep, sweep_torn, CrashBackend};
use apio::h5lite::{
    container::ROOT_ID, datatype::to_bytes, Container, Dataspace, Datatype, FaultInjector,
    FaultKind, FaultOp, FaultPlan, H5Error, Hyperslab, Layout, MemBackend, Selection,
    StorageBackend, Vol,
};

const PROPS: usize = 2; // datasets
const STEPS: u32 = 2; // slab writes per dataset
const SLAB: u64 = 16; // elements per slab write
const N: u64 = STEPS as u64 * SLAB; // elements per dataset

fn slab_values(step: u32, prop: usize) -> Vec<f32> {
    (0..SLAB)
        .map(|i| (step as u64 * SLAB + i) as f32 + prop as f32 * 1000.0)
        .collect()
}

fn create_datasets(c: &Container) -> Vec<apio::h5lite::ObjectId> {
    (0..PROPS)
        .map(|p| {
            c.create_dataset(
                ROOT_ID,
                &format!("prop{p}"),
                Datatype::F32,
                &Dataspace::d1(N),
                Layout::Contiguous,
            )
            .expect("create dataset")
        })
        .collect()
}

#[test]
fn whole_stack_crash_enumeration_holds_every_durability_invariant() {
    let report = sweep(|clock| {
        // One clock across both devices: the cut lands at a single point
        // of the combined mutation order, exactly like a node power cut.
        let c_inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let wal_inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let c_dev: Arc<dyn StorageBackend> =
            Arc::new(CrashBackend::new(c_inner.clone(), clock.clone()));
        let wal_dev: Arc<dyn StorageBackend> =
            Arc::new(CrashBackend::new(wal_inner.clone(), clock.clone()));

        // Setup itself is inside the crash window: the cut may land in
        // the middle of the metadata flush.
        let c = Arc::new(Container::create(c_dev));
        let ids = create_datasets(&c);
        let setup_ok = c.flush().is_ok();

        let mut acked = vec![false; STEPS as usize * PROPS];
        if setup_ok {
            let vol = AsyncVol::builder()
                .streams(1)
                .stage_to_device(wal_dev)
                .retry(RetryPolicy::none())
                // Durability, not degradation: a dead device must keep
                // refusing issues, not reroute them around the log.
                .breaker(BreakerConfig {
                    failure_threshold: u32::MAX,
                    probe_after: 4,
                })
                .build();
            for step in 0..STEPS {
                for (p, &ds) in ids.iter().enumerate() {
                    let sel = Selection::Slab(Hyperslab::range1(step as u64 * SLAB, SLAB));
                    let bytes = to_bytes(&slab_values(step, p));
                    acked[step as usize * PROPS + p] =
                        vol.dataset_write(&c, ds, &sel, &bytes).is_ok();
                }
            }
            let _ = vol.wait_all(); // post-cut container writes fail: benign
            drop(vol); // crash
        }
        drop(c);

        // Reboot from what actually persisted.
        let c2 = match Container::open(c_inner) {
            Ok(c2) => Arc::new(c2),
            Err(e) => {
                // Legal only while the metadata plane never became
                // durable — and then nothing was acknowledged either.
                if setup_ok {
                    return Err(format!("flushed metadata plane unreadable: {e}"));
                }
                return Ok(());
            }
        };
        let vol2 = AsyncVol::builder().stage_to_device(wal_inner).build();
        let rec = vol2
            .recover_and_scrub(&c2)
            .map_err(|e| format!("recovery: {e}"))?;
        if rec.scrub_repaired < rec.scrub_corrupt {
            return Err(format!("recovery scrub left corruption behind: {rec:?}"));
        }

        // Every acknowledged write survives the cut; a refused issue was
        // never dispatched, so its slab must still be zeros.
        for step in 0..STEPS {
            for p in 0..PROPS {
                let ds = c2
                    .lookup(ROOT_ID, &format!("prop{p}"))
                    .map_err(|e| format!("metadata plane lost prop{p}: {e}"))?;
                let sel = Selection::Slab(Hyperslab::range1(step as u64 * SLAB, SLAB));
                let got = c2
                    .read_selection(ds, &sel)
                    .map_err(|e| format!("read prop{p} step {step}: {e}"))?;
                let was_acked = acked[step as usize * PROPS + p];
                let want = if was_acked {
                    to_bytes(&slab_values(step, p))
                } else {
                    vec![0u8; (SLAB * 4) as usize]
                };
                if got != want {
                    return Err(format!(
                        "prop{p} step {step}: acked={was_acked} but recovered bytes differ"
                    ));
                }
            }
        }
        Ok(())
    });

    assert!(report.ok(), "{}", report.failure.expect("failure"));
    // The combined order spans the setup flush, one append and one
    // container write per issued slab, and the applied flags.
    let frames = STEPS as u64 * PROPS as u64;
    assert!(
        report.boundaries > frames,
        "{} boundaries cannot cover setup + {frames} writes",
        report.boundaries
    );
    assert_eq!(report.runs, report.boundaries + 2);
}

/// ISSUE 9 satellite: cross-shard generation atomicity under torn
/// boundary writes. The metadata plane is sharded per dataset, but a
/// flush commits ONE superblock generation covering every shard — so a
/// crash anywhere inside the commit (including a write chopped
/// mid-sector) must reopen as either the whole old generation or the
/// whole new one, never a shard-wise mix. The workload stamps the two
/// generations so a mix is detectable: generation A creates four
/// chunked datasets (ids landing in four different shards) and fills
/// chunk 0; generation B extends all four (a per-shard chunk-map
/// mutation), fills chunk 1, and creates four more datasets. Any
/// reopen where *some* shards show B-state and others A-state fails.
#[test]
fn torn_crash_between_shard_commits_never_reopens_a_mixed_generation() {
    const W: usize = 4; // datasets per wave, ids 2..=5 → shards 2..=5
    const CHUNK: u64 = 16;

    fn wave_values(wave: u64, i: usize) -> Vec<f32> {
        (0..CHUNK)
            .map(|e| (wave * 10_000 + i as u64 * 100 + e) as f32)
            .collect()
    }

    // Clean cut (prefix 0) plus two torn prefixes: one byte (tears
    // everything) and 33 bytes (tears a superblock slot mid-payload and
    // a metadata extent mid-record).
    let report = sweep_torn(&[0, 1, 33], |clock| {
        let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let dev: Arc<dyn StorageBackend> = Arc::new(CrashBackend::new(inner.clone(), clock.clone()));
        let c = Container::create(dev);

        // Generation A.
        let mut ids = Vec::new();
        for i in 0..W {
            let Ok(id) = c.create_dataset(
                ROOT_ID,
                &format!("a{i}"),
                Datatype::F32,
                &Dataspace::d1(CHUNK),
                Layout::Chunked1D { chunk_elems: CHUNK },
            ) else {
                break;
            };
            ids.push(id);
        }
        let mut a_ok = ids.len() == W;
        for (i, &id) in ids.iter().enumerate() {
            let sel = Selection::Slab(Hyperslab::range1(0, CHUNK));
            if c.write_selection(id, &sel, &to_bytes(&wave_values(1, i))).is_err() {
                a_ok = false;
            }
        }
        let committed_a = a_ok && c.flush().is_ok();

        // Generation B: per-shard mutations plus new objects.
        if committed_a {
            let mut b_ok = true;
            for (i, &id) in ids.iter().enumerate() {
                if c.extend_dataset(id, 2 * CHUNK).is_err() {
                    b_ok = false;
                    break;
                }
                let sel = Selection::Slab(Hyperslab::range1(CHUNK, CHUNK));
                if c.write_selection(id, &sel, &to_bytes(&wave_values(2, i))).is_err() {
                    b_ok = false;
                    break;
                }
            }
            for i in 0..W {
                if !b_ok {
                    break;
                }
                b_ok = c
                    .create_dataset(
                        ROOT_ID,
                        &format!("b{i}"),
                        Datatype::F32,
                        &Dataspace::d1(CHUNK),
                        Layout::Chunked1D { chunk_elems: CHUNK },
                    )
                    .and_then(|id| {
                        let sel = Selection::Slab(Hyperslab::range1(0, CHUNK));
                        c.write_selection(id, &sel, &to_bytes(&wave_values(3, i)))
                    })
                    .is_ok();
            }
            if b_ok {
                let _ = c.flush(); // the cut may land anywhere inside
            }
        }
        drop(c); // crash (Drop's best-effort flush is refused past the cut)

        // Reboot from what persisted.
        let c2 = match Container::open(inner) {
            Ok(c2) => c2,
            Err(e) => {
                if committed_a {
                    return Err(format!("generation A was acked but is unreadable: {e}"));
                }
                return Ok(()); // nothing ever committed: legal
            }
        };
        // Which generation is visible? Decide once, then hold EVERY
        // shard to it.
        let have_b = c2.lookup(ROOT_ID, "b0").is_ok();
        for i in 0..W {
            let a_id = c2
                .lookup(ROOT_ID, &format!("a{i}"))
                .map_err(|e| format!("a{i} missing from the visible generation: {e}"))?;
            let len = c2
                .dataset_info(a_id)
                .map_err(|e| format!("a{i} info: {e}"))?
                .space
                .npoints();
            let want_len = if have_b { 2 * CHUNK } else { CHUNK };
            if len != want_len {
                return Err(format!(
                    "mixed generation: b-wave visible={have_b} but a{i} has {len} elements \
                     (want {want_len}) — shard {i} reopened at a different generation"
                ));
            }
            if c2.lookup(ROOT_ID, &format!("b{i}")).is_ok() != have_b {
                return Err(format!(
                    "mixed generation: b0 visible={have_b} but b{i} visibility differs"
                ));
            }
            // A visible generation implies its data mutations were all
            // admitted before the commit — verify bytes, checksums on.
            let sel0 = Selection::Slab(Hyperslab::range1(0, CHUNK));
            let got = c2
                .read_selection(a_id, &sel0)
                .map_err(|e| format!("a{i} chunk 0: {e}"))?;
            if got != to_bytes(&wave_values(1, i)) {
                return Err(format!("a{i} chunk 0 bytes differ after reopen"));
            }
            if have_b {
                let sel1 = Selection::Slab(Hyperslab::range1(CHUNK, CHUNK));
                let got = c2
                    .read_selection(a_id, &sel1)
                    .map_err(|e| format!("a{i} chunk 1: {e}"))?;
                if got != to_bytes(&wave_values(2, i)) {
                    return Err(format!("a{i} chunk 1 bytes differ after reopen"));
                }
                let b_id = c2.lookup(ROOT_ID, &format!("b{i}")).map_err(|e| e.to_string())?;
                let got = c2
                    .read_selection(b_id, &sel0)
                    .map_err(|e| format!("b{i}: {e}"))?;
                if got != to_bytes(&wave_values(3, i)) {
                    return Err(format!("b{i} bytes differ after reopen"));
                }
            }
        }
        Ok(())
    });

    assert!(report.ok(), "{}", report.failure.expect("failure"));
    // Two waves of chunk fills + data writes + two flush commits: the
    // boundary count must cover both generations' mutation trains.
    assert!(
        report.boundaries > 2 * W as u64,
        "{} boundaries cannot span two commit waves",
        report.boundaries
    );
    assert_eq!(report.runs, 1 + 3 * report.boundaries);
}

#[test]
fn every_injected_bit_flip_is_detected_on_verified_reads() {
    // Silent corruption on half the reads, seeded: the device returns a
    // payload with exactly one bit flipped and reports success.
    let plan = FaultPlan::new(0x1B17F11B).random(FaultOp::Read, 0.5, FaultKind::Corrupt);
    let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let injector = Arc::new(FaultInjector::new(inner, plan));
    injector.set_armed(false); // setup is not under test

    let c = Container::create(injector.clone());
    let ds = c
        .create_dataset(
            ROOT_ID,
            "d",
            Datatype::F32,
            &Dataspace::d1(N),
            Layout::Contiguous,
        )
        .expect("create dataset");
    let vals: Vec<f32> = (0..N).map(|i| i as f32).collect();
    let bytes = to_bytes(&vals);
    c.write_selection(ds, &Selection::All, &bytes).expect("write");
    c.flush().expect("flush records the extent checksum");

    // A clean checksummed extent is verified whole on every planned
    // read, so each call is exactly one device read: the injection and
    // detection counts must match one-for-one.
    injector.set_armed(true);
    let mut detected = 0u64;
    for _ in 0..64 {
        match c.read_selection(ds, &Selection::All) {
            Ok(got) => assert_eq!(got, bytes, "a clean read must return the true bytes"),
            Err(H5Error::Corrupt(_)) => detected += 1,
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }
    injector.set_armed(false);
    assert!(injector.injected() > 0, "the plan must actually fire");
    assert_eq!(
        detected,
        injector.injected(),
        "every injected bit-flip must surface as a checksum failure"
    );
    assert_eq!(c.integrity_stats().checksum_failures, detected);
}

#[test]
fn scrub_rebuilds_a_corrupt_extent_from_the_staging_wal() {
    let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let c = Arc::new(Container::create(inner.clone()));
    let ds = c
        .create_dataset(
            ROOT_ID,
            "d",
            Datatype::F32,
            &Dataspace::d1(N),
            Layout::Contiguous,
        )
        .expect("create dataset");
    c.flush().expect("metadata durable");

    let wal: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let vol = AsyncVol::builder()
        .streams(1)
        .stage_to_device(wal.clone())
        .build();
    let vals: Vec<f32> = (0..N).map(|i| (i as f32).sin()).collect();
    let bytes = to_bytes(&vals);
    let req = vol.dataset_write(&c, ds, &Selection::All, &bytes).expect("issue");
    vol.wait(req).expect("land");
    c.flush().expect("checksum the extent at rest");
    drop(vol);

    // Silent media corruption: one byte of the data extent flips at
    // rest. A fresh container's first allocation sits immediately after
    // the superblock area.
    let at = apio::h5lite::superblock::SUPERBLOCK_AREA;
    let mut b = [0u8; 1];
    inner.read_at(at, &mut b).expect("read the victim byte");
    inner.write_at(at, &[b[0] ^ 0x01]).expect("flip it");

    // recover + scrub finds the mismatch and rebuilds the extent from
    // the WAL's durable copy.
    let vol2 = AsyncVol::builder().stage_to_device(wal).build();
    let rec = vol2.recover_and_scrub(&c).expect("recover and scrub");
    assert_eq!(rec.scrub_corrupt, 1, "the flipped extent must be found");
    assert_eq!(rec.scrub_repaired, 1, "and repaired from the WAL: {rec:?}");
    assert_eq!(
        c.read_selection(ds, &Selection::All).expect("read back"),
        bytes,
        "the repaired extent is byte-identical"
    );

    // At rest again: a fresh flush + scrub comes back clean.
    c.flush().expect("post-repair flush");
    let scrub = c.scrub().expect("post-repair scrub");
    assert_eq!(scrub.corrupt, 0, "{scrub:?}");
    assert!(scrub.checked >= 1);
}
