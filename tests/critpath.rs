//! Cross-rank critical-path acceptance tests (DESIGN.md §16).
//!
//! A seeded 16-rank checkpoint run with one rank's compute slowed 4×
//! must be attributed correctly: the slowed rank is named the straggler
//! in every post-warmup epoch, the per-rank decomposition tiles each
//! epoch's wall time within 1%, and on unperturbed configurations the
//! trace-observed overlap efficiency lands within 10% of the Eq. 2
//! prediction. Both executors (closed-form and discrete-event) must
//! agree on the attribution, and jitter at any seed must never steal
//! the straggler's title.

use std::sync::Arc;

use apio::mpisim::{
    predicted_overlap_efficiency, run_analytic, run_des, straggler_report, trace_rank_streams,
    Job, RunConfig, Workload,
};
use apio::platform::summit;
use apio::platform::units::MIB;
use apio::trace::{critpath, export, Tracer, VirtualClock};

const RANKS: u32 = 16;
const EPOCHS: u32 = 5;
const SLOWED: u32 = 7;
const FACTOR: f64 = 4.0;

fn straggler_workload() -> Workload {
    Workload::checkpoint(RANKS, 32 * MIB, EPOCHS, 5.0).with_straggler(SLOWED, FACTOR)
}

/// Run `w` under `cfg` with the given executor, re-enact the per-rank
/// streams, and return the critical-path analysis.
fn analyze_with(
    exec: fn(&Job, &Workload, &RunConfig) -> apio::mpisim::RunResult,
    w: &Workload,
    cfg: &RunConfig,
) -> critpath::CritPathReport {
    let job = Job::new(summit(), w.ranks);
    let result = exec(&job, w, cfg);
    let clock = Arc::new(VirtualClock::new(0));
    let tracer = Tracer::with_clock(clock.clone());
    trace_rank_streams(0, &job, w, cfg, &result, &tracer, &clock);
    critpath::analyze_job(&tracer.sink(), 0)
}

#[test]
fn slowed_rank_is_named_by_both_executors() {
    let w = straggler_workload();
    for exec in [
        run_analytic as fn(&Job, &Workload, &RunConfig) -> apio::mpisim::RunResult,
        run_des,
    ] {
        for cfg in [RunConfig::async_io(), RunConfig::sync()] {
            let report = analyze_with(exec, &w, &cfg);
            assert_eq!(report.ranks, RANKS);
            assert_eq!(report.epochs.len(), EPOCHS as usize);
            // Warmup epoch 0 excluded: its wait/compute split can be
            // dominated by t_init placement, not by rank skew.
            for e in report.epochs.iter().filter(|e| e.epoch >= 1) {
                assert_eq!(
                    e.straggler, SLOWED,
                    "epoch {}: misattributed straggler",
                    e.epoch
                );
                assert!(e.skew_ratio() > 3.0, "4x skew must be visible");
            }
        }
    }
}

#[test]
fn attribution_tiles_every_epoch_wall_within_one_percent() {
    let w = straggler_workload();
    let report = analyze_with(run_analytic, &w, &RunConfig::async_io());
    for e in &report.epochs {
        let wall = e.wall_nanos();
        assert!(wall > 0);
        for slice in &e.ranks {
            let total =
                slice.compute_nanos + slice.write_nanos + slice.meta_nanos + slice.wait_nanos;
            let err = (total as f64 - wall as f64).abs() / wall as f64;
            assert!(
                err < 0.01,
                "epoch {} rank {}: decomposition off by {err}",
                e.epoch,
                slice.rank
            );
        }
    }
}

#[test]
fn jitter_never_steals_the_stragglers_title() {
    // Property: bounded jitter (< factor - 1 relative) at any seed must
    // not change which rank dominates the epoch. Four seeds, both
    // executors' shared compute model.
    for seed in [1u64, 7, 42, 12345] {
        let w = straggler_workload().with_jitter(0.5, seed);
        let report = analyze_with(run_analytic, &w, &RunConfig::async_io());
        for e in report.epochs.iter().filter(|e| e.epoch >= 1) {
            assert_eq!(
                e.straggler, SLOWED,
                "seed {seed} epoch {}: jitter stole the title",
                e.epoch
            );
        }
    }
}

#[test]
fn observed_efficiency_tracks_eq2_on_unperturbed_configs() {
    // Compute-dominated async checkpointing: Eq. 2 predicts full
    // overlap; the trace-side observation must agree within 10%.
    let job = Job::new(summit(), 96);
    let w = Workload::checkpoint(96, 32 * MIB, EPOCHS, 30.0);
    let cfg = RunConfig::async_io();
    let (report, _, _) = straggler_report(&job, &w, &cfg, 1);
    let predicted = predicted_overlap_efficiency(&job, &w, &cfg);
    assert_eq!(report.predicted_overlap_efficiency, predicted);
    assert!(
        (report.observed_overlap_efficiency - predicted).abs() <= 0.10 * predicted.max(1e-9),
        "observed {} vs predicted {predicted}",
        report.observed_overlap_efficiency
    );
}

#[test]
fn sync_runs_have_no_overlap_by_construction() {
    let job = Job::new(summit(), RANKS);
    let w = Workload::checkpoint(RANKS, 32 * MIB, 3, 5.0);
    let (report, _, _) = straggler_report(&job, &w, &RunConfig::sync(), 0);
    assert_eq!(report.predicted_overlap_efficiency, 0.0);
    assert_eq!(report.observed_overlap_efficiency, 0.0);
}

#[test]
fn rank_streams_export_to_distinct_chrome_rows() {
    let job = Job::new(summit(), RANKS);
    let w = straggler_workload();
    let (_, sink, _) = straggler_report(&job, &w, &RunConfig::async_io(), 1);
    let chrome = export::chrome_json(sink.records());
    // Every rank lands on its own viewer row under the job's pid; no
    // record falls back to the untagged pid 1.
    for rank in 0..RANKS {
        assert!(
            chrome.contains(&format!("\"pid\":2,\"tid\":{rank}")),
            "rank {rank} missing its viewer row"
        );
    }
    assert!(!chrome.contains("\"pid\":1,"), "untagged records leaked");
}
