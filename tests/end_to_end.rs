//! Cross-crate integration: the real engine, the connector, the kernels,
//! and the model working together.

use std::sync::Arc;

use apio::asyncvol::AsyncVol;
use apio::h5lite::{Container, Dataspace, File, ThrottledBackend};
use apio::kernels::vpic::{self, VpicConfig};
use apio::kernels::{bdcats, KernelMode};
use apio::model::history::{Direction, IoMode};
use apio::model::{AdaptiveRuntime, Observation};

fn small_cfg() -> VpicConfig {
    VpicConfig {
        ranks: 4,
        particles_per_rank: 1 << 12,
        timesteps: 3,
        compute_secs: 0.01,
    }
}

#[test]
fn write_with_async_vol_read_with_native_vol() {
    // Data written through the async connector must be readable through
    // the native one (they share the container format).
    let cfg = small_cfg();
    let (_, file) = vpic::run_real_into(&cfg, KernelMode::Async).unwrap();
    vpic::verify(&file, &cfg).unwrap();
    // And the read kernel in sync mode sees it too.
    bdcats::run_real(&file, &cfg, KernelMode::Sync).unwrap();
}

#[test]
fn full_pipeline_write_then_clustered_read_with_prefetch() {
    let cfg = small_cfg();
    let (write_report, file) = vpic::run_real_into(&cfg, KernelMode::Async).unwrap();
    assert_eq!(write_report.phases.len(), 3);
    let read_report = bdcats::run_real(&file, &cfg, KernelMode::Async).unwrap();
    let stats = read_report.async_stats.unwrap();
    assert!(stats.prefetch_hits > 0, "later steps must hit the prefetch");
}

#[test]
fn real_measurements_feed_the_model() {
    // Run the real kernel at several scales, stream the actual measured
    // phases into the adaptive runtime, and get a usable fit out.
    let mut rt = AdaptiveRuntime::new();
    for ranks in [2u32, 4, 8] {
        let cfg = VpicConfig {
            ranks,
            particles_per_rank: 1 << 12,
            timesteps: 3,
            compute_secs: 0.0,
        };
        for mode in [KernelMode::Sync, KernelMode::Async] {
            let report = vpic::run_real_throttled(&cfg, mode, 300e6, 2e-4).unwrap();
            for phase in &report.phases {
                rt.observe(Observation::Compute { secs: 0.05 });
                let obs = match mode {
                    KernelMode::Sync => Observation::Transfer {
                        mode: IoMode::Sync,
                        direction: Direction::Write,
                        total_bytes: report.bytes_per_epoch as f64,
                        ranks,
                        secs: phase.visible_io_secs,
                    },
                    KernelMode::Async => Observation::SnapshotOverhead {
                        direction: Direction::Write,
                        total_bytes: report.bytes_per_epoch as f64,
                        ranks,
                        secs: phase.visible_io_secs,
                    },
                };
                rt.observe(obs);
            }
        }
    }
    let advice = rt
        .advise(Direction::Write, 8.0 * (1 << 17) as f64, 8)
        .expect("enough real history to fit");
    // The throttled storage is far slower than memcpy, and there is
    // compute to hide behind: async must win.
    assert_eq!(advice.mode, IoMode::Async);
    assert!(advice.t_sync.is_finite() && advice.t_async > 0.0);
}

#[test]
fn connector_observer_feeds_the_loop_automatically() {
    // Wire the asyncvol observer straight into an AdaptiveRuntime —
    // the Fig. 2 integration — and check transfers arrive.
    use std::sync::Mutex;
    let rt = Arc::new(Mutex::new(AdaptiveRuntime::new()));
    let rt2 = rt.clone();
    let ranks = 4u32;
    let vol = Arc::new(AsyncVol::new());
    vol.set_observer(Arc::new(move |rec| {
        let mut rt = rt2.lock().unwrap();
        if rec.kind == apio::asyncvol::OpKind::Write {
            rt.observe(Observation::SnapshotOverhead {
                direction: Direction::Write,
                total_bytes: rec.bytes as f64,
                ranks,
                secs: rec.overhead_secs,
            });
            rt.observe(Observation::Transfer {
                mode: IoMode::Sync, // background write == what sync would pay
                direction: Direction::Write,
                total_bytes: rec.bytes as f64,
                ranks,
                secs: rec.io_secs,
            });
        }
    }));

    let backend = Arc::new(ThrottledBackend::in_memory(200e6, 1e-4));
    let file = File::from_parts(Arc::new(Container::create(backend)), vol);
    let ds = file
        .root()
        .create_dataset::<f64>("x", &Dataspace::d1(1 << 16))
        .unwrap();
    let data = vec![1.0f64; 1 << 16];
    for _ in 0..3 {
        let _ = ds.write_async(&data).unwrap();
    }
    file.wait_all().unwrap();
    let history_len = rt.lock().unwrap().history().len();
    assert_eq!(history_len, 6, "3 writes × (overhead + background) records");
}

#[test]
fn persistence_across_connectors_and_processes() {
    let dir = std::env::temp_dir().join(format!("apio-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.h5l");
    let data: Vec<f64> = (0..10_000).map(|i| (i as f64).cos()).collect();
    {
        let container = Arc::new(Container::create_file(&path).unwrap());
        let vol = Arc::new(AsyncVol::builder().streams(2).build());
        let file = File::from_parts(container, vol);
        let run = file.root().create_group("run").unwrap();
        let ds = run
            .create_dataset::<f64>("field", &Dataspace::d1(10_000))
            .unwrap();
        let _ = ds.write_async(&data).unwrap();
        ds.set_attr("iteration", &[7u64]).unwrap();
        file.flush().unwrap();
    }
    // Fresh open, plain native connector (a different "process").
    let file = File::open(&path).unwrap();
    let ds = file.root().open_dataset("run/field").unwrap();
    assert_eq!(ds.read::<f64>().unwrap(), data);
    assert_eq!(ds.get_attr::<u64>("iteration").unwrap(), vec![7]);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn simulator_and_model_agree_on_epoch_structure() {
    // Eq. 2a/2b applied to the simulator's own phase measurements must
    // reconstruct the simulated wall time of the ideal-overlap case.
    use apio::mpisim::{run, Job, RunConfig};
    use apio::platform::summit;

    let sys = summit();
    let ranks = 768;
    let w = vpic::workload(ranks, 5, 30.0);
    let job = Job::new(sys, ranks);

    let sync = run(&job, &w, &RunConfig::sync());
    let t_io = sync.phases[0].visible_io_secs;
    let asy = run(&job, &w, &RunConfig::async_io());
    let t_ov = asy.phases[0].overhead_secs;

    let p = apio::model::epoch::EpochParams::new(w.compute_secs, t_io, t_ov);
    let predicted_sync = apio::model::epoch::app_time(
        w.t_init,
        std::iter::repeat_n(p.sync_time(), w.epochs as usize),
        w.t_term,
    );
    assert!(
        (predicted_sync / sync.wall_secs - 1.0).abs() < 1e-9,
        "Eq. 1+2a reconstructs the sync run exactly"
    );
    // Ideal overlap: async wall = init + epochs×(comp+ov) + final drain.
    let predicted_async_lower = apio::model::epoch::app_time(
        w.t_init,
        std::iter::repeat_n(p.async_time(), w.epochs as usize),
        w.t_term,
    );
    assert!(
        asy.wall_secs >= predicted_async_lower - 1e-9,
        "Eq. 2b is a lower bound (it ignores the final drain)"
    );
    assert!(
        asy.wall_secs <= predicted_async_lower + t_io + 1e-9,
        "and the drain adds at most one background write"
    );
}
