//! Property-based tests over the core data structures and invariants.
//!
//! Randomized inputs come from a fixed-seed LCG (no external dependency),
//! so every run explores the same case set deterministically; failures
//! print the case index and inputs for replay.

use apio::asyncvol::{AsyncVol, BreakerConfig, RetryPolicy};
use apio::desim::{Engine, SharedResource, SimDuration};
use apio::h5lite::{
    container::ROOT_ID, Container, Dataspace, Datatype, FaultInjector, FaultKind, FaultOp,
    FaultPlan, File, Hyperslab, Layout, MemBackend, Selection, ThrottledBackend, Vol,
};
use apio::model::epoch::EpochParams;
use apio::model::regression::{Design, LinearFit};
use apio::trace::{DriftDirection, SeriesAggregator, SeriesConfig};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Deterministic 64-bit LCG (MMIX constants), upper bits as output.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform in `[lo, hi)`.
    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 31) as f64 / 2.0
    }

    /// Uniform float in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

const CASES: usize = 128;

/// Any valid hyperslab's runs are sorted, disjoint, in bounds, and
/// cover exactly `npoints` elements.
#[test]
fn hyperslab_runs_partition_the_selection() {
    let mut rng = Lcg::new(0x5AB1);
    for case in 0..CASES {
        let rank = rng.in_range(1, 4) as usize;
        let dims: Vec<u64> = (0..rank).map(|_| rng.in_range(1, 20)).collect();
        let space = Dataspace::new(&dims);
        let mut start = vec![0u64; rank];
        let mut count = vec![1u64; rank];
        let mut stride = vec![1u64; rank];
        for d in 0..rank {
            start[d] = rng.next() % dims[d];
            let room = dims[d] - start[d];
            stride[d] = 1 + rng.next() % 3;
            let max_count = room.div_ceil(stride[d]);
            count[d] = 1 + rng.next() % max_count;
        }
        let slab = Hyperslab::strided(&start, &count, &stride);
        let sel = Selection::Slab(slab);
        let runs = sel.runs(&space).expect("valid slab");
        let total: u64 = runs.iter().map(|&(_, l)| l).sum();
        assert_eq!(
            total,
            sel.npoints(&space),
            "case {case}: dims {dims:?} start {start:?} count {count:?} stride {stride:?}"
        );
        for w in runs.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "case {case}: sorted + disjoint");
        }
        if let Some(&(off, len)) = runs.last() {
            assert!(off + len <= space.npoints(), "case {case}: in bounds");
        }
    }
}

/// Writing a random hyperslab then reading it back returns the data;
/// elements outside the slab stay zero.
#[test]
fn slab_write_read_roundtrip() {
    let mut rng = Lcg::new(0x0C0FFEE);
    for case in 0..CASES {
        let n = rng.in_range(1, 200);
        let start_frac = rng.unit();
        let len_frac = rng.unit();
        let file = File::create_in_memory().expect("in-memory file");
        let ds = file
            .root()
            .create_dataset::<i64>("d", &Dataspace::d1(n))
            .expect("create");
        ds.write(&vec![0i64; n as usize]).expect("zero fill");
        let start = ((n - 1) as f64 * start_frac) as u64;
        let len = 1 + ((n - start - 1) as f64 * len_frac) as u64;
        let slab = Hyperslab::range1(start, len);
        let vals: Vec<i64> = (0..len as i64).map(|i| i + 1).collect();
        ds.write_slab(&slab, &vals).expect("slab write");
        let all = ds.read::<i64>().expect("read");
        for (i, &v) in all.iter().enumerate() {
            let i = i as u64;
            if i >= start && i < start + len {
                assert_eq!(v, (i - start) as i64 + 1, "case {case}: n {n} start {start} len {len}");
            } else {
                assert_eq!(v, 0, "case {case}: n {n} start {start} len {len}");
            }
        }
    }
}

/// Flow conservation on the processor-sharing resource: all bytes are
/// served, and total service time is at least total_bytes/capacity.
#[test]
fn resource_conserves_bytes() {
    let mut rng = Lcg::new(0xF10E5);
    for case in 0..CASES {
        let capacity = rng.f64_in(1.0, 1e6);
        let nflows = rng.in_range(1, 12) as usize;
        let sizes: Vec<f64> = (0..nflows).map(|_| rng.f64_in(0.0, 1e6)).collect();
        let mut sim = Engine::new();
        let res = SharedResource::new("r", capacity);
        let done = Rc::new(RefCell::new(0usize));
        for &bytes in &sizes {
            let d = done.clone();
            res.start_flow(&mut sim, bytes, None, move |_| {
                *d.borrow_mut() += 1;
            });
        }
        sim.run();
        assert_eq!(*done.borrow(), sizes.len(), "case {case}");
        let total: f64 = sizes.iter().sum();
        assert!(
            (res.bytes_served() - total).abs() <= 1e-6 * total.max(1.0),
            "case {case}: served {} vs {total}",
            res.bytes_served()
        );
        let ideal = total / capacity;
        let elapsed = sim.now().as_secs_f64();
        assert!(
            elapsed >= ideal - 1e-6,
            "case {case}: can't beat capacity: {elapsed} < {ideal}"
        );
    }
}

/// Eq. 2b invariants: async epoch time is monotone in each argument
/// and never beats `max(t_comp, t_io/2... )` — concretely, it is
/// bounded below by both `t_comp` and `t_io − t_comp`.
#[test]
fn epoch_equations_invariants() {
    let mut rng = Lcg::new(0xE90C);
    for case in 0..CASES {
        let comp = rng.f64_in(0.0, 100.0);
        let io = rng.f64_in(0.0, 100.0);
        let ov = rng.f64_in(0.0, 10.0);
        let p = EpochParams::new(comp, io, ov);
        assert!(p.async_time() >= comp, "case {case}: comp {comp} io {io} ov {ov}");
        assert!(p.async_time() >= io - comp, "case {case}");
        assert!(p.async_time() >= ov, "case {case}");
        assert!(p.sync_time() >= io.max(comp), "case {case}");
        // Removing overhead can only help.
        let p0 = EpochParams::new(comp, io, 0.0);
        assert!(p0.async_time() <= p.async_time(), "case {case}");
        // The slowdown characterization.
        let slow = p.async_time() >= p.sync_time();
        assert_eq!(slow, ov >= io.min(2.0 * comp), "case {case}: comp {comp} io {io} ov {ov}");
    }
}

/// OLS on exactly-linear data recovers predictions regardless of the
/// coefficient scales (well-conditioned, distinct features).
#[test]
fn regression_recovers_exact_linear_data() {
    let mut rng = Lcg::new(0x0152);
    for case in 0..CASES {
        let b0 = rng.f64_in(-100.0, 100.0);
        let b1 = rng.f64_in(-100.0, 100.0);
        let xs: Vec<Vec<f64>> = (1..25)
            .map(|i| vec![i as f64, ((i * i) % 23) as f64 + 0.5])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| b0 * x[0] + b1 * x[1]).collect();
        let fit = LinearFit::fit(Design::Linear, &xs, &ys).expect("fit");
        for (x, y) in xs.iter().zip(&ys) {
            let err = (fit.predict(x) - y).abs();
            assert!(
                err <= 1e-6 * y.abs().max(1.0),
                "case {case}: b0 {b0} b1 {b1} err {err}"
            );
        }
    }
}

/// A plan of purely retryable faults (transient, torn, delayed) is
/// invisible: the connector absorbs every fault through retry/backoff
/// and the container ends byte-identical to a shadow model of the
/// writes — on the write path, the read path, and the flush path.
#[test]
fn transient_fault_plans_preserve_dataset_contents() {
    let mut rng = Lcg::new(0x7A51E27);
    for case in 0..12 {
        let n = rng.in_range(64, 512);
        let nwrites = rng.in_range(4, 16);
        let write_rate = rng.f64_in(0.02, 0.2);
        let read_rate = rng.f64_in(0.02, 0.2);
        let torn_rate = rng.f64_in(0.01, 0.1);
        let seed = rng.next();

        let plan = FaultPlan::new(seed)
            .random(FaultOp::Write, torn_rate, FaultKind::Torn { fraction: 0.5 })
            .random(FaultOp::Write, write_rate, FaultKind::Transient)
            .random(FaultOp::Read, read_rate, FaultKind::Transient)
            .random(FaultOp::Flush, 0.5, FaultKind::Transient)
            .random(FaultOp::Write, 0.05, FaultKind::Delay { secs: 1e-5 });
        let injector = Arc::new(FaultInjector::new(Arc::new(MemBackend::new()), plan));
        injector.set_armed(false);

        let c = Arc::new(Container::create(injector.clone()));
        let ds = c
            .create_dataset(
                ROOT_ID,
                "d",
                Datatype::F64,
                &Dataspace::d1(n),
                Layout::Contiguous,
            )
            .expect("create");
        c.flush().expect("metadata flush");

        let vol = AsyncVol::builder()
            .streams(1)
            .retry(RetryPolicy {
                max_attempts: 8,
                ..RetryPolicy::default()
            })
            .build();
        injector.set_armed(true);

        // Shadow model: last-writer-wins over random overlapping slabs.
        let mut shadow = vec![0.0f64; n as usize];
        let zeros = apio::h5lite::datatype::to_bytes(&shadow);
        let _ = vol
            .dataset_write(&c, ds, &Selection::All, &zeros)
            .expect("zero fill issue");
        for w in 0..nwrites {
            let start = rng.next() % n;
            let len = 1 + rng.next() % (n - start);
            let vals: Vec<f64> = (0..len)
                .map(|j| (case as u64 * 1000 + w * 10) as f64 + j as f64)
                .collect();
            for (j, v) in vals.iter().enumerate() {
                shadow[(start + j as u64) as usize] = *v;
            }
            let sel = Selection::Slab(Hyperslab::range1(start, len));
            let bytes = apio::h5lite::datatype::to_bytes(&vals);
            let _ = vol
                .dataset_write(&c, ds, &sel, &bytes)
                .expect("transient-only plans never fail an issue");
        }
        vol.wait_all().unwrap_or_else(|e| {
            panic!("case {case} (seed {seed:#x}): retry must absorb all faults: {e}")
        });

        // The faulted read path must also come back clean.
        let back = vol
            .dataset_read(&c, ds, &Selection::All)
            .expect("read issue")
            .wait()
            .expect("retry absorbs read faults");
        let got: Vec<f64> = apio::h5lite::datatype::from_bytes(&back).expect("decode");
        assert_eq!(got, shadow, "case {case} (seed {seed:#x}): contents diverged");
        // And a faulted flush must survive its own retries. Flush runs on
        // the caller's thread below the VOL, so transient flush faults are
        // surfaced to the caller — they must still be *classified* as
        // retryable so the caller's own retry loop (or ours) can absorb
        // them. One flush attempt is now a whole commit protocol (extent
        // hashing reads, metadata append, two sync barriers, the slot
        // write), each op drawing its own fault — so the bound here is
        // wider than the connector's per-op policy.
        let mut flushed = c.flush();
        let mut attempt = 0;
        while let Err(e) = &flushed {
            assert!(e.is_retryable(), "case {case}: flush fault must be transient");
            attempt += 1;
            assert!(attempt < 64, "case {case}: flush retries must terminate");
            flushed = c.flush();
        }
    }
}

/// Whatever the persistent-fault weather, an acknowledged write is never
/// lost: if the connector said `Ok` (sync ack or successful wait), the
/// bytes are in the container afterwards — even across breaker trips,
/// degraded windows, and recovery probes.
#[test]
fn degradation_never_loses_acknowledged_writes() {
    let mut rng = Lcg::new(0xDE6ADE);
    for case in 0..12 {
        let window_start = rng.next() % 6;
        let window_len = 1 + rng.next() % 8;
        let threshold = rng.in_range(1, 4) as u32;
        let probe_after = rng.in_range(1, 4) as u32;
        let seed = rng.next();
        let nslabs = 12u64;

        let plan = FaultPlan::new(seed)
            .fail_after(FaultOp::Write, window_start, FaultKind::Persistent)
            .times(window_len);
        let injector = Arc::new(FaultInjector::new(Arc::new(MemBackend::new()), plan));
        injector.set_armed(false);

        let c = Arc::new(Container::create(injector.clone()));
        let ds = c
            .create_dataset(
                ROOT_ID,
                "d",
                Datatype::F64,
                &Dataspace::d1(nslabs * 8),
                Layout::Contiguous,
            )
            .expect("create");
        c.flush().expect("metadata flush");

        let vol = AsyncVol::builder()
            .streams(1)
            .retry(RetryPolicy::none())
            .breaker(BreakerConfig {
                failure_threshold: threshold,
                probe_after,
            })
            .build();
        injector.set_armed(true);

        let mut acked: Vec<(u64, Vec<f64>)> = Vec::new();
        for i in 0..nslabs {
            let start = i * 8;
            let vals: Vec<f64> = (0..8u64)
                .map(|j| (case as u64 * 1000 + i * 10 + j) as f64)
                .collect();
            let sel = Selection::Slab(Hyperslab::range1(start, 8));
            let bytes = apio::h5lite::datatype::to_bytes(&vals);
            let Ok(req) = vol.dataset_write(&c, ds, &sel, &bytes) else {
                continue; // degraded write hit the dead device: not acked
            };
            if req.is_sync() || vol.wait(req).is_ok() {
                acked.push((start, vals));
            }
        }
        let _ = vol.wait_all(); // drain; leftover failures were never acked

        for (start, vals) in &acked {
            let sel = Selection::Slab(Hyperslab::range1(*start, 8));
            let back = c.read_selection(ds, &sel).expect("read acked slab");
            let got: Vec<f64> = apio::h5lite::datatype::from_bytes(&back).expect("decode");
            assert_eq!(
                &got, vals,
                "case {case} (seed {seed:#x}, window {window_start}+{window_len}, \
                 breaker {threshold}/{probe_after}): acked slab at {start} lost"
            );
        }
        // The fault window is finite and shorter than the schedule, so
        // the tail of the run must always land.
        assert!(
            !acked.is_empty(),
            "case {case}: some writes outlive the fault window"
        );
    }
}

/// The planned (coalescing) selection path is observationally identical
/// to the historical per-run path: one vectored write/read of a random
/// strided selection leaves the container byte-identical to issuing one
/// single-run operation per run, on both layouts.
#[test]
fn planned_selection_path_matches_per_run_reference() {
    let mut rng = Lcg::new(0x91A2);
    for case in 0..32 {
        let n = rng.in_range(16, 500);
        let start = rng.next() % n;
        let stride = rng.in_range(1, 5);
        let max_count = (n - start).div_ceil(stride);
        let count = 1 + rng.next() % max_count;
        let layout = if rng.next().is_multiple_of(2) {
            Layout::Contiguous
        } else {
            Layout::Chunked1D {
                chunk_elems: rng.in_range(1, 48),
            }
        };
        let space = Dataspace::d1(n);
        let sel = Selection::Slab(Hyperslab::strided(&[start], &[count], &[stride]));
        let runs = sel.runs(&space).expect("valid slab");
        let data: Vec<u8> = (0..count * 4)
            .map(|i| (case as u64 * 31 + i) as u8 | 1)
            .collect();

        let mk = || {
            let c = Container::create(Arc::new(MemBackend::new()));
            let id = c
                .create_dataset(ROOT_ID, "d", Datatype::F32, &space, layout.clone())
                .expect("create");
            // Zero-fill so the later `Selection::All` read-back is fully
            // backed (a contiguous dataset's unwritten tail is past the
            // backend's end, which reads reject by contract).
            c.write_selection(id, &Selection::All, &vec![0u8; (n * 4) as usize])
                .expect("prefill");
            (c, id)
        };
        let (planned, pid) = mk();
        let (reference, rid) = mk();

        planned.write_selection(pid, &sel, &data).expect("planned");
        let mut cur = 0usize;
        for &(off, len) in &runs {
            let nb = (len * 4) as usize;
            reference
                .write_selection(
                    rid,
                    &Selection::Slab(Hyperslab::range1(off, len)),
                    &data[cur..cur + nb],
                )
                .expect("per-run");
            cur += nb;
        }

        // Full contents agree, zeros outside the selection included…
        let a = planned.read_selection(pid, &Selection::All).expect("read");
        let b = reference.read_selection(rid, &Selection::All).expect("read");
        assert_eq!(
            a, b,
            "case {case}: n {n} start {start} count {count} stride {stride} {layout:?}"
        );
        // …and both read paths return the written bytes.
        let planned_back = planned.read_selection(pid, &sel).expect("planned read");
        assert_eq!(planned_back, data, "case {case}: planned read-back");
        let mut per_run_back = Vec::new();
        for &(off, len) in &runs {
            per_run_back.extend(
                reference
                    .read_selection(rid, &Selection::Slab(Hyperslab::range1(off, len)))
                    .expect("per-run read"),
            );
        }
        assert_eq!(per_run_back, data, "case {case}: reference read-back");
    }
}

/// Coalescing must not shift fault-plan indices: the k-th write fault
/// hits the same logical backend operation whether the selection goes
/// through one planned call or the per-run reference sequence, leaving
/// both containers in identical states with identical injection counts.
#[test]
fn planned_path_preserves_fault_plan_indices() {
    let mut rng = Lcg::new(0xFA171);
    for case in 0..24 {
        let n = rng.in_range(16, 400);
        let start = rng.next() % n;
        let stride = rng.in_range(1, 5);
        let max_count = (n - start).div_ceil(stride);
        let count = 1 + rng.next() % max_count;
        let layout = if rng.next().is_multiple_of(2) {
            Layout::Contiguous
        } else {
            Layout::Chunked1D {
                chunk_elems: rng.in_range(1, 32),
            }
        };
        let space = Dataspace::d1(n);
        let sel = Selection::Slab(Hyperslab::strided(&[start], &[count], &[stride]));
        let runs = sel.runs(&space).expect("valid slab");
        // Fault the k-th data write; k sometimes past the end (no fault).
        let k = rng.next() % (runs.len() as u64 + 3);
        let kind = if rng.next().is_multiple_of(2) {
            FaultKind::Transient
        } else {
            FaultKind::Torn { fraction: 0.5 }
        };
        let data: Vec<u8> = (0..count * 4).map(|i| (7 + case as u64 + i) as u8 | 1).collect();

        let mk = || {
            let plan = FaultPlan::new(7)
                .fail_at(FaultOp::Write, k, kind.clone())
                .times(1);
            let inj = Arc::new(FaultInjector::new(Arc::new(MemBackend::new()), plan));
            inj.set_armed(false);
            let c = Container::create(inj.clone());
            let id = c
                .create_dataset(ROOT_ID, "d", Datatype::F32, &space, layout.clone())
                .expect("create");
            // Pre-allocate every chunk while disarmed so both paths run
            // the same steady-state op sequence (first-write zero fills
            // would interleave differently between the two schedules).
            c.write_selection(id, &Selection::All, &vec![0u8; (n * 4) as usize])
                .expect("prefill");
            inj.set_armed(true);
            (c, inj, id)
        };
        let (pc, pinj, pid) = mk();
        let (rc, rinj, rid) = mk();

        let planned_res = pc.write_selection(pid, &sel, &data);
        let mut reference_res = Ok(());
        let mut cur = 0usize;
        for &(off, len) in &runs {
            let nb = (len * 4) as usize;
            let r = rc.write_selection(
                rid,
                &Selection::Slab(Hyperslab::range1(off, len)),
                &data[cur..cur + nb],
            );
            cur += nb;
            if r.is_err() {
                reference_res = r;
                break; // the planned batch also stops at the first fault
            }
        }

        let ctx = format!(
            "case {case}: n {n} start {start} count {count} stride {stride} k {k} {layout:?}"
        );
        assert_eq!(planned_res.is_ok(), reference_res.is_ok(), "{ctx}: outcome");
        assert_eq!(pinj.injected(), rinj.injected(), "{ctx}: injected count");

        pinj.set_armed(false);
        rinj.set_armed(false);
        let a = pc.read_selection(pid, &Selection::All).expect("read");
        let b = rc.read_selection(rid, &Selection::All).expect("read");
        assert_eq!(a, b, "{ctx}: post-fault contents diverged");
    }
}

/// A stationary I/O rate with bounded seeded noise never trips the
/// drift detector: 10k epochs of ±5% rate jitter produce zero alarms,
/// for every seed. (The Page–Hinkley `delta` slack is sized to absorb
/// exactly this kind of stationary wobble.)
#[test]
fn stationary_rate_noise_never_false_alarms() {
    for seed in [0x5E41u64, 0xD41F7, 0x00B5, 0xF00D] {
        let mut rng = Lcg::new(seed);
        let mut series = SeriesAggregator::new(SeriesConfig::default());
        let bytes = 1u64 << 26;
        for epoch in 0..10_000u64 {
            let rate = 1e9 * rng.f64_in(0.95, 1.05);
            let nanos = (bytes as f64 / rate * 1e9) as u64;
            series.record_io(bytes, nanos);
            assert!(
                series.end_epoch().is_none(),
                "seed {seed:#x} epoch {epoch}: false alarm on stationary noise"
            );
        }
        assert!(series.alarms().is_empty(), "seed {seed:#x}");
        assert_eq!(series.epochs(), 10_000);
    }
}

/// A genuine step change in backend rate — the device bandwidth dropped
/// mid-run via [`ThrottledBackend::set_bandwidth`] — fires a `Down`
/// alarm within K epochs of the step, for every seeded degradation
/// factor, while the pre-step epochs stay silent.
#[test]
fn backend_rate_step_fires_drift_alarm_within_k_epochs() {
    const K: usize = 4;
    let mut rng = Lcg::new(0xD21F7);
    for case in 0..4 {
        let factor = rng.f64_in(8.0, 64.0);
        let fast = 2e8; // 200 MB/s: stalls long enough to dominate noise
        let backend = Arc::new(ThrottledBackend::new(
            Box::new(MemBackend::new()),
            fast,
            0.0,
        ));
        let c = Container::create(backend.clone());
        let n = 1u64 << 18; // 1 MiB of f32 per epoch write
        let ds = c
            .create_dataset(ROOT_ID, "d", Datatype::F32, &Dataspace::d1(n), Layout::Contiguous)
            .expect("create");
        let data = vec![1u8; (n * 4) as usize];
        let sel = Selection::All;
        // Warm the path (chunk allocation) outside the measured epochs.
        c.write_selection(ds, &sel, &data).expect("warm write");

        // Real wall-clock rates carry scheduler noise; 1.5 still fires
        // within an epoch on the >= ln(8) ≈ 2.1 log-rate step below.
        let cfg = SeriesConfig {
            ph_lambda: 1.5,
            ..SeriesConfig::default()
        };
        let mut series = SeriesAggregator::new(cfg);
        let epoch_write = |series: &mut SeriesAggregator| {
            let t0 = std::time::Instant::now();
            c.write_selection(ds, &sel, &data).expect("epoch write");
            series.record_io(data.len() as u64, t0.elapsed().as_nanos() as u64);
            series.end_epoch()
        };

        for epoch in 0..10 {
            assert!(
                epoch_write(&mut series).is_none(),
                "case {case} (factor {factor:.1}): false alarm at fast epoch {epoch}"
            );
        }

        backend.set_bandwidth(fast / factor);
        let fired = (0..K).find_map(|k| epoch_write(&mut series).map(|a| (k, a)));
        let (k, alarm) = fired.unwrap_or_else(|| {
            panic!("case {case}: a {factor:.1}x step must fire within {K} epochs")
        });
        assert_eq!(
            alarm.direction,
            DriftDirection::Down,
            "case {case}: degradation is a downward drift"
        );
        assert!(
            alarm.observed_rate < alarm.ewma_rate,
            "case {case} (alarm {k} epochs after the step): observed below the smoothed rate"
        );
    }
}

/// MVCC guarantee for long-lived readers: a snapshot captured once keeps
/// resolving every chunk address byte-identically through 1k interleaved
/// overwrites, dataset resizes, new-dataset creations, and flushes —
/// without a single metadata-lock acquisition per read. In-place
/// overwrites of captured chunks *are* visible (the snapshot pins
/// addresses, not bytes; extent allocation is append-only, so an address
/// never changes owner), while everything allocated after the capture —
/// grown tails, new tenants' datasets — is invisible.
#[test]
fn long_lived_snapshot_resolves_addresses_through_1k_mutations() {
    let mut rng = Lcg::new(0x5AA9_57A7);
    const CHUNK: u64 = 8;
    const BASE: u64 = 256; // elements at capture time
    const MAX: u64 = 4096; // growth cap across the run

    let c = Container::create(Arc::new(MemBackend::new()));
    let base = c
        .create_dataset(
            ROOT_ID,
            "base",
            Datatype::F32,
            &Dataspace::d1(BASE),
            Layout::Chunked1D { chunk_elems: CHUNK },
        )
        .expect("create");
    // Allocate every captured chunk with known bytes.
    let mut shadow: Vec<u8> = (0..BASE * 4).map(|i| (i % 251) as u8 + 1).collect();
    c.write_selection(base, &Selection::All, &shadow).expect("prefill");

    let snap = c.snapshot();
    let gen0 = snap.dataset_generation(base).expect("captured");

    let mut len = BASE; // live length of `base`
    let mut extras: Vec<u64> = Vec::new(); // dataset ids created after capture
    for op in 0..1000u64 {
        match rng.next() % 10 {
            // Overwrite a random slab inside the captured shape — visible
            // through the snapshot because the chunk address is shared.
            0..=5 => {
                let start = rng.next() % BASE;
                let n = 1 + rng.next() % (BASE - start);
                let vals: Vec<u8> = (0..n * 4).map(|i| (op * 13 + i) as u8 | 1).collect();
                c.write_selection(base, &Selection::Slab(Hyperslab::range1(start, n)), &vals)
                    .expect("overwrite");
                shadow[(start * 4) as usize..((start + n) * 4) as usize].copy_from_slice(&vals);
            }
            // Grow the dataset and write into the fresh tail — those
            // chunks allocate after the capture, invisible to it.
            6 | 7 => {
                if len < MAX {
                    let grow = CHUNK * (1 + rng.next() % 4);
                    c.extend_dataset(base, len + grow).expect("extend");
                    let vals = vec![0xEEu8; (grow * 4) as usize];
                    c.write_selection(base, &Selection::Slab(Hyperslab::range1(len, grow)), &vals)
                        .expect("tail write");
                    len += grow;
                }
            }
            // A new tenant arrives after the capture.
            8 => {
                if extras.len() < 24 {
                    let name = format!("t{}", extras.len());
                    let id = c
                        .create_dataset(
                            ROOT_ID,
                            &name,
                            Datatype::F32,
                            &Dataspace::d1(CHUNK),
                            Layout::Chunked1D { chunk_elems: CHUNK },
                        )
                        .expect("tenant create");
                    c.write_selection(id, &Selection::All, &vec![0xAAu8; (CHUNK * 4) as usize])
                        .expect("tenant write");
                    extras.push(id);
                }
            }
            // Flush republishes (model-dependent) and rewrites extent
            // checksums — none of it may disturb captured addresses.
            _ => c.flush().expect("flush"),
        }

        if (op + 1) % 100 == 0 {
            let s0 = c.meta_lock_stats();
            let through = c
                .read_snapshot(&snap, base, &Selection::All)
                .expect("snapshot read");
            let s1 = c.meta_lock_stats();
            assert_eq!(through, shadow, "op {op}: snapshot resolution diverged");
            assert_eq!(s1.total(), s0.total(), "op {op}: snapshot read took a metadata lock");
        }
    }

    // `Selection::All` through the snapshot still resolves the *captured*
    // shape, not the grown one — and every chunk address individually.
    let through = c.read_snapshot(&snap, base, &Selection::All).expect("final read");
    assert_eq!(through.len(), (BASE * 4) as usize);
    assert_eq!(through, shadow);
    for chunkno in 0..BASE / CHUNK {
        let sel = Selection::Slab(Hyperslab::range1(chunkno * CHUNK, CHUNK));
        let one = c.read_snapshot(&snap, base, &sel).expect("chunk read");
        let lo = (chunkno * CHUNK * 4) as usize;
        assert_eq!(&one[..], &shadow[lo..lo + (CHUNK * 4) as usize], "chunk {chunkno}");
    }
    // Post-capture objects are invisible; the captured generation is
    // pinned even though the live dataset mutated ~1k times.
    assert_eq!(snap.dataset_generation(base), Some(gen0));
    assert!(len > BASE, "the schedule must actually resize");
    assert!(!extras.is_empty(), "the schedule must actually add tenants");
    for id in extras {
        assert!(!snap.contains(id), "dataset {id} postdates the capture");
    }
}

/// Engine determinism: the same schedule always fires in the same
/// order (a regression guard for the heap tie-break).
#[test]
fn engine_is_deterministic() {
    let mut rng = Lcg::new(0xDE7E);
    for case in 0..CASES {
        let n = rng.in_range(1, 50) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.next() % 1000).collect();
        let run_once = |delays: &[u64]| -> Vec<usize> {
            let mut sim = Engine::new();
            let log = Rc::new(RefCell::new(Vec::new()));
            for (i, &d) in delays.iter().enumerate() {
                let log = log.clone();
                sim.schedule(SimDuration::from_nanos(d), move |_| log.borrow_mut().push(i));
            }
            sim.run();
            Rc::try_unwrap(log).expect("sole owner").into_inner()
        };
        assert_eq!(run_once(&delays), run_once(&delays), "case {case}: {delays:?}");
    }
}
