//! Property-based tests over the core data structures and invariants.

use apio::desim::{Engine, SharedResource, SimDuration};
use apio::h5lite::{Dataspace, File, Hyperslab, Selection};
use apio::model::epoch::EpochParams;
use apio::model::regression::{Design, LinearFit};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Any valid hyperslab's runs are sorted, disjoint, in bounds, and
    /// cover exactly `npoints` elements.
    #[test]
    fn hyperslab_runs_partition_the_selection(
        dims in proptest::collection::vec(1u64..20, 1..4),
        seed in any::<u64>(),
    ) {
        let space = Dataspace::new(&dims);
        // Derive a valid slab from the seed.
        let mut s = seed;
        let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1); s >> 33 };
        let rank = dims.len();
        let mut start = vec![0u64; rank];
        let mut count = vec![1u64; rank];
        let mut stride = vec![1u64; rank];
        for d in 0..rank {
            start[d] = next() % dims[d];
            let room = dims[d] - start[d];
            stride[d] = 1 + next() % 3;
            let max_count = (room + stride[d] - 1) / stride[d];
            count[d] = 1 + next() % max_count;
        }
        let slab = Hyperslab::strided(&start, &count, &stride);
        let sel = Selection::Slab(slab);
        let runs = sel.runs(&space).unwrap();
        let total: u64 = runs.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, sel.npoints(&space));
        for w in runs.windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0, "sorted + disjoint");
        }
        if let Some(&(off, len)) = runs.last() {
            prop_assert!(off + len <= space.npoints(), "in bounds");
        }
    }

    /// Writing a random hyperslab then reading it back returns the data;
    /// elements outside the slab stay zero.
    #[test]
    fn slab_write_read_roundtrip(
        n in 1u64..200,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let file = File::create_in_memory().unwrap();
        let ds = file.root().create_dataset::<i64>("d", &Dataspace::d1(n)).unwrap();
        ds.write(&vec![0i64; n as usize]).unwrap();
        let start = ((n - 1) as f64 * start_frac) as u64;
        let len = 1 + ((n - start - 1) as f64 * len_frac) as u64;
        let slab = Hyperslab::range1(start, len);
        let vals: Vec<i64> = (0..len as i64).map(|i| i + 1).collect();
        ds.write_slab(&slab, &vals).unwrap();
        let all = ds.read::<i64>().unwrap();
        for (i, &v) in all.iter().enumerate() {
            let i = i as u64;
            if i >= start && i < start + len {
                prop_assert_eq!(v, (i - start) as i64 + 1);
            } else {
                prop_assert_eq!(v, 0);
            }
        }
    }

    /// Flow conservation on the processor-sharing resource: all bytes are
    /// served, and total service time is at least total_bytes/capacity.
    #[test]
    fn resource_conserves_bytes(
        capacity in 1.0f64..1e6,
        sizes in proptest::collection::vec(0.0f64..1e6, 1..12),
    ) {
        let mut sim = Engine::new();
        let res = SharedResource::new("r", capacity);
        let done = Rc::new(RefCell::new(0usize));
        for &bytes in &sizes {
            let d = done.clone();
            res.start_flow(&mut sim, bytes, None, move |_| { *d.borrow_mut() += 1; });
        }
        sim.run();
        prop_assert_eq!(*done.borrow(), sizes.len());
        let total: f64 = sizes.iter().sum();
        prop_assert!((res.bytes_served() - total).abs() <= 1e-6 * total.max(1.0));
        let ideal = total / capacity;
        let elapsed = sim.now().as_secs_f64();
        prop_assert!(elapsed >= ideal - 1e-6, "can't beat capacity: {} < {}", elapsed, ideal);
    }

    /// Eq. 2b invariants: async epoch time is monotone in each argument
    /// and never beats `max(t_comp, t_io/2... )` — concretely, it is
    /// bounded below by both `t_comp` and `t_io − t_comp`.
    #[test]
    fn epoch_equations_invariants(
        comp in 0.0f64..100.0,
        io in 0.0f64..100.0,
        ov in 0.0f64..10.0,
    ) {
        let p = EpochParams::new(comp, io, ov);
        prop_assert!(p.async_time() >= comp);
        prop_assert!(p.async_time() >= io - comp);
        prop_assert!(p.async_time() >= ov);
        prop_assert!(p.sync_time() >= io.max(comp));
        // Removing overhead can only help.
        let p0 = EpochParams::new(comp, io, 0.0);
        prop_assert!(p0.async_time() <= p.async_time());
        // The slowdown characterization.
        let slow = p.async_time() >= p.sync_time();
        prop_assert_eq!(slow, ov >= io.min(2.0 * comp));
    }

    /// OLS on exactly-linear data recovers predictions regardless of the
    /// coefficient scales (well-conditioned, distinct features).
    #[test]
    fn regression_recovers_exact_linear_data(
        b0 in -100.0f64..100.0,
        b1 in -100.0f64..100.0,
    ) {
        let xs: Vec<Vec<f64>> = (1..25)
            .map(|i| vec![i as f64, ((i * i) % 23) as f64 + 0.5])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| b0 * x[0] + b1 * x[1]).collect();
        let fit = LinearFit::fit(Design::Linear, &xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let err = (fit.predict(x) - y).abs();
            prop_assert!(err <= 1e-6 * y.abs().max(1.0), "err {}", err);
        }
    }

    /// Engine determinism: the same schedule always fires in the same
    /// order (a regression guard for the heap tie-break).
    #[test]
    fn engine_is_deterministic(delays in proptest::collection::vec(0u64..1000, 1..50)) {
        let run_once = |delays: &[u64]| -> Vec<usize> {
            let mut sim = Engine::new();
            let log = Rc::new(RefCell::new(Vec::new()));
            for (i, &d) in delays.iter().enumerate() {
                let log = log.clone();
                sim.schedule(SimDuration::from_nanos(d), move |_| log.borrow_mut().push(i));
            }
            sim.run();
            Rc::try_unwrap(log).unwrap().into_inner()
        };
        prop_assert_eq!(run_once(&delays), run_once(&delays));
    }
}
