//! Integration gate for the ring backend (ISSUE 8): backpressure
//! policies under a genuinely full ring, completion-vs-submission
//! ordering, shutdown with operations in flight, fault plumbing through
//! completions (retry and breaker semantics unchanged), the connector's
//! ring path end to end, and a seeded `argolite::explore` sweep over
//! submit/drain interleavings.

use std::sync::Arc;
use std::time::Duration;

use apio::asyncvol::{AsyncVol, RetryPolicy};
use apio::h5lite::ring::{
    Backpressure, Ring, RingBackend, RingConfig, RingOp, Submitted, WaitMode,
};
use apio::h5lite::{
    container::ROOT_ID, Container, Dataspace, Datatype, FaultInjector, FaultKind, FaultOp,
    FaultPlan, Hyperslab, Layout, MemBackend, Selection, StorageBackend, ThrottledBackend, Vol,
};
use apio::trace::SeriesAggregator;

#[cfg(feature = "debug-invariants")]
fn seed_count() -> u64 {
    std::env::var("APIO_EXPLORE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

/// A tiny Block-policy ring in front of a slow device must absorb a
/// submission burst far deeper than its capacity: submitters park until
/// the reaper frees slots, and every byte still lands.
#[test]
fn block_backpressure_absorbs_a_burst_deeper_than_the_ring() {
    let backend: Arc<dyn StorageBackend> = Arc::new(ThrottledBackend::in_memory(1e9, 2e-4));
    let ring = Ring::new(
        backend.clone(),
        RingConfig {
            capacity: 4,
            backpressure: Backpressure::Block,
            ..RingConfig::default()
        },
    );
    let n = 32u64;
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let (_, promise) = ring
                .submit_keyed(0, RingOp::write_raw(i * 8, vec![i as u8; 8]))
                .accepted()
                .expect("Block policy never reports Full");
            promise
        })
        .collect();
    for p in handles {
        p.wait_cloned().into_result().expect("write completes");
    }
    for i in 0..n {
        let mut buf = [0u8; 8];
        backend.read_at(i * 8, &mut buf).expect("read back");
        assert_eq!(buf, [i as u8; 8], "op {i} landed intact");
    }
}

/// A full Poll-policy ring hands the operation back intact instead of
/// blocking; after the backlog drains, the very same op resubmits and
/// completes.
#[test]
fn poll_backpressure_hands_the_op_back_intact() {
    let backend: Arc<dyn StorageBackend> = Arc::new(ThrottledBackend::in_memory(1e6, 0.05));
    let ring = Ring::new(
        backend.clone(),
        RingConfig {
            capacity: 2,
            backpressure: Backpressure::Poll,
            ..RingConfig::default()
        },
    );
    let payload = vec![0xEEu8; 16];
    let mut accepted = Vec::new();
    let mut bounced = None;
    for i in 0..64u64 {
        match ring.submit_keyed(0, RingOp::write_raw(1024 + i * 16, payload.clone())) {
            Submitted::Accepted { promise, .. } => accepted.push(promise),
            Submitted::Full(op) => {
                bounced = Some(op);
                break;
            }
        }
    }
    let op = bounced.expect("a 50 ms/op device must fill a 2-slot ring within 64 submissions");
    assert_eq!(op.total_bytes(), 16, "the bounced op comes back intact");
    for p in accepted {
        p.wait_cloned().into_result().expect("accepted ops complete");
    }
    ring.drain();
    let (_, p) = ring
        .submit_keyed(0, op)
        .accepted()
        .expect("room after drain");
    p.wait_cloned().into_result().expect("resubmission completes");
}

/// CQ-polled completions on one key arrive in submission order — the
/// per-shard FIFO the connector's settlement logic depends on.
#[test]
fn completions_arrive_in_submission_order_per_key() {
    let ring = Ring::new(Arc::new(MemBackend::new()), RingConfig::default());
    let n = 32u64;
    let submitted: Vec<u64> = (0..n)
        .map(|i| {
            ring.submit_to_cq(0, RingOp::write_raw(i * 4, vec![i as u8; 4]))
                .expect("ring has room")
        })
        .collect();
    let mut completed = Vec::new();
    while completed.len() < n as usize {
        match ring.pop_completion() {
            Some(c) => {
                c.result.expect("write succeeds");
                completed.push(c.id);
            }
            None => std::thread::yield_now(),
        }
    }
    assert_eq!(completed, submitted, "per-key completion order == submission order");
}

/// Dropping the ring with operations still in flight must resolve every
/// promise (shutdown runs each reaper's final drain) — no waiter can be
/// left parked forever.
#[test]
fn drop_while_in_flight_resolves_every_promise() {
    let backend: Arc<dyn StorageBackend> = Arc::new(ThrottledBackend::in_memory(1e9, 1e-3));
    let ring = Ring::new(backend, RingConfig::default());
    let handles: Vec<_> = (0..16u64)
        .map(|i| {
            ring.submit_keyed(i, RingOp::write_raw(i * 64, vec![0xAB; 64]))
                .accepted()
                .expect("Block policy")
                .1
        })
        .collect();
    drop(ring);
    for (i, p) in handles.into_iter().enumerate() {
        assert!(p.is_fulfilled(), "promise {i} left unresolved after drop");
        p.wait_cloned().into_result().expect("completed before shutdown finished");
    }
}

/// Seeded schedule exploration over the submit/drain mix: four writers
/// race each other and a flush, with only the real dependency edges
/// declared. After every step the ring's occupancy accounting must hold,
/// and a completed verify step must observe all four payloads.
/// (`argolite::explore` is compiled under `debug-invariants`, like the
/// connector's own exploration gate.)
#[cfg(feature = "debug-invariants")]
#[test]
fn seeded_submit_drain_interleavings_hold_ring_invariants() {
    use apio::argolite::explore::explore;
    use apio::argolite::TaskGraph;
    use std::sync::Mutex;

    let seeds = seed_count();
    // Fresh ring per schedule, shared by the tasks of that run.
    let slot: Arc<Mutex<Option<Arc<Ring>>>> = Arc::new(Mutex::new(None));
    let build = || {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let ring = Arc::new(Ring::new(backend.clone(), RingConfig::default()));
        *slot.lock().unwrap() = Some(ring.clone());
        let mut g = TaskGraph::new();
        let writers: Vec<_> = (0..4u64)
            .map(|i| {
                let ring = ring.clone();
                g.add_task(format!("submit:{i}"), move || {
                    ring.submit_keyed(i, RingOp::write_raw(i * 32, vec![i as u8 + 1; 32]))
                        .accepted()
                        .expect("Block policy")
                        .1
                        .wait_cloned()
                        .into_result()
                        .expect("write completes");
                })
            })
            .collect();
        let drain = {
            let ring = ring.clone();
            g.add_task("drain", move || ring.drain())
        };
        let verify = g.add_task("verify", move || {
            for i in 0..4u64 {
                let mut buf = [0u8; 32];
                backend.read_at(i * 32, &mut buf).expect("read back");
                assert_eq!(buf, [i as u8 + 1; 32], "payload {i} landed");
            }
        });
        for w in writers {
            g.add_edge(w, drain);
        }
        g.add_edge(drain, verify);
        g
    };
    let report = explore(seeds, build, |s| {
        let guard = slot.lock().unwrap();
        let ring = guard.as_ref().expect("build ran");
        if ring.occupancy() > ring.capacity() {
            return Err(format!(
                "occupancy {} exceeds capacity {} after `{}`",
                ring.occupancy(),
                ring.capacity(),
                s.label
            ));
        }
        Ok(())
    });
    assert!(report.ok(), "failure: {}", report.failure.unwrap());
    assert_eq!(report.seeds_run, seeds);
    assert!(
        report.distinct_orders >= 2,
        "a {seeds}-seed sweep must exercise schedule diversity, saw {}",
        report.distinct_orders
    );
}

/// Transient faults injected *under* the ring surface through
/// completions as the same retryable errors the synchronous path
/// reports, so the connector's backoff-and-retry absorbs them with zero
/// application-visible failures — the RingBackend sandwich changes the
/// transport, not the resilience semantics.
#[test]
fn faults_under_the_ring_are_absorbed_by_connector_retries() {
    let plan = FaultPlan::new(42)
        .random(FaultOp::Write, 0.3, FaultKind::Transient)
        .times(6);
    let injector = Arc::new(FaultInjector::new(Arc::new(MemBackend::new()), plan));
    injector.set_armed(false);
    let ringed: Arc<dyn StorageBackend> =
        Arc::new(RingBackend::with_defaults(injector.clone()));
    let c = Arc::new(Container::create(ringed));
    let n = 16u64 * 64;
    let ds = c
        .create_dataset(ROOT_ID, "x", Datatype::F32, &Dataspace::d1(n), Layout::Contiguous)
        .expect("create dataset");
    let vol = AsyncVol::builder()
        .streams(2)
        .retry(RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        })
        .build();
    injector.set_armed(true);
    let expected: Vec<f32> = (0..n).map(|i| i as f32).collect();
    for step in 0..16u64 {
        let sel = Selection::Slab(Hyperslab::range1(step * 64, 64));
        let vals = &expected[(step * 64) as usize..((step + 1) * 64) as usize];
        let bytes = apio::h5lite::datatype::to_bytes(vals);
        // Drained collectively by wait_all below.
        let _ = vol.dataset_write(&c, ds, &sel, &bytes).expect("submit");
    }
    vol.wait_all().expect("retries absorb every transient fault");
    injector.set_armed(false);
    assert!(injector.injected() > 0, "the plan must actually fire");
    assert!(
        vol.stats().retries > 0,
        "transient completions must route through the retry path"
    );
    let back = c.read_selection(ds, &Selection::All).expect("read back");
    assert_eq!(back, apio::h5lite::datatype::to_bytes(&expected), "no write lost");
}

/// The connector's task-aware ring path end to end: builder-attached
/// ring, writes submitted as ring entries, per-request wait and
/// collective wait_all, read-after-write settlement, and the depth
/// governor steering wait mode and stream count from the telemetry
/// queue-depth series.
#[test]
fn connector_ring_path_roundtrip_and_depth_governor() {
    let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let ring = Arc::new(Ring::new(backend.clone(), RingConfig::default()));
    let vol = AsyncVol::builder()
        .streams(1)
        .adaptive_streams(4)
        .ring(ring)
        .build();
    let c = Arc::new(Container::create(backend));
    let n = 8u64 * 128;
    let ds = c
        .create_dataset(ROOT_ID, "x", Datatype::F32, &Dataspace::d1(n), Layout::Contiguous)
        .expect("create dataset");
    let expected: Vec<f32> = (0..n).map(|i| (i * 3) as f32).collect();
    let mut last = None;
    for step in 0..8u64 {
        let sel = Selection::Slab(Hyperslab::range1(step * 128, 128));
        let vals = &expected[(step * 128) as usize..((step + 1) * 128) as usize];
        let bytes = apio::h5lite::datatype::to_bytes(vals);
        last = Some(vol.dataset_write(&c, ds, &sel, &bytes).expect("submit"));
    }
    // Per-request wait settles that request's ring completion.
    vol.wait(last.expect("eight writes issued")).expect("wait");
    vol.wait_all().expect("wait_all settles the rest");
    assert_eq!(vol.stats().writes, 8, "every write settled through the ring path");

    // Read-after-write through the connector settles any ring traffic
    // for the dataset before reading.
    let sel = Selection::Slab(Hyperslab::range1(0, 128));
    let back = vol
        .dataset_read(&c, ds, &sel)
        .expect("read")
        .wait()
        .expect("read data arrives");
    assert_eq!(
        back,
        apio::h5lite::datatype::to_bytes(&expected[..128]),
        "read-after-write sees settled data"
    );

    // Depth governor: a deep telemetry series must block-and-grow; an
    // idle ring with a quiet series must poll at the base stream count.
    let mut deep = SeriesAggregator::default();
    deep.record_queue_depth(10_000);
    deep.end_epoch();
    let advice = vol.govern_from_series(&deep).expect("ring attached");
    assert_eq!(advice.wait, WaitMode::Block, "deep series ⇒ park on completions");
    assert_eq!(advice.streams, 4, "deep series ⇒ grow to the adaptive ceiling");
}

/// Faults under a connector-attached ring (the task-aware path, not the
/// RingBackend shim) are resubmitted from the wait side with the same
/// backoff policy — wait_all succeeds and the data lands.
#[test]
fn connector_ring_path_resubmits_faulted_ops() {
    let plan = FaultPlan::new(9)
        .random(FaultOp::Write, 0.4, FaultKind::Transient)
        .times(4);
    let injector = Arc::new(FaultInjector::new(Arc::new(MemBackend::new()), plan));
    injector.set_armed(false);
    let backend: Arc<dyn StorageBackend> = injector.clone();
    let ring = Arc::new(Ring::new(backend.clone(), RingConfig::default()));
    let vol = AsyncVol::builder()
        .streams(1)
        .ring(ring)
        .retry(RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        })
        .build();
    let c = Arc::new(Container::create(backend));
    let n = 8u64 * 64;
    let ds = c
        .create_dataset(ROOT_ID, "x", Datatype::U8, &Dataspace::d1(n), Layout::Contiguous)
        .expect("create dataset");
    injector.set_armed(true);
    let expected: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
    for step in 0..8u64 {
        let sel = Selection::Slab(Hyperslab::range1(step * 64, 64));
        let bytes = &expected[(step * 64) as usize..((step + 1) * 64) as usize];
        // Drained collectively by wait_all below.
        let _ = vol.dataset_write(&c, ds, &sel, bytes).expect("submit");
    }
    vol.wait_all().expect("wait-side resubmission absorbs the faults");
    injector.set_armed(false);
    assert!(injector.injected() > 0, "the plan must actually fire");
    assert!(vol.stats().retries > 0, "faulted completions count as retries");
    let back = c.read_selection(ds, &Selection::All).expect("read back");
    assert_eq!(back, expected, "no write lost through the ring path");
}

/// The drain-then-report contract of `RingBackend::sync`: a flush
/// submitted behind queued writes must not complete before them.
#[test]
fn ring_backend_sync_orders_behind_queued_writes() {
    let inner: Arc<dyn StorageBackend> = Arc::new(ThrottledBackend::in_memory(1e8, 1e-3));
    let rb = RingBackend::new(
        inner.clone(),
        RingConfig {
            idle_park: Duration::from_millis(1),
            ..RingConfig::default()
        },
    );
    for i in 0..8u64 {
        rb.write_at(i * 128, &[0xCD; 128]).expect("write through the ring");
    }
    rb.sync().expect("sync drains first");
    assert_eq!(rb.len(), 8 * 128, "length reflects every drained write");
    let mut buf = [0u8; 128];
    inner.read_at(7 * 128, &mut buf).expect("read");
    assert_eq!(buf, [0xCD; 128], "last write visible after sync");
}
