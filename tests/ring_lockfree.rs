//! Lock-freedom gate for the ring hot path (ISSUE 8 acceptance): a
//! submit → reap → complete round trip must perform **zero**
//! `argolite::sync` lock acquisitions, on any thread. The lock-order
//! recorder's process-wide acquisition counter covers the reaper
//! threads too — background work bumps the same counter — so a flat
//! count across ring traffic proves the whole path (submitter *and*
//! reaper) runs on atomics alone.
//!
//! The control check and the measurement live in one test: they share
//! the process-wide counter, and a concurrently running control would
//! bump it mid-measurement.

#![cfg(feature = "debug-invariants")]

use std::sync::Arc;

use apio::argolite::sync::{lock_order, Mutex};
use apio::h5lite::ring::{Ring, RingConfig, RingOp};
use apio::h5lite::MemBackend;

#[test]
fn ring_submit_and_complete_take_no_tracked_locks() {
    // Control first: the recorder must demonstrably see named-lock
    // acquisitions made on *other* threads — otherwise a flat counter
    // around ring traffic would prove nothing about the reapers.
    let before = lock_order::total_acquire_count();
    let control = Arc::new(Mutex::new_named("ring_lockfree.control", 0u32));
    let handle = {
        let control = control.clone();
        std::thread::spawn(move || {
            *control.lock() += 1;
        })
    };
    handle.join().expect("control thread");
    assert!(
        lock_order::total_acquire_count() > before,
        "a named lock taken on a spawned thread must bump the global counter"
    );

    let ring = Ring::new(Arc::new(MemBackend::new()), RingConfig::default());
    // Warm-up lap: reaper startup (OnceLock set, first park/unpark) is
    // out of scope — the acceptance bar is the steady-state hot path.
    ring.submit_keyed(0, RingOp::write_raw(0, vec![0u8; 64]))
        .accepted()
        .expect("Block policy")
        .1
        .wait_cloned()
        .into_result()
        .expect("warm-up write");

    let before = lock_order::total_acquire_count();
    // Promise-sink round trips (the connector's task-aware path)...
    for i in 0..64u64 {
        ring.submit_keyed(i, RingOp::write_raw(i * 64, vec![i as u8; 64]))
            .accepted()
            .expect("Block policy")
            .1
            .wait_cloned()
            .into_result()
            .expect("write completes");
    }
    // ...and CQ-polled round trips, plus a batch submission.
    let mut pending = 0usize;
    for i in 0..32u64 {
        ring.submit_to_cq(i, RingOp::write_raw(8192 + i * 32, vec![0xA5; 32]))
            .expect("ring has room");
        pending += 1;
    }
    let batch: Vec<RingOp> = (0..16u64)
        .map(|i| RingOp::write_raw(16384 + i * 32, vec![0x5A; 32]))
        .collect();
    for (_, p) in ring.submit_batch_keyed(3, batch) {
        p.wait_cloned().into_result().expect("batch write completes");
    }
    while pending > 0 {
        match ring.pop_completion() {
            Some(c) => {
                c.result.expect("cq write completes");
                pending -= 1;
            }
            None => std::thread::yield_now(),
        }
    }
    let after = lock_order::total_acquire_count();
    assert_eq!(
        after - before,
        0,
        "ring submit/complete hot path acquired {} argolite::sync lock(s); \
         it must run on atomics alone",
        after - before
    );
}
