//! End-to-end telemetry loop: simulated job → drift alarm → refit → flip.
//!
//! The acceptance scenario for the live-telemetry subsystem: an mpisim
//! epoch run on Cori-Haswell whose file-system rate is stepped down 20x
//! mid-run (a §V-C contention regime change) must
//!
//! 1. fire a drift alarm on the aggregate I/O-rate series,
//! 2. make the adaptive runtime discard the stale history and refit, and
//! 3. flip the advisor's decision from sync to async,
//!
//! with the outcome asserted **from the operator report JSON alone** —
//! the same artifact `apio-report --json` emits — not from internal
//! state.
//!
//! The workload is sized so the paper's Eq. 2a/2b ordering
//! `t_io_fast < t_over < 2·t_comp < t_io_slow` holds: on the uncontended
//! file system a blocking write beats paying the NVMe snapshot overhead
//! (sync wins), while on the contended one the overlap is worth it
//! (async wins). Peak-rate fitting alone can never flip the decision —
//! it keeps the fast-regime peaks forever — so the flip proves the
//! alarm-driven truncation actually ran.

use apio::model::history::{Direction, IoMode};
use apio::model::{AdaptiveRuntime, DriftPolicy, Observation, ReportBuilder};
use apio::mpisim::workload::StagingTier;
use apio::mpisim::{run, Job, RunConfig, Workload};
use apio::platform;
use apio::trace::DriftAlarm;

/// Rank counts cycled per epoch — all on one Cori node (32 ranks/node),
/// so the aggregate rate stays level across the cycle while the fits
/// still see three distinct (ranks, size) configurations.
const RANK_CYCLE: [u32; 3] = [8, 16, 32];
/// Bytes written per rank each epoch.
const PER_RANK_BYTES: u64 = 8 << 20;
/// Compute phase per epoch, seconds.
const COMPUTE_SECS: f64 = 0.25;
/// Server-side capacity factor before the step (uncontended).
const FAST: f64 = 1.0;
/// Capacity factor after the step. The factor scales the *server* term
/// of `min(client, server·contention)`, and Cori's stripe capacity is
/// ~93.6 GB/s against a ~2.9 GB/s single-node client term — so it must
/// be deep enough to pull the server term below the client term:
/// 0.0015 leaves ~0.14 GB/s, a ~20x slowdown (ln 20 ≈ 3.0 on the
/// detector's log-rate statistic).
const SLOW: f64 = 0.0015;

/// One application epoch: run a one-epoch mpisim checkpoint both ways
/// (blocking sync for the transfer evidence, NVMe-staged async for the
/// snapshot-overhead evidence) and stream the measures into the runtime.
fn run_epoch(rt: &mut AdaptiveRuntime, contention: f64) -> Option<DriftAlarm> {
    let i = rt.series().map(|s| s.epochs()).unwrap_or(0);
    let ranks = RANK_CYCLE[(i % 3) as usize];
    let job = Job::new(platform::cori_haswell(), ranks);
    let w = Workload::checkpoint(ranks, PER_RANK_BYTES, 1, COMPUTE_SECS);

    let sync = run(&job, &w, &RunConfig::sync().with_contention(contention));
    let ovl = run(
        &job,
        &w,
        &RunConfig::async_io()
            .with_staging(StagingTier::Nvme)
            .with_contention(contention),
    );
    let total_bytes = sync.phase_bytes as f64;
    let p = sync.phases[0];
    rt.observe(Observation::Compute { secs: p.t_comp });
    rt.observe(Observation::Transfer {
        mode: IoMode::Sync,
        direction: Direction::Write,
        total_bytes,
        ranks,
        secs: p.visible_io_secs,
    });
    rt.observe(Observation::SnapshotOverhead {
        direction: Direction::Write,
        total_bytes,
        ranks,
        secs: ovl.phases[0].overhead_secs,
    });
    rt.end_epoch()
}

/// Pull the integer that follows `"key":` out of a flat JSON string.
fn json_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle).unwrap_or_else(|| {
        panic!("report JSON missing {needle}: {json}");
    });
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("no integer after {needle}"))
}

#[test]
fn midrun_rate_step_flips_advice_in_report_json() {
    let mut rt = AdaptiveRuntime::new();
    rt.enable_drift_detection(DriftPolicy::default());

    // Fast regime: past the detector's 5-epoch warmup, with every
    // (ranks, size) configuration seen three times. Stationary, so no
    // alarm may fire.
    for _ in 0..9 {
        assert!(
            run_epoch(&mut rt, FAST).is_none(),
            "false alarm on the stationary fast regime"
        );
    }
    let probe_bytes = RANK_CYCLE[2] as f64 * PER_RANK_BYTES as f64;
    let before = rt
        .advise(Direction::Write, probe_bytes, RANK_CYCLE[2])
        .expect("fast-regime history fits both models");

    // The regime change: server-side contention caps the job ~20x
    // below its uncontended rate mid-run.
    let mut alarm_epochs = None;
    for i in 0..12 {
        if run_epoch(&mut rt, SLOW).is_some() {
            alarm_epochs = Some(i + 1);
            break;
        }
    }
    let fired = alarm_epochs.expect("drift alarm fires after the 20x step");
    assert!(fired <= 4, "alarm took {fired} epochs, expected <= 4");

    // Fresh post-drift evidence so the refit sees all three
    // configurations again, then the post-step probe.
    for _ in 0..3 {
        run_epoch(&mut rt, SLOW);
    }
    let after = rt
        .advise(Direction::Write, probe_bytes, RANK_CYCLE[2])
        .expect("post-drift history fits both models");

    let series = rt.series().expect("drift detection enabled");
    let json = ReportBuilder::new("telemetry e2e")
        .refits(rt.refit_count())
        .advice("pre-step", before)
        .advice("post-step", after)
        .series(series)
        .render_json();

    // Everything below is asserted from the report JSON alone.
    assert!(json.contains("\"schema\":\"apio-report-v1\""), "{json}");
    assert!(
        json.contains("\"label\":\"pre-step\",\"decision\":\"sync\""),
        "pre-step advice must be sync: {json}"
    );
    assert!(
        json.contains("\"label\":\"post-step\",\"decision\":\"async\""),
        "post-step advice must flip to async: {json}"
    );
    assert!(
        json.contains("\"alarms\":[{\"epoch\":"),
        "report must carry the drift alarm: {json}"
    );
    assert!(
        json.contains("\"direction\":\"down\""),
        "a rate drop must alarm downward: {json}"
    );
    assert!(
        json_u64(&json, "refits") >= 1,
        "advisor must have refitted at least once: {json}"
    );
    // The alarm's own numbers must describe a collapse: the epoch rate
    // the detector saw sits far below the smoothed pre-step rate.
    let alarm = &series.alarms()[0];
    assert!(alarm.observed_rate < 0.5 * alarm.ewma_rate);
}
