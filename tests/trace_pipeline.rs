//! Trace-assertion acceptance tests (ISSUE 4).
//!
//! A VPIC-style asynchronous epoch runs against an in-memory backend with
//! one shared [`Tracer`] installed in both the connector and the
//! container, and the tests assert the *structure* of the resulting
//! trace: which spans exist, how they nest across the app and background
//! threads, and in what order the pipeline's instants fire. Timestamps
//! come from a [`VirtualClock`], so nothing here depends on wall time.

use std::sync::Arc;

use apio::asyncvol::{AsyncVol, BreakerConfig, RetryPolicy};
use apio::h5lite::{
    container::ROOT_ID, Container, Dataspace, Datatype, FaultInjector, FaultKind, FaultOp,
    FaultPlan, Hyperslab, Layout, MemBackend, ObjectId, Selection, StorageBackend, Vol,
};
use apio::kernels::vpic::particle_value;
use apio::trace::{export, Event, RecordKind, Tracer, TraceSink, VirtualClock};

const PROPS: usize = 2; // datasets ("particle properties")
const STEPS: u32 = 3; // slab writes per dataset ("timesteps")
const SLAB: u64 = 32; // elements per slab write
const N: u64 = STEPS as u64 * SLAB;

fn virtual_tracer() -> (Tracer, Arc<VirtualClock>) {
    let clock = Arc::new(VirtualClock::new(0));
    (Tracer::with_clock(clock.clone()), clock)
}

fn create_datasets(c: &Container) -> Vec<ObjectId> {
    (0..PROPS)
        .map(|p| {
            c.create_dataset(
                ROOT_ID,
                &format!("prop{p}"),
                Datatype::F32,
                &Dataspace::d1(N),
                Layout::Contiguous,
            )
            .expect("create dataset")
        })
        .collect()
}

/// Issue the VPIC write schedule and drain the connector.
fn run_epoch(vol: &AsyncVol, c: &Arc<Container>, ids: &[ObjectId]) {
    for step in 0..STEPS {
        for (p, &ds) in ids.iter().enumerate() {
            let vals: Vec<f32> = (0..SLAB)
                .map(|i| particle_value(step, p, step as u64 * SLAB + i))
                .collect();
            let sel = Selection::Slab(Hyperslab::range1(step as u64 * SLAB, SLAB));
            let bytes = apio::h5lite::datatype::to_bytes(&vals);
            let _ = vol.dataset_write(c, ds, &sel, &bytes).expect("write");
        }
    }
    vol.wait_all().expect("drain");
}

/// One traced async VPIC epoch over a clean in-memory backend with WAL
/// staging; returns the sink.
fn traced_epoch() -> TraceSink {
    let (tracer, _clock) = virtual_tracer();
    let c = Arc::new(Container::create_mem());
    let ids = create_datasets(&c);
    c.flush().expect("flush metadata");
    c.set_tracer(tracer.clone());
    let vol = AsyncVol::builder()
        .streams(1)
        .stage_to_device(Arc::new(MemBackend::new()))
        .tracer(tracer.clone())
        .build();
    run_epoch(&vol, &c, &ids);
    tracer.sink()
}

const WRITES: usize = PROPS * STEPS as usize;

#[test]
fn async_epoch_emits_the_full_span_pipeline() {
    let sink = traced_epoch();
    assert_eq!(sink.spans("vol.write").len(), WRITES, "one submit per write");
    assert_eq!(sink.spans("vol.snapshot").len(), WRITES);
    assert_eq!(sink.spans("wal.append").len(), WRITES, "device staging logs every write");
    assert_eq!(sink.spans("vol.execute").len(), WRITES, "one background execute per write");
    assert_eq!(sink.spans("container.plan_io").len(), WRITES);
    assert!(!sink.spans("backend.batch").is_empty());
}

#[test]
fn pipeline_spans_nest_submit_snapshot_wal_and_execute_batch() {
    let sink = traced_epoch();
    // App thread: submit ⊇ snapshot ⊇ WAL append.
    for snap in sink.spans("vol.snapshot") {
        assert!(sink.within_span_named(snap, "vol.write"), "snapshot outside submit");
    }
    for wal in sink.spans("wal.append") {
        assert!(sink.within_span_named(wal, "vol.snapshot"), "WAL append outside snapshot");
        assert!(sink.within_span_named(wal, "vol.write"));
    }
    // Background thread: execute ⊇ plan ⊇ batch.
    for plan in sink.spans("container.plan_io") {
        assert!(sink.within_span_named(plan, "vol.execute"), "plan outside execute");
    }
    for batch in sink.spans("backend.batch") {
        assert!(sink.within_span_named(batch, "vol.execute"), "batch outside execute");
    }
    // The two halves run on different threads of the same trace.
    let submit_tid = sink.spans("vol.write")[0].tid;
    let exec_tid = sink.spans("vol.execute")[0].tid;
    assert_ne!(submit_tid, exec_tid, "execute happens off the app thread");
}

#[test]
fn wal_appends_carry_consecutive_log_sequence_numbers() {
    let sink = traced_epoch();
    let seqs: Vec<u64> = sink
        .spans("wal.append")
        .iter()
        .map(|r| match r.event {
            Some(Event::WalAppend { seq, .. }) => seq,
            other => panic!("wal.append span without WalAppend payload: {other:?}"),
        })
        .collect();
    let expect: Vec<u64> = (0..WRITES as u64).collect();
    assert_eq!(seqs, expect);
}

#[test]
fn chrome_export_of_the_epoch_is_loadable_and_complete() {
    let sink = traced_epoch();
    let json = export::chrome_json(sink.records());
    for name in [
        "\"name\":\"vol.write\"",
        "\"name\":\"vol.snapshot\"",
        "\"name\":\"wal.append\"",
        "\"name\":\"vol.execute\"",
        "\"name\":\"backend.batch\"",
        "\"type\":\"PlanBuilt\"",
        "\"type\":\"WalAppend\"",
    ] {
        assert!(json.contains(name), "chrome export missing {name}");
    }
    assert!(json.contains("\"ph\":\"X\""), "spans export as complete events");
    assert!(json.starts_with("{\"displayTimeUnit\""));
    assert!(json.trim_end().ends_with("]}"));
}

#[test]
fn strided_1500_run_selection_plans_once_in_two_batches() {
    // 1500 non-adjacent runs (stride 2): one plan, and the planner must
    // issue them as ⌈1500/1024⌉ = 2 vectored batches — never one backend
    // call per run.
    let (tracer, _clock) = virtual_tracer();
    let c = Container::create_mem();
    let ds = c
        .create_dataset(
            ROOT_ID,
            "strided",
            Datatype::F32,
            &Dataspace::d1(3000),
            Layout::Contiguous,
        )
        .expect("create");
    c.set_tracer(tracer.clone());
    let sel = Selection::Slab(Hyperslab::strided(&[0], &[1500], &[2]));
    let vals = vec![1.0f32; 1500];
    c.write_selection(ds, &sel, &apio::h5lite::datatype::to_bytes(&vals))
        .expect("strided write");
    let sink = tracer.sink();

    let plans = sink.events_where(|e| matches!(e, Event::PlanBuilt { .. }));
    assert_eq!(plans.len(), 1, "exactly one plan for the whole selection");
    let Some(Event::PlanBuilt { segments, batches, .. }) = plans[0].event else {
        unreachable!();
    };
    assert_eq!(segments, 1500);
    assert_eq!(batches, 2);

    let batch_spans = sink.spans("backend.batch");
    assert!(
        batch_spans.len() <= 2,
        "1500 runs must coalesce into at most 2 batches, got {}",
        batch_spans.len()
    );
    let total_segments: u64 = batch_spans
        .iter()
        .map(|r| match r.event {
            Some(Event::BackendBatch { segments, .. }) => segments,
            other => panic!("backend.batch span without payload: {other:?}"),
        })
        .sum();
    assert_eq!(total_segments, 1500, "every run reaches the backend");
}

#[test]
fn retry_attempts_nest_inside_background_execute_spans() {
    // Transient faults on the container backend: every retry happens in
    // the background stream, so every RetryAttempt instant must sit
    // inside a `vol.execute` span — none on the app thread.
    let (tracer, _clock) = virtual_tracer();
    let plan = FaultPlan::new(0x7AC3)
        .fail_at(FaultOp::Write, 1, FaultKind::Transient)
        .random(FaultOp::Write, 0.25, FaultKind::Transient);
    let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let injector = Arc::new(FaultInjector::new(inner, plan));
    injector.set_armed(false);

    let c = Arc::new(Container::create(injector.clone()));
    let ids = create_datasets(&c);
    c.flush().expect("flush");
    c.set_tracer(tracer.clone());

    let vol = AsyncVol::builder()
        .streams(1)
        .tracer(tracer.clone())
        .breaker(BreakerConfig {
            failure_threshold: u32::MAX,
            probe_after: 1,
        })
        .build();
    injector.set_armed(true);
    run_epoch(&vol, &c, &ids);

    let sink = tracer.sink();
    let retries = sink.events_where(|e| matches!(e, Event::RetryAttempt { .. }));
    assert!(!retries.is_empty(), "the fault plan must force a retry");
    for r in &retries {
        assert_eq!(r.kind, RecordKind::Instant);
        assert!(
            sink.within_span_named(r, "vol.execute"),
            "retry outside a background execute span: {r:?}"
        );
    }
}

#[test]
fn breaker_opens_before_the_first_degraded_write() {
    // Persistent faults trip the breaker; the trace must show the
    // BreakerTransition to "open" strictly before the first Degrade.
    let (tracer, _clock) = virtual_tracer();
    let plan = FaultPlan::new(0xB4EA4E4)
        .fail_after(FaultOp::Write, 0, FaultKind::Persistent)
        .times(4);
    let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let injector = Arc::new(FaultInjector::new(inner, plan));
    injector.set_armed(false);

    let c = Arc::new(Container::create(injector.clone()));
    let ds = c
        .create_dataset(
            ROOT_ID,
            "x",
            Datatype::F64,
            &Dataspace::d1(64),
            Layout::Contiguous,
        )
        .expect("create");
    c.flush().expect("flush");
    c.set_tracer(tracer.clone());

    let vol = AsyncVol::builder()
        .streams(1)
        .retry(RetryPolicy::none())
        .tracer(tracer.clone())
        .breaker(BreakerConfig {
            failure_threshold: 2,
            probe_after: 2,
        })
        .build();
    injector.set_armed(true);

    for i in 0..8u64 {
        let vals: Vec<f64> = (0..8).map(|j| (i * 100 + j) as f64).collect();
        let sel = Selection::Slab(Hyperslab::range1(i * 8, 8));
        let bytes = apio::h5lite::datatype::to_bytes(&vals);
        match vol.dataset_write(&c, ds, &sel, &bytes) {
            Ok(req) if !req.is_sync() => {
                let _ = vol.wait(req);
            }
            _ => {}
        }
    }
    let _ = vol.wait_all();

    let sink = tracer.sink();
    let opens = sink.events_where(
        |e| matches!(e, Event::BreakerTransition { to: "open", .. }),
    );
    let degrades = sink.events_where(|e| matches!(e, Event::Degrade { .. }));
    assert!(!opens.is_empty(), "the breaker must trip");
    assert!(!degrades.is_empty(), "open state must degrade writes");
    assert!(
        opens[0].seq < degrades[0].seq,
        "transition to open (seq {}) must precede the first degrade (seq {})",
        opens[0].seq,
        degrades[0].seq
    );
    // Every degraded write also leaves a synchronous-write span.
    assert_eq!(sink.spans("vol.degraded_write").len(), degrades.len());
    for d in &degrades {
        assert!(sink.within_span_named(d, "vol.degraded_write"));
    }
}
